//! The kernel: process table, clock, open-file and pipe tables, page
//! cache, and the low-level process-control primitives (signal posting,
//! stopping, resuming, wakeups).
//!
//! File-system-dependent operations (exec, exit's descriptor teardown,
//! the system-call layer) live one level up in [`crate::system::System`],
//! which owns both the kernel and the mounted file systems.

use crate::aout::Aout;
use crate::event::{Event, EventLog};
use crate::fd::{FileTable, PipeTable};
use crate::proc::{Lwp, LwpState, Proc, StopWhy, Tid, WaitChannel};
use crate::signal::{is_stop_signal, DefaultDispo, SigSet, SIGCONT, SIGKILL};
use vfs::{Cred, Errno, Pid, SysResult};
use vm::ObjectStore;

/// Simulated clock ticks per "second" (used by `alarm`, `time` and the
/// timestamps in `ps` output). One tick is one retired instruction.
pub const HZ: u64 = 10_000;

/// Cached executable image: the parsed a.out plus the shared page-cache
/// objects for its sections, so every process running one program shares
/// text pages (private mappings of a common object).
#[derive(Clone, Debug)]
pub struct CachedImage {
    /// Parsed image.
    pub aout: Aout,
    /// Page-cache object for the text section.
    pub text_obj: vm::ObjectId,
    /// Page-cache object for the data section.
    pub data_obj: vm::ObjectId,
}

/// Run options accepted when resuming a stopped LWP (`PIOCRUN` /
/// `PCRUN`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunOpts {
    /// Clear the current signal (`PRCSIG`).
    pub clear_sig: bool,
    /// Clear the current fault (`PRCFAULT`).
    pub clear_fault: bool,
    /// Abort the system call stopped at entry (`PRSABORT`).
    pub abort_syscall: bool,
    /// Single-step: stop on `FLTTRACE` after one instruction (`PRSTEP`).
    pub step: bool,
    /// Resume, then stop again at the next `issig()` (`PRSTOP`).
    pub stop_again: bool,
    /// Complete the first access that would fire a watchpoint instead of
    /// stopping (used to step over a watched access).
    pub bypass_watch_once: bool,
    /// Resume execution at this address instead of the saved PC.
    pub set_pc: Option<u64>,
}

/// The kernel state.
#[derive(Debug, Default)]
pub struct Kernel {
    /// All processes, keyed by pid for deterministic iteration order.
    pub procs: std::collections::BTreeMap<u32, Proc>,
    next_pid: u32,
    /// The system open-file table.
    pub files: FileTable,
    /// Pipes.
    pub pipes: PipeTable,
    /// The VM page cache / anonymous object store.
    pub objects: ObjectStore,
    /// Simulated clock, in ticks (1 tick = 1 retired instruction).
    pub clock: u64,
    /// The event log.
    pub log: EventLog,
    /// Bumped on every pollable state change; `poll` sleepers retry when
    /// it moves.
    pub poll_gen: u64,
    /// Bumped whenever the process table changes shape (create, exit,
    /// reap). `/proc` directory listings are cached against this value.
    pub table_gen: u64,
    /// Image cache keyed by `(fs, node)`.
    pub images: std::collections::HashMap<(u32, u64), CachedImage>,
    /// Installed kernel fault schedule; `None` (the default) means the
    /// kernel never injects a fault and consumes no generator state.
    pub fault_plan: Option<crate::kfault::KernelFaultPlan>,
    /// Execution fast path (software TLB + decoded-instruction cache)
    /// for newly created processes. On by default; the differential
    /// oracle turns it off fleet-wide via `System::set_fast_path`.
    pub fast_path: bool,
    /// Coarse (whole-mapping) invalidation policy for newly created
    /// processes — the bench-only PR 5 comparison knob, applied at
    /// construction through `SimConfig`.
    pub coarse_epochs: bool,
    /// Attached input recorder; `None` means the run is not recorded.
    /// Boxed: the recorder carries the whole input log plus snapshots,
    /// and most kernels never have one.
    pub recorder: Option<Box<crate::record::Recorder>>,
    /// In-flight inbound migration transfers (`PIOCMIGRATE`), keyed by
    /// transfer id. BTreeMap for deterministic iteration.
    pub migrations: std::collections::BTreeMap<u64, crate::migrate::MigXfer>,
    /// Migration protocol counters (`PIOCMIGSTATS`).
    pub mig_stats: crate::migrate::MigStats,
    /// Pending `alarm`/`sleep` deadlines, lazily validated on pop so the
    /// scheduler's timer check is O(1) when nothing is due.
    pub deadlines: crate::deadline::DeadlineHeap,
    /// Completed scheduler rounds; seeds the per-round commit
    /// permutation of the sharded engine and rotates LWP selection, so
    /// it must travel with snapshots to keep `goto_tick` deterministic.
    pub sched_rounds: u64,
}

// A manual impl so `clone()` *is* the copy-on-write snapshot operation:
// page frames are `Arc`-shared (`vm::PageFrame`), so the deep clone of
// the object store and every address space is cheap until either side
// writes. The recorder deliberately does not travel — a snapshot is a
// passive state capture, not a second recording in progress (and cloning
// it would recursively clone every prior snapshot it holds).
impl Clone for Kernel {
    fn clone(&self) -> Kernel {
        Kernel {
            procs: self.procs.clone(),
            next_pid: self.next_pid,
            files: self.files.clone(),
            pipes: self.pipes.clone(),
            objects: self.objects.clone(),
            clock: self.clock,
            log: self.log.clone(),
            poll_gen: self.poll_gen,
            table_gen: self.table_gen,
            images: self.images.clone(),
            fault_plan: self.fault_plan.clone(),
            fast_path: self.fast_path,
            coarse_epochs: self.coarse_epochs,
            recorder: None,
            migrations: self.migrations.clone(),
            mig_stats: self.mig_stats,
            deadlines: self.deadlines.clone(),
            sched_rounds: self.sched_rounds,
        }
    }
}

impl Kernel {
    /// A kernel with an empty process table; pids start at 0.
    pub fn new() -> Kernel {
        Kernel { next_pid: 0, fast_path: true, ..Default::default() }
    }

    /// Allocates the next pid.
    pub fn alloc_pid(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        pid
    }

    /// A copy-on-write snapshot of the kernel: a deep clone whose page
    /// frames are shared until written, with no recorder attached.
    pub fn snapshot(&self) -> Box<Kernel> {
        Box::new(self.clone())
    }

    /// The recorder counters (`PIOCRECSTATS` answers with these); all
    /// zero when the run is not recorded.
    pub fn rec_stats(&self) -> crate::record::RecStats {
        self.recorder.as_ref().map(|r| r.stats).unwrap_or_default()
    }

    /// The fault-injection counters, with the object store's pressure
    /// denials merged in. All zero when no plan is installed; this is
    /// what `PIOCKFAULTSTATS` replies with.
    pub fn kfault_stats(&self) -> crate::kfault::KFaultStats {
        let mut st = self.fault_plan.as_ref().map(|p| p.stats).unwrap_or_default();
        st.enomem_vm = self.objects.pressure_denials();
        st
    }

    /// Looks up a live (non-reaped) process.
    pub fn proc(&self, pid: Pid) -> SysResult<&Proc> {
        self.procs.get(&pid.0).ok_or(Errno::ESRCH)
    }

    /// Looks up a process mutably.
    pub fn proc_mut(&mut self, pid: Pid) -> SysResult<&mut Proc> {
        self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)
    }

    /// Creates a process shell (no address space content, one LWP at
    /// pc 0) and inserts it. Used by boot and by `fork`, which then
    /// replaces the pieces.
    #[allow(clippy::too_many_arguments)]
    pub fn new_proc(
        &mut self,
        ppid: Pid,
        pgrp: Pid,
        sid: Pid,
        cred: Cred,
        fname: &str,
        hosted: bool,
    ) -> Pid {
        let pid = self.alloc_pid();
        let lwp = Lwp::new(Tid(1), 0, 0);
        let mut aspace = vm::AddressSpace::new();
        aspace.set_fast_path(self.fast_path);
        aspace.set_coarse_epochs(self.coarse_epochs);
        let proc = Proc {
            pid,
            ppid,
            pgrp,
            sid,
            cred,
            aspace,
            fds: crate::fd::FdTable::new(),
            lwps: vec![lwp],
            next_tid: 2,
            pending: SigSet::empty(),
            actions: crate::signal::ActionTable::new(),
            trace: crate::proc::TraceState::default(),
            fname: fname.to_string(),
            psargs: fname.to_string(),
            cwd: "/".to_string(),
            umask: 0o022,
            nice: 0,
            start_time: self.clock,
            cpu_time: 0,
            hosted,
            zombie: false,
            exit_status: 0,
            exec_gen: 0,
            ptraced: false,
            stop_reported: false,
            alarm_at: None,
            vfork_parent: None,
            pr_gen: 0,
        };
        self.procs.insert(pid.0, proc);
        self.table_gen = self.table_gen.wrapping_add(1);
        pid
    }

    /// True if `sender` may signal `target` (effective or real uid match,
    /// or super-user).
    pub fn kill_permitted(sender: &Cred, target: &Cred) -> bool {
        sender.is_superuser()
            || sender.euid == target.ruid
            || sender.euid == target.euid
            || sender.ruid == target.ruid
    }

    /// Posts signal `sig` to process `pid` — the "generated" half of the
    /// paper's generated/received distinction. The process stops (or
    /// not) only when it *receives* the signal in `issig()`.
    pub fn post_signal(&mut self, pid: Pid, sig: usize) -> SysResult<()> {
        if sig == 0 || sig >= SigSet::capacity() {
            return Err(Errno::EINVAL);
        }
        let clock = self.clock;
        let proc = self.proc_mut(pid)?;
        if proc.zombie {
            return Ok(());
        }
        proc.touch();
        let _ = clock;
        if sig == SIGCONT {
            // SIGCONT discards pending stop signals and releases
            // job-control stops immediately (its "continue" side effect
            // happens at generation time).
            for s in [23usize, 24, 26, 27] {
                proc.pending.del(s);
            }
            for lwp in &mut proc.lwps {
                if matches!(lwp.state, LwpState::Stopped(StopWhy::JobControl(_))) {
                    lwp.state = LwpState::Runnable;
                    lwp.user_return_pending = true;
                }
            }
        }
        if is_stop_signal(sig) {
            proc.pending.del(SIGCONT);
        }
        let ignored = proc.actions.is_ignored(sig);
        let deliverable_somewhere =
            sig == SIGKILL || (!ignored || proc.trace.sig_trace.has(sig));
        if sig == SIGKILL || !ignored || proc.trace.sig_trace.has(sig) {
            proc.pending.add(sig);
        }
        // Wake interruptible sleepers so they can act on it; SIGKILL
        // additionally breaks every stop.
        for lwp in &mut proc.lwps {
            match &lwp.state {
                LwpState::Sleeping { interruptible: true, .. } if deliverable_somewhere => {
                    let held = lwp.held.has(sig) && sig != SIGKILL;
                    if !held {
                        lwp.state = LwpState::Runnable;
                        lwp.sleep_interrupted = true;
                    }
                }
                LwpState::Stopped(_) if sig == SIGKILL => {
                    lwp.state = LwpState::Runnable;
                    lwp.user_return_pending = true;
                }
                _ => {}
            }
        }
        self.log.push(Event::SigPost { pid, sig });
        self.wake_pollers();
        Ok(())
    }

    /// Stops an LWP with the given reason, logging and waking anything
    /// waiting for the stop.
    pub fn stop_lwp(&mut self, pid: Pid, tid: Tid, why: StopWhy) {
        if let Ok(proc) = self.proc_mut(pid) {
            proc.touch();
            if let Some(lwp) = proc.lwp_mut(tid) {
                lwp.state = LwpState::Stopped(why);
            }
            if matches!(why, StopWhy::Ptrace(_) | StopWhy::JobControl(_)) {
                proc.stop_reported = false;
                // The parent may be in wait().
                let ppid = proc.ppid;
                self.wake_channel(WaitChannel::Child(ppid));
            }
        }
        self.log.push(Event::Stop { pid, tid, why });
        self.wake_channel(WaitChannel::ProcStop(pid));
        self.wake_pollers();
    }

    /// Resumes a stopped LWP (`PIOCRUN`). Fails with `EBUSY` if the LWP
    /// is not stopped, or is stopped for ptrace ("ptrace has control") or
    /// job control (only `SIGCONT` releases those).
    pub fn run_lwp(&mut self, pid: Pid, tid: Tid, opts: RunOpts) -> SysResult<()> {
        let proc = self.proc_mut(pid)?;
        // A failed resume leaves state untouched; the spurious bump on
        // the error paths below merely costs one cache refill.
        proc.touch();
        let Some(lwp) = proc.lwp_mut(tid) else {
            return Err(Errno::ESRCH);
        };
        let was = match lwp.state {
            LwpState::Stopped(StopWhy::Ptrace(_)) | LwpState::Stopped(StopWhy::JobControl(_)) => {
                return Err(Errno::EBUSY);
            }
            LwpState::Stopped(why) => why,
            _ => return Err(Errno::EBUSY),
        };
        if opts.clear_sig {
            lwp.cursig = None;
            lwp.sig_stop_taken = false;
            lwp.ptrace_stop_taken = false;
        }
        if opts.clear_fault {
            lwp.last_fault = None;
        }
        if opts.abort_syscall {
            if let Some(ctx) = &mut lwp.syscall {
                ctx.abort = true;
            }
        }
        if opts.step {
            lwp.single_step = true;
        }
        if opts.stop_again {
            lwp.stop_directive = true;
        }
        if let Some(pc) = opts.set_pc {
            lwp.gregs.pc = pc;
        }
        lwp.state = LwpState::Runnable;
        // Unless the LWP is mid-system-call (entry stop, sleep retry or
        // exit stop — those paths resume inside the call), it must pass
        // issig() before touching user code.
        if lwp.syscall.is_none() {
            lwp.user_return_pending = true;
        }
        if opts.bypass_watch_once {
            proc.aspace.watch_bypass_once = true;
        }
        // Resuming a faulted stop without clearing the fault converts it
        // to its signal (the instruction would otherwise re-execute and
        // re-fault forever); with PRCFAULT the instruction simply
        // re-executes.
        if let StopWhy::Faulted(fault) = was {
            if !opts.clear_fault {
                if let Some(lwp) = proc.lwp_mut(tid) {
                    lwp.last_fault = None;
                }
                let sig = fault.default_signal();
                self.log.push(Event::Run { pid, tid });
                let _ = self.post_signal(pid, sig);
                return Ok(());
            }
        }
        self.log.push(Event::Run { pid, tid });
        Ok(())
    }

    /// Directs every LWP of `pid` to stop (`PIOCSTOP`/`PCDSTOP` without
    /// the wait). Sleeping LWPs are woken so the stop happens promptly
    /// ("a process can be directed to stop while it is sleeping").
    pub fn direct_stop(&mut self, pid: Pid) -> SysResult<()> {
        let proc = self.proc_mut(pid)?;
        if proc.zombie {
            return Err(Errno::ESRCH);
        }
        proc.touch();
        for lwp in &mut proc.lwps {
            match &lwp.state {
                LwpState::Zombie => continue,
                // Already stopped on an event of interest: nothing to do.
                LwpState::Stopped(why) if why.is_event_stop() => continue,
                // Stopped by a competing mechanism (job control, ptrace):
                // latch the directive so that when the competing stop is
                // released the LWP "stops again on a requested stop
                // before exiting issig() — /proc gets the last word."
                LwpState::Stopped(_) => {
                    lwp.stop_directive = true;
                    continue;
                }
                LwpState::Sleeping { interruptible: true, .. } => {
                    lwp.stop_directive = true;
                    lwp.state = LwpState::Runnable;
                    lwp.sleep_interrupted = true;
                }
                _ => {
                    // A runnable LWP takes the stop at its next kernel
                    // entry; the quantum-expiry check guarantees that is
                    // soon.
                    lwp.stop_directive = true;
                }
            }
            lwp.user_return_pending = true;
        }
        Ok(())
    }

    /// Wakes every LWP sleeping on `chan`.
    pub fn wake_channel(&mut self, chan: WaitChannel) {
        for proc in self.procs.values_mut() {
            let mut woke = false;
            for lwp in &mut proc.lwps {
                if let LwpState::Sleeping { chan: c, .. } = lwp.state {
                    if c == chan {
                        lwp.state = LwpState::Runnable;
                        lwp.sleep_interrupted = false;
                        woke = true;
                    }
                }
            }
            if woke {
                proc.touch();
            }
        }
    }

    /// Wakes every `poll` sleeper (after bumping the poll generation).
    pub fn wake_pollers(&mut self) {
        self.poll_gen += 1;
        self.wake_channel(WaitChannel::PollWait);
    }

    /// True if the signal would be delivered (not held, not ignored) or
    /// is already current — the in-sleep `issig()` question.
    pub fn signal_pending_for(&self, pid: Pid, tid: Tid) -> bool {
        let Ok(proc) = self.proc(pid) else {
            return false;
        };
        let Some(lwp) = proc.lwp(tid) else {
            return false;
        };
        if lwp.cursig.is_some() {
            return true;
        }
        // Ignored signals are still promotable when traced.
        let mut ignored = proc.actions.ignored_set();
        ignored.subtract(&proc.trace.sig_trace);
        proc.pending.first_not_in(&lwp.held, &ignored).is_some()
    }

    /// Encodes a wait-status for normal exit.
    pub fn status_exited(code: u8) -> u16 {
        (code as u16) << 8
    }

    /// Encodes a wait-status for death by signal.
    pub fn status_signalled(sig: usize, core: bool) -> u16 {
        (sig as u16 & 0x7F) | if core { 0x80 } else { 0 }
    }

    /// Encodes a wait-status for a stopped (ptrace-visible) child.
    pub fn status_stopped(sig: usize) -> u16 {
        ((sig as u16) << 8) | 0x7F
    }

    /// The default disposition actually applied for `sig`, given the
    /// process's action table.
    pub fn effective_dispo(proc: &Proc, sig: usize) -> DefaultDispo {
        match proc.actions.get(sig).handler {
            crate::signal::Handler::Default => crate::signal::default_dispo(sig),
            crate::signal::Handler::Ignore => DefaultDispo::Ignore,
            crate::signal::Handler::Catch(_) => DefaultDispo::Ignore, // not used for catch
        }
    }

    /// Sum of virtual-memory sizes is not meaningful for zombies; tools
    /// read sizes through this helper.
    pub fn vm_size(&self, pid: Pid) -> u64 {
        self.proc(pid).map(|p| p.aspace.total_size()).unwrap_or(0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn boot_one() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        let p0 = k.new_proc(Pid(0), Pid(0), Pid(0), Cred::superuser(), "sched", true);
        assert_eq!(p0, Pid(0));
        let pid = k.new_proc(p0, p0, p0, Cred::new(100, 10), "target", false);
        (k, pid)
    }

    #[test]
    fn pids_allocate_sequentially() {
        let (mut k, pid) = boot_one();
        assert_eq!(pid, Pid(1));
        assert_eq!(k.alloc_pid(), Pid(2));
    }

    #[test]
    fn post_signal_makes_pending_and_logs() {
        let (mut k, pid) = boot_one();
        k.post_signal(pid, 15).expect("post");
        assert!(k.proc(pid).expect("proc").pending.has(15));
        assert!(k
            .log
            .events()
            .iter()
            .any(|e| matches!(e, Event::SigPost { pid: p, sig: 15 } if *p == pid)));
    }

    #[test]
    fn ignored_signal_not_pended_unless_traced() {
        let (mut k, pid) = boot_one();
        // SIGCHLD default-ignored.
        k.post_signal(pid, crate::signal::SIGCHLD).expect("post");
        assert!(!k.proc(pid).expect("proc").pending.has(crate::signal::SIGCHLD));
        // Tracing it makes it pend.
        k.proc_mut(pid).expect("proc").trace.sig_trace.add(crate::signal::SIGCHLD);
        k.post_signal(pid, crate::signal::SIGCHLD).expect("post");
        assert!(k.proc(pid).expect("proc").pending.has(crate::signal::SIGCHLD));
    }

    #[test]
    fn sigcont_releases_job_control_stop() {
        let (mut k, pid) = boot_one();
        k.stop_lwp(pid, Tid(1), StopWhy::JobControl(23));
        assert!(k.proc(pid).expect("proc").is_stopped());
        k.post_signal(pid, SIGCONT).expect("post");
        let proc = k.proc(pid).expect("proc");
        assert_eq!(proc.rep_lwp().state, LwpState::Runnable);
        assert!(proc.rep_lwp().user_return_pending);
    }

    #[test]
    fn stop_signal_cancels_pending_cont_and_vice_versa() {
        let (mut k, pid) = boot_one();
        k.post_signal(pid, SIGCONT).expect("post");
        assert!(k.proc(pid).expect("p").pending.has(SIGCONT));
        k.post_signal(pid, 24).expect("post");
        let p = k.proc(pid).expect("p");
        assert!(!p.pending.has(SIGCONT));
        assert!(p.pending.has(24));
        k.post_signal(pid, SIGCONT).expect("post");
        assert!(!k.proc(pid).expect("p").pending.has(24));
    }

    #[test]
    fn sigkill_breaks_event_stops() {
        let (mut k, pid) = boot_one();
        k.stop_lwp(pid, Tid(1), StopWhy::Requested);
        k.post_signal(pid, SIGKILL).expect("post");
        assert_eq!(k.proc(pid).expect("p").rep_lwp().state, LwpState::Runnable);
    }

    #[test]
    fn run_lwp_guards() {
        let (mut k, pid) = boot_one();
        // Not stopped: EBUSY.
        assert_eq!(k.run_lwp(pid, Tid(1), RunOpts::default()), Err(Errno::EBUSY));
        // Ptrace stop: EBUSY — "ptrace has control".
        k.stop_lwp(pid, Tid(1), StopWhy::Ptrace(5));
        assert_eq!(k.run_lwp(pid, Tid(1), RunOpts::default()), Err(Errno::EBUSY));
        // Job-control stop: EBUSY — only SIGCONT restarts it.
        k.proc_mut(pid).expect("p").lwps[0].state =
            LwpState::Stopped(StopWhy::JobControl(23));
        assert_eq!(k.run_lwp(pid, Tid(1), RunOpts::default()), Err(Errno::EBUSY));
        // Event stop: resumable.
        k.proc_mut(pid).expect("p").lwps[0].state = LwpState::Stopped(StopWhy::Requested);
        k.run_lwp(pid, Tid(1), RunOpts::default()).expect("run");
        assert_eq!(k.proc(pid).expect("p").rep_lwp().state, LwpState::Runnable);
    }

    #[test]
    fn run_opts_apply() {
        let (mut k, pid) = boot_one();
        {
            let p = k.proc_mut(pid).expect("p");
            p.lwps[0].state = LwpState::Stopped(StopWhy::Signalled(2));
            p.lwps[0].cursig = Some(2);
            p.lwps[0].last_fault = Some(crate::fault::Fault::Bpt);
        }
        let opts = RunOpts {
            clear_sig: true,
            clear_fault: true,
            step: true,
            stop_again: true,
            set_pc: Some(0x4242),
            ..Default::default()
        };
        k.run_lwp(pid, Tid(1), opts).expect("run");
        let l = &k.proc(pid).expect("p").lwps[0];
        assert_eq!(l.cursig, None);
        assert_eq!(l.last_fault, None);
        assert!(l.single_step);
        assert!(l.stop_directive);
        assert_eq!(l.gregs.pc, 0x4242);
    }

    #[test]
    fn direct_stop_wakes_sleepers() {
        let (mut k, pid) = boot_one();
        k.proc_mut(pid).expect("p").lwps[0].state =
            LwpState::Sleeping { chan: WaitChannel::Pause, interruptible: true };
        k.direct_stop(pid).expect("stop");
        let l = &k.proc(pid).expect("p").lwps[0];
        assert_eq!(l.state, LwpState::Runnable);
        assert!(l.stop_directive);
        assert!(l.sleep_interrupted);
    }

    #[test]
    fn wait_status_encodings() {
        assert_eq!(Kernel::status_exited(3), 0x0300);
        assert_eq!(Kernel::status_signalled(9, false), 9);
        assert_eq!(Kernel::status_signalled(11, true), 11 | 0x80);
        assert_eq!(Kernel::status_stopped(5), (5 << 8) | 0x7F);
    }

    #[test]
    fn kill_permission() {
        let root = Cred::superuser();
        let a = Cred::new(100, 10);
        let b = Cred::new(200, 10);
        assert!(Kernel::kill_permitted(&root, &a));
        assert!(Kernel::kill_permitted(&a, &a));
        assert!(!Kernel::kill_permitted(&a, &b));
    }
}
