//! Deterministic record/replay: the input log that makes a run.
//!
//! The whole simulation is deterministic — same seed, same operation
//! sequence, same transcript (the 32-seed oracles of PRs 2–7 are built
//! on exactly that). So a run *is* its input history: the construction
//! [`SimConfig`] plus every nondeterministic input crossing the host
//! boundary (file installs, spawns, host-level system calls, public
//! scheduler steps). [`Recorder`] captures that history as it happens;
//! replaying it through the same public API re-materializes the run at
//! any position.
//!
//! ## Recording format
//!
//! A [`Recording`] is the construction config plus a vector of
//! [`Record`]s. Each record is one [`Input`] — one host-boundary call —
//! plus a 64-bit FNV-1a digest folded over three things:
//!
//! 1. the input's stable little-endian encoding ([`Input::encode`]),
//! 2. the encoded *result* the call returned (bytes read, fd numbers,
//!    errnos, poll bits — everything the caller observed), and
//! 3. the kernel clock after the call.
//!
//! Consecutive public [`crate::System::step`] calls coalesce into one
//! `Steps` record (up to [`STEPS_COALESCE_MAX`]), folding each step's
//! progress bit and post-step clock into the running digest, so pure
//! execution is logged in O(1) space per scheduling burst.
//!
//! Replay re-executes each input through the public API with a fresh
//! recorder attached; the re-computed digest must equal the recorded
//! one, record by record. The first mismatch is a typed
//! [`ReplayDivergence`] naming the exact virtual tick (= record index),
//! so a corrupted log or a non-reproduced schedule is caught at the
//! point of divergence, never silently drifted past.
//!
//! ## Snapshot policy
//!
//! Every [`SimConfig::snapshot_every`] records, the recorder stores a
//! copy-on-write snapshot: a deep [`Kernel`] clone (page frames are
//! `Arc`-shared [`vm::PageFrame`]s — PR 5–6's COW machinery makes the
//! clone cheap and lazily materialized) plus a clone of the root memfs.
//! A snapshot at position `p` is the machine state after applying the
//! first `p` records; `goto`-style navigation restores the nearest
//! snapshot at or below the target and replays the remainder.

use crate::config::SimConfig;
use crate::kernel::Kernel;
use vfs::{Cred, OFlags, PollStatus, SysResult};

/// Maximum public `step()` calls coalesced into one `Steps` record.
/// Bounds how far apart snapshot opportunities can drift during long
/// free-running bursts while keeping the log compact.
pub const STEPS_COALESCE_MAX: u64 = 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_01b3;

/// Folds `bytes` into an FNV-1a digest.
fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of `bytes` from the standard offset basis — the same
/// fold the recording digests use. Exposed so the migration protocol and
/// the on-disk recording format can stamp payloads with a digest the
/// receiving side recomputes identically.
pub fn fnv(bytes: &[u8]) -> u64 {
    fnv_fold(FNV_OFFSET, bytes)
}

/// One nondeterministic input to a run: a host-boundary call with
/// everything needed to re-issue it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Input {
    /// `System::install_aout` / `install_program` (stored post-assembly,
    /// so replay needs no assembler).
    InstallFile {
        /// Absolute path in the root file system.
        path: String,
        /// File mode bits.
        mode: u16,
        /// Serialized a.out image (or raw file content).
        bytes: Vec<u8>,
    },
    /// `System::install_dir`.
    InstallDir {
        /// Absolute path.
        path: String,
        /// Directory mode bits.
        mode: u16,
    },
    /// `System::spawn_hosted`.
    SpawnHosted {
        /// Process name.
        name: String,
        /// Credentials.
        cred: Cred,
    },
    /// `System::spawn_program`.
    SpawnProgram {
        /// Parent pid.
        parent: u32,
        /// Executable path.
        path: String,
        /// Argument vector.
        argv: Vec<String>,
    },
    /// A burst of public `System::step` calls.
    Steps {
        /// Number of coalesced steps.
        n: u64,
    },
    /// `System::host_open`.
    HostOpen {
        /// Calling pid.
        pid: u32,
        /// Path opened.
        path: String,
        /// Open flags.
        flags: OFlags,
    },
    /// `System::host_close`.
    HostClose {
        /// Calling pid.
        pid: u32,
        /// Descriptor.
        fd: u32,
    },
    /// `System::host_read`.
    HostRead {
        /// Calling pid.
        pid: u32,
        /// Descriptor.
        fd: u32,
        /// Buffer length requested.
        len: u32,
    },
    /// `System::host_write`.
    HostWrite {
        /// Calling pid.
        pid: u32,
        /// Descriptor.
        fd: u32,
        /// Bytes written.
        data: Vec<u8>,
    },
    /// `System::host_lseek`.
    HostLseek {
        /// Calling pid.
        pid: u32,
        /// Descriptor.
        fd: u32,
        /// Offset.
        off: i64,
        /// Whence.
        whence: u32,
    },
    /// `System::host_ioctl`.
    HostIoctl {
        /// Calling pid.
        pid: u32,
        /// Descriptor.
        fd: u32,
        /// Request number.
        req: u32,
        /// Argument bytes.
        arg: Vec<u8>,
    },
    /// `System::host_kill`.
    HostKill {
        /// Calling pid.
        pid: u32,
        /// Target pid.
        target: u32,
        /// Signal number.
        sig: u32,
    },
    /// `System::host_wait`.
    HostWait {
        /// Calling pid.
        pid: u32,
    },
    /// `System::host_poll`.
    HostPoll {
        /// Calling pid.
        pid: u32,
        /// Descriptors polled.
        fds: Vec<u32>,
    },
    /// `System::host_poll_in`.
    HostPollIn {
        /// Calling pid.
        pid: u32,
        /// Descriptors polled.
        fds: Vec<u32>,
    },
    /// `System::poll_fd` — the instantaneous single-descriptor poll.
    HostPollFd {
        /// Calling pid.
        pid: u32,
        /// Descriptor polled.
        fd: u32,
    },
}

fn enc_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn enc_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u64).to_le_bytes());
    out.extend_from_slice(b);
}

fn enc_cred(c: &Cred, out: &mut Vec<u8>) {
    for v in [c.ruid, c.euid, c.suid, c.rgid, c.egid, c.sgid] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(c.groups.len() as u64).to_le_bytes());
    for g in &c.groups {
        out.extend_from_slice(&g.to_le_bytes());
    }
}

fn oflags_bits(f: OFlags) -> u8 {
    (f.read as u8)
        | (f.write as u8) << 1
        | (f.excl as u8) << 2
        | (f.creat as u8) << 3
        | (f.trunc as u8) << 4
}

impl Input {
    /// Short operation name, for transcripts and `sdb` displays.
    pub fn name(&self) -> &'static str {
        match self {
            Input::InstallFile { .. } => "install-file",
            Input::InstallDir { .. } => "install-dir",
            Input::SpawnHosted { .. } => "spawn-hosted",
            Input::SpawnProgram { .. } => "spawn-program",
            Input::Steps { .. } => "steps",
            Input::HostOpen { .. } => "open",
            Input::HostClose { .. } => "close",
            Input::HostRead { .. } => "read",
            Input::HostWrite { .. } => "write",
            Input::HostLseek { .. } => "lseek",
            Input::HostIoctl { .. } => "ioctl",
            Input::HostKill { .. } => "kill",
            Input::HostWait { .. } => "wait",
            Input::HostPoll { .. } => "poll",
            Input::HostPollIn { .. } => "poll-in",
            Input::HostPollFd { .. } => "poll-fd",
        }
    }

    /// Stable little-endian encoding: a tag byte plus the fields. The
    /// digest covers this, so any difference in what was asked — not
    /// just in what came back — diverges.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Input::InstallFile { path, mode, bytes } => {
                out.push(0);
                enc_str(path, out);
                out.extend_from_slice(&mode.to_le_bytes());
                enc_bytes(bytes, out);
            }
            Input::InstallDir { path, mode } => {
                out.push(1);
                enc_str(path, out);
                out.extend_from_slice(&mode.to_le_bytes());
            }
            Input::SpawnHosted { name, cred } => {
                out.push(2);
                enc_str(name, out);
                enc_cred(cred, out);
            }
            Input::SpawnProgram { parent, path, argv } => {
                out.push(3);
                out.extend_from_slice(&parent.to_le_bytes());
                enc_str(path, out);
                out.extend_from_slice(&(argv.len() as u64).to_le_bytes());
                for a in argv {
                    enc_str(a, out);
                }
            }
            Input::Steps { .. } => {
                // The count is deliberately excluded: it grows as steps
                // coalesce, and each step already folds its own progress
                // bit and clock into the digest.
                out.push(4);
            }
            Input::HostOpen { pid, path, flags } => {
                out.push(5);
                out.extend_from_slice(&pid.to_le_bytes());
                enc_str(path, out);
                out.push(oflags_bits(*flags));
            }
            Input::HostClose { pid, fd } => {
                out.push(6);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&fd.to_le_bytes());
            }
            Input::HostRead { pid, fd, len } => {
                out.push(7);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&fd.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            Input::HostWrite { pid, fd, data } => {
                out.push(8);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&fd.to_le_bytes());
                enc_bytes(data, out);
            }
            Input::HostLseek { pid, fd, off, whence } => {
                out.push(9);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&fd.to_le_bytes());
                out.extend_from_slice(&off.to_le_bytes());
                out.extend_from_slice(&whence.to_le_bytes());
            }
            Input::HostIoctl { pid, fd, req, arg } => {
                out.push(10);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&fd.to_le_bytes());
                out.extend_from_slice(&req.to_le_bytes());
                enc_bytes(arg, out);
            }
            Input::HostKill { pid, target, sig } => {
                out.push(11);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&target.to_le_bytes());
                out.extend_from_slice(&sig.to_le_bytes());
            }
            Input::HostWait { pid } => {
                out.push(12);
                out.extend_from_slice(&pid.to_le_bytes());
            }
            Input::HostPoll { pid, fds } => {
                out.push(13);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&(fds.len() as u64).to_le_bytes());
                for fd in fds {
                    out.extend_from_slice(&fd.to_le_bytes());
                }
            }
            Input::HostPollIn { pid, fds } => {
                out.push(14);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&(fds.len() as u64).to_le_bytes());
                for fd in fds {
                    out.extend_from_slice(&fd.to_le_bytes());
                }
            }
            Input::HostPollFd { pid, fd } => {
                out.push(15);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&fd.to_le_bytes());
            }
        }
    }
}

/// Encodes a `SysResult<T>` for the digest: an ok/err tag, the errno on
/// failure, and the caller-visible payload (via `ok`) on success.
pub fn result_bytes<T>(r: &SysResult<T>, ok: impl FnOnce(&T, &mut Vec<u8>)) -> Vec<u8> {
    let mut out = Vec::new();
    match r {
        Ok(v) => {
            out.push(1);
            ok(v, &mut out);
        }
        Err(e) => {
            out.push(0);
            out.extend_from_slice(&(*e as i32).to_le_bytes());
        }
    }
    out
}

/// Encodes a poll-status vector (3 bits per descriptor).
pub fn poll_bytes(sts: &[PollStatus], out: &mut Vec<u8>) {
    out.extend_from_slice(&(sts.len() as u64).to_le_bytes());
    for st in sts {
        out.push((st.readable as u8) | (st.writable as u8) << 1 | (st.hangup as u8) << 2);
    }
}

/// One recorded input plus the digest of (input, result, clock).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The host-boundary call.
    pub input: Input,
    /// FNV-1a over the input encoding, the result encoding and the
    /// post-call kernel clock.
    pub digest: u64,
}

/// A complete recorded run: the construction config plus the input log.
#[derive(Clone, Debug, PartialEq)]
pub struct Recording {
    /// Construction-time configuration, recorded verbatim.
    pub config: SimConfig,
    /// The input log; index = virtual tick.
    pub records: Vec<Record>,
}

impl Recording {
    /// Number of recorded inputs (the run's length in virtual ticks).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The first point where a replay stopped matching its recording.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Record index (virtual tick) of the mismatch.
    pub tick: usize,
    /// Digest the recording expected.
    pub expected: u64,
    /// Digest the replay produced.
    pub got: u64,
}

impl std::fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at tick {}: expected digest {:#018x}, got {:#018x}",
            self.tick, self.expected, self.got
        )
    }
}

impl std::error::Error for ReplayDivergence {}

/// Recorder counters, marshalled little-endian for `PIOCRECSTATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecStats {
    /// Inputs recorded (records in the log).
    pub inputs: u64,
    /// Public scheduler steps folded into `Steps` records.
    pub steps: u64,
    /// Bytes of input + result encoding folded into digests.
    pub bytes_logged: u64,
    /// Copy-on-write snapshots taken.
    pub snapshots: u64,
    /// Inputs re-applied by replay/navigation on this kernel.
    pub replays: u64,
    /// Replay divergences detected.
    pub divergences: u64,
    /// Snapshot restores performed.
    pub restores: u64,
    /// Single-process checkpoint images built (`PIOCCKPT`) or applied
    /// (`PIOCRESTORE`).
    pub ckpts: u64,
    /// Recordings serialised to the on-disk recfile format.
    pub file_saves: u64,
    /// Recfile images parsed back into recordings.
    pub file_loads: u64,
    /// Bytes written to or parsed from recfile images.
    pub file_bytes: u64,
    /// Recfile loads rejected with a typed error.
    pub file_errors: u64,
}

impl RecStats {
    /// Byte length of the wire image.
    pub const WIRE_LEN: usize = 12 * 8;

    /// Serialises to the `PIOCRECSTATS` wire image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_LEN);
        for v in [
            self.inputs,
            self.steps,
            self.bytes_logged,
            self.snapshots,
            self.replays,
            self.divergences,
            self.restores,
            self.ckpts,
            self.file_saves,
            self.file_loads,
            self.file_bytes,
            self.file_errors,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialises from the wire image; `None` if too short.
    pub fn from_bytes(b: &[u8]) -> Option<RecStats> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let w = |i: usize| crate::bytes::le_u64(&b[i * 8..]);
        Some(RecStats {
            inputs: w(0),
            steps: w(1),
            bytes_logged: w(2),
            snapshots: w(3),
            replays: w(4),
            divergences: w(5),
            restores: w(6),
            ckpts: w(7),
            file_saves: w(8),
            file_loads: w(9),
            file_bytes: w(10),
            file_errors: w(11),
        })
    }
}

/// A copy-on-write snapshot: the machine state after applying the first
/// `pos` records. The kernel clone shares page frames (`Arc`) with the
/// live run; the root memfs travels with it so installed files and
/// guest-written data restore too. Mounted `/proc` faces are *views*
/// over the kernel and are reconstructed fresh on restore.
#[derive(Debug)]
pub struct Snap {
    /// Record index this snapshot corresponds to.
    pub pos: usize,
    /// Deep kernel clone (recorder detached).
    pub kernel: Box<Kernel>,
    /// Root file-system clone.
    pub root: vfs::MemFs<Kernel>,
    /// Wire-transport state per mounted slot (slot index → snapshot) for
    /// remote mounts; the transport queues/sessions live outside the
    /// kernel, so `goto`-style restores replant them here instead of
    /// falling back to a full rebuild.
    pub wires: Vec<(usize, vfs::remote::WireSnapshot)>,
}

/// The live recording state attached to a [`Kernel`].
#[derive(Debug)]
pub struct Recorder {
    /// Construction config, stored verbatim for the recording head.
    pub config: SimConfig,
    /// The input log so far.
    pub records: Vec<Record>,
    /// When non-zero, host-boundary calls are internal (replay or the
    /// pump loops of an outer recorded call) and must not record.
    pub suppress: u32,
    /// Snapshot interval in records; 0 disables snapshots.
    pub snap_every: usize,
    /// Snapshots, ascending by position.
    pub snaps: Vec<Snap>,
    /// Counters behind `PIOCRECSTATS`.
    pub stats: RecStats,
}

impl Recorder {
    /// A recorder for a run constructed under `config`.
    pub fn new(config: SimConfig) -> Recorder {
        let snap_every = config.snapshot_every;
        Recorder {
            config,
            records: Vec::new(),
            suppress: 0,
            snap_every,
            snaps: Vec::new(),
            stats: RecStats::default(),
        }
    }

    /// Commits one non-step input with its encoded result.
    pub fn commit(&mut self, input: Input, result: &[u8], clock: u64) {
        let mut enc = Vec::new();
        input.encode(&mut enc);
        let mut h = fnv_fold(FNV_OFFSET, &enc);
        h = fnv_fold(h, result);
        h = fnv_fold(h, &clock.to_le_bytes());
        self.stats.inputs += 1;
        self.stats.bytes_logged += (enc.len() + result.len()) as u64;
        self.records.push(Record { input, digest: h });
    }

    /// True when the next public `step()` will extend the current
    /// `Steps` record instead of starting a new one.
    pub fn step_will_extend(&self) -> bool {
        matches!(
            self.records.last(),
            Some(Record { input: Input::Steps { n }, .. }) if *n < STEPS_COALESCE_MAX
        )
    }

    /// Commits one public scheduler step, coalescing into the trailing
    /// `Steps` record where possible.
    pub fn commit_step(&mut self, ran: bool, clock: u64) {
        self.stats.steps += 1;
        let mut fold = [0u8; 9];
        fold[0] = ran as u8;
        fold[1..9].copy_from_slice(&clock.to_le_bytes());
        if self.step_will_extend() {
            if let Some(Record { input: Input::Steps { n }, digest }) = self.records.last_mut() {
                *n += 1;
                *digest = fnv_fold(*digest, &fold);
                self.stats.bytes_logged += fold.len() as u64;
                return;
            }
        }
        let input = Input::Steps { n: 1 };
        let mut enc = Vec::new();
        input.encode(&mut enc);
        let mut h = fnv_fold(FNV_OFFSET, &enc);
        h = fnv_fold(h, &fold);
        self.stats.inputs += 1;
        self.stats.bytes_logged += (enc.len() + fold.len()) as u64;
        self.records.push(Record { input, digest: h });
    }

    /// True when the recorder wants a snapshot before the next record is
    /// created (the current position is a multiple of the interval and
    /// has no snapshot yet).
    pub fn wants_snapshot(&self, will_extend: bool) -> bool {
        if self.snap_every == 0 || will_extend {
            return false;
        }
        let pos = self.records.len();
        pos.is_multiple_of(self.snap_every) && self.snaps.last().map(|s| s.pos) != Some(pos)
    }

    /// Stores a snapshot at the current position.
    pub fn push_snap(
        &mut self,
        kernel: Box<Kernel>,
        root: vfs::MemFs<Kernel>,
        wires: Vec<(usize, vfs::remote::WireSnapshot)>,
    ) {
        self.stats.snapshots += 1;
        self.snaps.push(Snap { pos: self.records.len(), kernel, root, wires });
    }

    /// The nearest snapshot at or below `pos`, if any.
    pub fn nearest_snap(&self, pos: usize) -> Option<&Snap> {
        self.snaps.iter().rev().find(|s| s.pos <= pos)
    }

    /// Extracts the recording (config + log) for storage or replay.
    pub fn recording(&self) -> Recording {
        Recording { config: self.config.clone(), records: self.records.clone() }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn digest_covers_input_result_and_clock() {
        let mk = |data: &[u8], res: &[u8], clock: u64| {
            let mut r = Recorder::new(SimConfig::new());
            r.commit(
                Input::HostWrite { pid: 2, fd: 3, data: data.to_vec() },
                res,
                clock,
            );
            r.records[0].digest
        };
        let base = mk(b"abc", b"ok", 7);
        assert_eq!(base, mk(b"abc", b"ok", 7));
        assert_ne!(base, mk(b"abd", b"ok", 7));
        assert_ne!(base, mk(b"abc", b"no", 7));
        assert_ne!(base, mk(b"abc", b"ok", 8));
    }

    #[test]
    fn steps_coalesce_up_to_cap() {
        let mut r = Recorder::new(SimConfig::new());
        for i in 0..(STEPS_COALESCE_MAX + 2) {
            r.commit_step(true, i);
        }
        assert_eq!(r.records.len(), 2);
        assert_eq!(
            r.records[0].input,
            Input::Steps { n: STEPS_COALESCE_MAX }
        );
        assert_eq!(r.records[1].input, Input::Steps { n: 2 });
        assert_eq!(r.stats.steps, STEPS_COALESCE_MAX + 2);
    }

    #[test]
    fn snapshot_positions_follow_interval() {
        let mut r = Recorder::new(SimConfig::new().snapshot_every(2));
        assert!(r.wants_snapshot(false));
        r.push_snap(Box::new(Kernel::new()), vfs::MemFs::new(), Vec::new());
        assert!(!r.wants_snapshot(false));
        r.commit(Input::HostWait { pid: 1 }, b"", 0);
        assert!(!r.wants_snapshot(false));
        r.commit(Input::HostWait { pid: 1 }, b"", 1);
        assert!(r.wants_snapshot(false));
        assert!(!r.wants_snapshot(true));
        assert_eq!(r.nearest_snap(1).map(|s| s.pos), Some(0));
    }

    #[test]
    fn rec_stats_roundtrip() {
        let st = RecStats {
            inputs: 1,
            steps: 2,
            bytes_logged: 3,
            snapshots: 4,
            replays: 5,
            divergences: 6,
            restores: 7,
            ckpts: 8,
            file_saves: 9,
            file_loads: 10,
            file_bytes: 11,
            file_errors: 12,
        };
        assert_eq!(RecStats::from_bytes(&st.to_bytes()), Some(st));
        assert!(RecStats::from_bytes(&[0u8; 7]).is_none());
    }
}
