//! Per-kernel timer deadline index.
//!
//! The scheduler used to discover due `alarm()` timers and
//! `nanosleep` wakeups by scanning every LWP of every process on every
//! step — O(procs × lwps) work plus a fresh `Vec` allocation per step,
//! all of it wasted on the overwhelmingly common step where nothing is
//! due. [`DeadlineHeap`] replaces the scan with a min-heap of
//! `(tick, pid)` entries, pushed when a deadline is armed (`alarm`,
//! `sleep`) and *lazily* validated when popped: a process may have
//! cancelled its alarm, been killed, or been woken early, so an entry
//! is only trusted if the process still holds a matching live deadline.
//!
//! Lazy deletion keeps the arm/disarm paths O(log n) with no lookup
//! structure; stale entries cost one pop each. Entries are keyed
//! `(tick, pid)` so ties break by pid — the same order the legacy scan
//! produced — and the heap is part of [`crate::Kernel`], so snapshots
//! and `goto_tick` restores carry it wholesale.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap of pending timer deadlines, keyed `(tick, pid)`.
#[derive(Clone, Debug, Default)]
pub struct DeadlineHeap {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl DeadlineHeap {
    /// Records that `pid` has a deadline at absolute tick `t`. Duplicate
    /// and stale entries are fine — they are filtered on pop.
    pub fn arm(&mut self, t: u64, pid: u32) {
        self.heap.push(Reverse((t, pid)));
    }

    /// The earliest recorded deadline, without validation. Callers must
    /// treat this as a hint: the entry may be stale.
    pub fn peek(&self) -> Option<(u64, u32)> {
        self.heap.peek().map(|Reverse(e)| *e)
    }

    /// Pops the earliest entry.
    pub fn pop(&mut self) -> Option<(u64, u32)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of live + stale entries (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are recorded at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_then_pid_order() {
        let mut h = DeadlineHeap::default();
        h.arm(20, 7);
        h.arm(10, 9);
        h.arm(10, 3);
        h.arm(15, 1);
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![(10, 3), (10, 9), (15, 1), (20, 7)]);
    }

    #[test]
    fn duplicates_survive_and_clone_is_deep() {
        let mut h = DeadlineHeap::default();
        h.arm(5, 2);
        h.arm(5, 2);
        let mut c = h.clone();
        assert_eq!(h.len(), 2);
        assert_eq!(c.pop(), Some((5, 2)));
        assert_eq!(c.pop(), Some((5, 2)));
        assert!(c.is_empty());
        assert_eq!(h.len(), 2, "clone must not drain the original");
    }
}
