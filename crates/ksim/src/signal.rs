//! Signals: numbering, names, default dispositions and actions.
//!
//! Numbering follows SVR4. The set type provides for up to 128 signals
//! per the paper; signals 1..=27 are defined.

use crate::bitset::BitSet;

/// Signal set type (`sigset_t`), capacity 128 per the paper.
pub type SigSet = BitSet<2>;

/// Hangup.
pub const SIGHUP: usize = 1;
/// Interrupt (usually from the terminal).
pub const SIGINT: usize = 2;
/// Quit; default action dumps core.
pub const SIGQUIT: usize = 3;
/// Illegal instruction.
pub const SIGILL: usize = 4;
/// Trace/breakpoint trap.
pub const SIGTRAP: usize = 5;
/// Abort.
pub const SIGABRT: usize = 6;
/// Emulation trap.
pub const SIGEMT: usize = 7;
/// Arithmetic exception.
pub const SIGFPE: usize = 8;
/// Kill (cannot be caught, blocked or ignored).
pub const SIGKILL: usize = 9;
/// Bus error.
pub const SIGBUS: usize = 10;
/// Segmentation violation.
pub const SIGSEGV: usize = 11;
/// Bad system call.
pub const SIGSYS: usize = 12;
/// Broken pipe.
pub const SIGPIPE: usize = 13;
/// Alarm clock.
pub const SIGALRM: usize = 14;
/// Termination request.
pub const SIGTERM: usize = 15;
/// User signal 1.
pub const SIGUSR1: usize = 16;
/// User signal 2.
pub const SIGUSR2: usize = 17;
/// Child status changed; default ignored.
pub const SIGCHLD: usize = 18;
/// Power failure; default ignored.
pub const SIGPWR: usize = 19;
/// Window size change; default ignored.
pub const SIGWINCH: usize = 20;
/// Urgent socket condition; default ignored.
pub const SIGURG: usize = 21;
/// Pollable event.
pub const SIGPOLL: usize = 22;
/// Stop (job control; cannot be caught, blocked or ignored).
pub const SIGSTOP: usize = 23;
/// Terminal stop (job control).
pub const SIGTSTP: usize = 24;
/// Continue stopped process.
pub const SIGCONT: usize = 25;
/// Background read from control terminal (job control stop).
pub const SIGTTIN: usize = 26;
/// Background write to control terminal (job control stop).
pub const SIGTTOU: usize = 27;

/// Highest defined signal number.
pub const NSIG_DEFINED: usize = 27;

/// What the system does with an undisposed signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefaultDispo {
    /// Terminate the process.
    Terminate,
    /// Terminate with a core dump.
    Core,
    /// Job-control stop (handled inside `issig()`, the paper notes).
    Stop,
    /// Continue if stopped; otherwise ignore.
    Continue,
    /// Discard.
    Ignore,
}

/// The default disposition of `sig`.
pub fn default_dispo(sig: usize) -> DefaultDispo {
    use DefaultDispo::*;
    match sig {
        SIGQUIT | SIGILL | SIGTRAP | SIGABRT | SIGEMT | SIGFPE | SIGBUS | SIGSEGV | SIGSYS => {
            Core
        }
        SIGCHLD | SIGPWR | SIGWINCH | SIGURG => Ignore,
        SIGSTOP | SIGTSTP | SIGTTIN | SIGTTOU => Stop,
        SIGCONT => Continue,
        _ => Terminate,
    }
}

/// True for the job-control stop signals.
pub fn is_stop_signal(sig: usize) -> bool {
    matches!(sig, SIGSTOP | SIGTSTP | SIGTTIN | SIGTTOU)
}

/// Symbolic name of `sig` (e.g. `SIGINT`), or `SIG<n>` for undefined
/// numbers.
pub fn sig_name(sig: usize) -> String {
    let known = [
        "", "SIGHUP", "SIGINT", "SIGQUIT", "SIGILL", "SIGTRAP", "SIGABRT", "SIGEMT", "SIGFPE",
        "SIGKILL", "SIGBUS", "SIGSEGV", "SIGSYS", "SIGPIPE", "SIGALRM", "SIGTERM", "SIGUSR1",
        "SIGUSR2", "SIGCHLD", "SIGPWR", "SIGWINCH", "SIGURG", "SIGPOLL", "SIGSTOP", "SIGTSTP",
        "SIGCONT", "SIGTTIN", "SIGTTOU",
    ];
    match known.get(sig) {
        Some(&n) if !n.is_empty() => n.to_string(),
        _ => format!("SIG{sig}"),
    }
}

/// How a signal is disposed by the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Handler {
    /// `SIG_DFL`.
    #[default]
    Default,
    /// `SIG_IGN`.
    Ignore,
    /// Catch at this user-code address.
    Catch(u64),
}

/// A signal action (`sigaction`): the handler plus the mask to hold while
/// it runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SigAction {
    /// Disposition.
    pub handler: Handler,
    /// Signals additionally held during the handler.
    pub mask: SigSet,
}

/// Per-process signal action table, indexed by signal number.
#[derive(Clone, Debug)]
pub struct ActionTable {
    actions: Vec<SigAction>,
}

impl Default for ActionTable {
    fn default() -> Self {
        ActionTable { actions: vec![SigAction::default(); SigSet::capacity()] }
    }
}

impl ActionTable {
    /// All-default actions.
    pub fn new() -> ActionTable {
        ActionTable::default()
    }

    /// The action for `sig`.
    pub fn get(&self, sig: usize) -> SigAction {
        self.actions.get(sig).copied().unwrap_or_default()
    }

    /// Installs an action. SIGKILL and SIGSTOP cannot be caught or
    /// ignored; attempts are reported as `false` and ignored.
    pub fn set(&mut self, sig: usize, act: SigAction) -> bool {
        if sig == 0 || sig >= SigSet::capacity() {
            return false;
        }
        if (sig == SIGKILL || sig == SIGSTOP) && act.handler != Handler::Default {
            return false;
        }
        self.actions[sig] = act;
        true
    }

    /// True if `sig` is currently ignored (explicitly, or by default
    /// disposition when the handler is `Default`).
    pub fn is_ignored(&self, sig: usize) -> bool {
        match self.get(sig).handler {
            Handler::Ignore => true,
            Handler::Default => default_dispo(sig) == DefaultDispo::Ignore,
            Handler::Catch(_) => false,
        }
    }

    /// The set of signals currently ignored — used by signal promotion.
    pub fn ignored_set(&self) -> SigSet {
        let mut s = SigSet::empty();
        for sig in 1..SigSet::capacity() {
            // Job-control stop signals are never "ignored" for promotion
            // purposes when their action is Default: issig must see them
            // to perform the job-control stop.
            if self.is_ignored(sig) {
                s.add(sig);
            }
        }
        s
    }

    /// Resets caught signals to default (performed by `exec`).
    pub fn reset_caught(&mut self) {
        for act in &mut self.actions {
            if matches!(act.handler, Handler::Catch(_)) {
                *act = SigAction::default();
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn dispositions() {
        assert_eq!(default_dispo(SIGTERM), DefaultDispo::Terminate);
        assert_eq!(default_dispo(SIGSEGV), DefaultDispo::Core);
        assert_eq!(default_dispo(SIGTSTP), DefaultDispo::Stop);
        assert_eq!(default_dispo(SIGCHLD), DefaultDispo::Ignore);
        assert_eq!(default_dispo(SIGCONT), DefaultDispo::Continue);
        assert!(is_stop_signal(SIGSTOP));
        assert!(!is_stop_signal(SIGCONT));
    }

    #[test]
    fn names() {
        assert_eq!(sig_name(SIGINT), "SIGINT");
        assert_eq!(sig_name(SIGTTOU), "SIGTTOU");
        assert_eq!(sig_name(99), "SIG99");
    }

    #[test]
    fn kill_and_stop_uncatchable() {
        let mut t = ActionTable::new();
        assert!(!t.set(SIGKILL, SigAction { handler: Handler::Ignore, mask: SigSet::empty() }));
        assert!(!t.set(SIGSTOP, SigAction { handler: Handler::Catch(0x1000), mask: SigSet::empty() }));
        assert!(t.set(SIGINT, SigAction { handler: Handler::Catch(0x1000), mask: SigSet::empty() }));
        assert_eq!(t.get(SIGKILL).handler, Handler::Default);
    }

    #[test]
    fn ignored_set_reflects_defaults_and_actions() {
        let mut t = ActionTable::new();
        assert!(t.is_ignored(SIGCHLD), "default-ignored");
        assert!(!t.is_ignored(SIGINT));
        t.set(SIGINT, SigAction { handler: Handler::Ignore, mask: SigSet::empty() });
        assert!(t.is_ignored(SIGINT));
        t.set(SIGCHLD, SigAction { handler: Handler::Catch(0x1000), mask: SigSet::empty() });
        assert!(!t.is_ignored(SIGCHLD));
        let s = t.ignored_set();
        assert!(s.has(SIGWINCH));
        assert!(s.has(SIGINT));
        assert!(!s.has(SIGCHLD));
        // Stop signals are not in the ignored set: issig must see them.
        assert!(!s.has(SIGTSTP));
    }

    #[test]
    fn exec_resets_caught_only() {
        let mut t = ActionTable::new();
        t.set(SIGINT, SigAction { handler: Handler::Catch(0x1000), mask: SigSet::empty() });
        t.set(SIGQUIT, SigAction { handler: Handler::Ignore, mask: SigSet::empty() });
        t.reset_caught();
        assert_eq!(t.get(SIGINT).handler, Handler::Default);
        assert_eq!(t.get(SIGQUIT).handler, Handler::Ignore, "ignored survives exec");
    }
}
