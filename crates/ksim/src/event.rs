//! The kernel event log.
//!
//! Tests and the figure-regeneration harness need to observe *what the
//! kernel did*: which stops were taken and why (Figure 3/Figure 4), what
//! signals were posted and delivered, forks, execs and exits. The kernel
//! appends to this log at each such point; it costs one `Vec` push and
//! can be disabled for benchmarks.

use crate::proc::{StopWhy, Tid};
use vfs::Pid;

/// One kernel event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// An LWP stopped.
    Stop {
        /// The process.
        pid: Pid,
        /// The LWP.
        tid: Tid,
        /// Why it stopped.
        why: StopWhy,
    },
    /// An LWP was set running from a stop.
    Run {
        /// The process.
        pid: Pid,
        /// The LWP.
        tid: Tid,
    },
    /// A signal was posted (made pending).
    SigPost {
        /// Target process.
        pid: Pid,
        /// Signal number.
        sig: usize,
    },
    /// A signal was delivered: a handler was entered or the default
    /// action taken.
    SigDeliver {
        /// The process.
        pid: Pid,
        /// Signal number.
        sig: usize,
        /// True when a user handler was entered (false: default action).
        handled: bool,
    },
    /// The process terminated with a core dump.
    CoreDump {
        /// The process.
        pid: Pid,
        /// The fatal signal.
        sig: usize,
    },
    /// A process exited.
    Exit {
        /// The process.
        pid: Pid,
        /// Its wait-status word.
        status: u16,
    },
    /// A fork created `child`.
    Fork {
        /// The parent.
        parent: Pid,
        /// The new process.
        child: Pid,
    },
    /// A process performed exec.
    Exec {
        /// The process.
        pid: Pid,
        /// The executable path.
        path: String,
        /// The exec installed set-id credentials.
        setid: bool,
    },
}

/// A bounded in-kernel event log.
#[derive(Clone, Debug)]
pub struct EventLog {
    events: Vec<Event>,
    /// Recording on/off (benchmarks switch it off).
    pub enabled: bool,
    /// Events discarded after the log filled.
    pub dropped: u64,
    cap: usize,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog { events: Vec::new(), enabled: true, dropped: 0, cap: 1 << 16 }
    }
}

impl EventLog {
    /// A log with the default capacity.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Appends an event (no-op when disabled; counts drops when full).
    pub fn push(&mut self, ev: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(ev);
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Removes and returns all recorded events.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Convenience: how many times `sig` was posted to `pid`. The
    /// remote-wire oracle counts these to prove that a control message
    /// retried across a lossy network still took effect exactly once.
    pub fn sig_posts_of(&self, pid: Pid, sig: usize) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::SigPost { pid: p, sig: s } if *p == pid && *s == sig))
            .count()
    }

    /// Convenience: the stops recorded for `pid`, in order.
    pub fn stops_of(&self, pid: Pid) -> Vec<StopWhy> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Stop { pid: p, why, .. } if *p == pid => Some(*why),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn push_take_clear() {
        let mut log = EventLog::new();
        log.push(Event::SigPost { pid: Pid(1), sig: 2 });
        log.push(Event::Stop { pid: Pid(1), tid: Tid(1), why: StopWhy::Signalled(2) });
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.stops_of(Pid(1)), vec![StopWhy::Signalled(2)]);
        assert_eq!(log.stops_of(Pid(2)), vec![]);
        let taken = log.take();
        assert_eq!(taken.len(), 2);
        assert!(log.events().is_empty());
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new();
        log.enabled = false;
        log.push(Event::SigPost { pid: Pid(1), sig: 2 });
        assert!(log.events().is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn capacity_drops_excess() {
        let mut log = EventLog { cap: 2, ..Default::default() };
        for _ in 0..5 {
            log.push(Event::SigPost { pid: Pid(1), sig: 2 });
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped, 3);
    }
}
