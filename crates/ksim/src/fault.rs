//! Machine faults.
//!
//! "Machine faults are not used for inter-process communication and
//! cannot be intercepted or held by a process; stop-on-fault is the
//! preferred method for fielding breakpoints." Fault numbering follows
//! the SVR4 `proc(4)` FLT list; the set type provides for 128 faults.

use crate::bitset::BitSet;
use crate::signal::{SIGBUS, SIGFPE, SIGILL, SIGSEGV, SIGTRAP};

/// Fault set type (`fltset_t`), capacity 128 per the paper.
pub type FltSet = BitSet<2>;

/// Machine faults a traced process can stop on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Fault {
    /// Illegal instruction.
    Ill = 1,
    /// Privileged instruction.
    Priv = 2,
    /// The approved breakpoint instruction.
    Bpt = 3,
    /// Trace trap (single-step).
    Trace = 4,
    /// Memory access fault (protection violation).
    Access = 5,
    /// Memory bounds fault (reference to an unmapped address).
    Bounds = 6,
    /// Integer overflow.
    IntOvf = 7,
    /// Integer zero divide.
    IntZDiv = 8,
    /// Floating-point exception.
    FpErr = 9,
    /// Unrecoverable stack fault.
    Stack = 10,
    /// Recoverable page fault. Transparent when resolved; reportable as
    /// an event of interest only if tracing requests it.
    Page = 11,
    /// Watched-area access (the proposed watchpoint facility).
    Watch = 12,
}

/// Number of defined faults.
pub const NFAULT_DEFINED: usize = 12;

impl Fault {
    /// The fault number (1-based, as in `fltset_t`).
    pub fn number(self) -> usize {
        self as usize
    }

    /// Recovers a fault from its number.
    pub fn from_number(n: usize) -> Option<Fault> {
        use Fault::*;
        Some(match n {
            1 => Ill,
            2 => Priv,
            3 => Bpt,
            4 => Trace,
            5 => Access,
            6 => Bounds,
            7 => IntOvf,
            8 => IntZDiv,
            9 => FpErr,
            10 => Stack,
            11 => Page,
            12 => Watch,
            _ => return None,
        })
    }

    /// Symbolic name in `proc(4)` style.
    pub fn name(self) -> &'static str {
        use Fault::*;
        match self {
            Ill => "FLTILL",
            Priv => "FLTPRIV",
            Bpt => "FLTBPT",
            Trace => "FLTTRACE",
            Access => "FLTACCESS",
            Bounds => "FLTBOUNDS",
            IntOvf => "FLTIOVF",
            IntZDiv => "FLTIZDIV",
            FpErr => "FLTFPE",
            Stack => "FLTSTACK",
            Page => "FLTPAGE",
            Watch => "FLTWATCH",
        }
    }

    /// The signal sent when the fault is not fielded through `/proc`
    /// ("Otherwise the process is sent a signal, normally SIGTRAP or
    /// SIGILL").
    pub fn default_signal(self) -> usize {
        use Fault::*;
        match self {
            Ill | Priv => SIGILL,
            Bpt | Trace | Watch => SIGTRAP,
            Access => SIGBUS,
            Bounds | Stack | Page => SIGSEGV,
            IntOvf | IntZDiv | FpErr => SIGFPE,
        }
    }

    /// All defined faults.
    pub fn all() -> &'static [Fault] {
        use Fault::*;
        &[Ill, Priv, Bpt, Trace, Access, Bounds, IntOvf, IntZDiv, FpErr, Stack, Page, Watch]
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip() {
        for &f in Fault::all() {
            assert_eq!(Fault::from_number(f.number()), Some(f));
        }
        assert_eq!(Fault::from_number(0), None);
        assert_eq!(Fault::from_number(13), None);
    }

    #[test]
    fn default_signals() {
        assert_eq!(Fault::Bpt.default_signal(), SIGTRAP);
        assert_eq!(Fault::Ill.default_signal(), SIGILL);
        assert_eq!(Fault::IntZDiv.default_signal(), SIGFPE);
        assert_eq!(Fault::Bounds.default_signal(), SIGSEGV);
        assert_eq!(Fault::Access.default_signal(), SIGBUS);
    }

    #[test]
    fn names() {
        assert_eq!(Fault::Bpt.name(), "FLTBPT");
        assert_eq!(Fault::Watch.to_string(), "FLTWATCH");
    }

    #[test]
    fn fltset_usage() {
        let mut s = FltSet::empty();
        s.add(Fault::Bpt.number());
        assert!(s.has(Fault::Bpt.number()));
        assert!(!s.has(Fault::Trace.number()));
        assert_eq!(FltSet::capacity(), 128);
    }
}
