//! The kernel fault-injection plane.
//!
//! PR 2 taught the *wire* to fail (`vfs::remote::FaultPlan`); this module
//! teaches the *kernel* to fail. A [`KernelFaultPlan`] is installed on the
//! [`crate::Kernel`] (via [`crate::System::install_fault_plan`]) and rolls
//! a seeded xorshift64* generator at a fixed set of chokepoints:
//!
//! * `EAGAIN` at `fork`/`spawn_program` entry — the process table is
//!   "full" for one attempt;
//! * `EINTR` on blocking /proc waits — the first time `PIOCWSTOP` (flat
//!   ioctl or hier `PCWSTOP` batch) or a host-level read/write would
//!   block, the sleep is interrupted instead;
//! * spurious wakeups on `host_poll_in` — the poll returns with nothing
//!   ready, as a signal-interrupted `poll(2)` restarted by a library
//!   would;
//! * asynchronous target death — before any host-level controller
//!   operation, some live simulated process may be killed (`SIGKILL`) or
//!   made to exit, modelling a target vanishing *between* two controller
//!   operations;
//! * `ENOMEM` at vm allocation sites — these rolls live in
//!   [`vm::MemPressure`], attached to the object store by
//!   `install_fault_plan` with a seed derived from the plan's, and fire
//!   on copy-on-write frame materialisation, `grow_break`, `as_fault`
//!   stack growth and exec image construction.
//!
//! Determinism contract: with no plan installed the kernel consumes no
//! generator state and behaves byte-for-byte as before; with a plan whose
//! rates are all zero every roll short-circuits before touching the
//! generator, so a zero-rate plan is *also* byte-for-byte identical to a
//! clean run. A given `(seed, rates)` pair replays the exact same fault
//! schedule, which is what lets `tests/kernel_fault.rs` pin 32 seeds.
//!
//! Observability: every injection bumps a [`KFaultStats`] counter; the
//! flat face answers `PIOCKFAULTSTATS` with the marshalled counters
//! (vm pressure denials merged in), and the reply crosses the remote
//! wire like any other ioctl.

use vfs::Errno;

/// Per-site injection rates, in permille (0 = never, 1000 = always).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelFaultRates {
    /// `ENOMEM` rate for vm allocation sites (applied to the object
    /// store's [`vm::MemPressure`] by `install_fault_plan`).
    pub enomem: u16,
    /// `EAGAIN` rate at `fork`/`spawn` entry.
    pub eagain: u16,
    /// `EINTR` rate on blocking /proc waits.
    pub eintr: u16,
    /// Spurious-wakeup rate on `host_poll_in`.
    pub wakeup: u16,
    /// Asynchronous target-death rate per host-level controller op.
    pub death: u16,
    /// Target-death rate *inside* a single blocking host op's pump loop
    /// (rolled once per scheduler step while e.g. a `PIOCWSTOP` sleeps),
    /// so a target can vanish between two scheduler steps of one op.
    /// Deliberately excluded from [`KernelFaultRates::uniform`]: a
    /// per-step rate compounds over hundreds of steps, so uniform sweeps
    /// would be dominated by mid-op deaths. Opt in per plan.
    pub mid_op: u16,
    /// *Controller*-death rate, rolled once per scheduler step inside
    /// `System::step` (both the legacy loop and the sharded round
    /// engine): a hosted controlling program itself can vanish between
    /// two scheduler steps, exercising run-on-last-close release and
    /// stopped-target cleanup. Per-step like `mid_op`, and excluded
    /// from [`KernelFaultRates::uniform`] for the same compounding
    /// reason.
    pub controller_death: u16,
}

impl KernelFaultRates {
    /// The same rate at every *per-op* site. `mid_op` stays zero: it is
    /// rolled per scheduler step and would swamp a uniform sweep.
    pub fn uniform(permille: u16) -> KernelFaultRates {
        KernelFaultRates {
            enomem: permille,
            eagain: permille,
            eintr: permille,
            wakeup: permille,
            death: permille,
            mid_op: 0,
            controller_death: 0,
        }
    }
}

/// Injection counters, marshalled little-endian for `PIOCKFAULTSTATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KFaultStats {
    /// vm allocations denied (`ENOMEM`); merged from the object store's
    /// pressure source at reply time.
    pub enomem_vm: u64,
    /// `fork` attempts failed with `EAGAIN`.
    pub eagain_fork: u64,
    /// `spawn_program` attempts failed with `EAGAIN`.
    pub eagain_spawn: u64,
    /// Blocking /proc waits interrupted with `EINTR`.
    pub eintr_wait: u64,
    /// `host_poll_in` calls returned spuriously with nothing ready.
    pub spurious_wakeups: u64,
    /// Targets killed or exited asynchronously.
    pub deaths: u64,
    /// Targets killed or exited *mid-op*, between two scheduler steps of
    /// a single blocking host operation.
    pub deaths_mid_op: u64,
    /// Hosted *controllers* killed inside `System::step` (the
    /// `controller_death` per-step site).
    pub controller_deaths: u64,
}

impl KFaultStats {
    /// Marshalled size: eight little-endian `u64` counters.
    pub const WIRE_LEN: usize = 8 * 8;

    /// Serialises in field order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_LEN);
        for v in [
            self.enomem_vm,
            self.eagain_fork,
            self.eagain_spawn,
            self.eintr_wait,
            self.spurious_wakeups,
            self.deaths,
            self.deaths_mid_op,
            self.controller_deaths,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialises a `PIOCKFAULTSTATS` reply.
    pub fn from_bytes(b: &[u8]) -> Result<KFaultStats, Errno> {
        if b.len() != Self::WIRE_LEN {
            return Err(Errno::EINVAL);
        }
        let at = |o: usize| -> u64 {
            let mut w = [0u8; 8];
            if let Some(s) = b.get(o..o + 8) {
                w.copy_from_slice(s);
            }
            u64::from_le_bytes(w)
        };
        Ok(KFaultStats {
            enomem_vm: at(0),
            eagain_fork: at(8),
            eagain_spawn: at(16),
            eintr_wait: at(24),
            spurious_wakeups: at(32),
            deaths: at(40),
            deaths_mid_op: at(48),
            controller_deaths: at(56),
        })
    }
}

/// A seeded, deterministic kernel fault schedule (sibling of the wire
/// `FaultPlan`). One generator drives every site, so the interleaving of
/// faults across sites is itself part of the replayable schedule.
#[derive(Clone, Debug)]
pub struct KernelFaultPlan {
    state: u64,
    /// The per-site rates this plan was built with.
    pub rates: KernelFaultRates,
    /// Counters for `PIOCKFAULTSTATS`.
    pub stats: KFaultStats,
    /// Targeted-death mode: death injection only considers processes a
    /// controller currently holds a writable `/proc` descriptor on
    /// (`trace.writers > 0`), concentrating the schedule on controller
    /// races instead of bystanders. When no such process exists the roll
    /// is spent but nobody dies — exactly as when the victim list is
    /// empty in untargeted mode.
    pub targeted_death: bool,
}

impl KernelFaultPlan {
    /// Creates a plan; a zero seed is remapped so xorshift never sticks.
    /// Death injection starts untargeted; see
    /// [`KernelFaultPlan::with_targeted_death`].
    pub fn new(seed: u64, rates: KernelFaultRates) -> KernelFaultPlan {
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        KernelFaultPlan {
            state,
            rates,
            stats: KFaultStats::default(),
            targeted_death: false,
        }
    }

    /// Builder: restricts death injection to controller-held targets.
    pub fn with_targeted_death(mut self, on: bool) -> KernelFaultPlan {
        self.targeted_death = on;
        self
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Rolls at `permille`; a zero rate consumes no generator state.
    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.next() % 1000 < u64::from(permille)
    }

    /// Should this `fork` fail with `EAGAIN`?
    pub fn roll_eagain_fork(&mut self) -> bool {
        let hit = self.roll(self.rates.eagain);
        if hit {
            self.stats.eagain_fork += 1;
        }
        hit
    }

    /// Should this `spawn_program` fail with `EAGAIN`?
    pub fn roll_eagain_spawn(&mut self) -> bool {
        let hit = self.roll(self.rates.eagain);
        if hit {
            self.stats.eagain_spawn += 1;
        }
        hit
    }

    /// Should this blocking wait be interrupted with `EINTR`?
    pub fn roll_eintr(&mut self) -> bool {
        let hit = self.roll(self.rates.eintr);
        if hit {
            self.stats.eintr_wait += 1;
        }
        hit
    }

    /// Should this poll return spuriously with nothing ready?
    pub fn roll_spurious_wakeup(&mut self) -> bool {
        let hit = self.roll(self.rates.wakeup);
        if hit {
            self.stats.spurious_wakeups += 1;
        }
        hit
    }

    /// Should a target die before this controller operation? (The caller
    /// picks the victim and bumps [`KFaultStats::deaths`] once it has.)
    pub fn roll_death(&mut self) -> bool {
        self.roll(self.rates.death)
    }

    /// Should a target die *between two scheduler steps* of the blocking
    /// host op currently pumping? Rolled once per step while an op
    /// sleeps. (The caller picks the victim and bumps
    /// [`KFaultStats::deaths_mid_op`] once it has.)
    pub fn roll_death_mid_op(&mut self) -> bool {
        self.roll(self.rates.mid_op)
    }

    /// Should a hosted *controller* die at this scheduler step? Rolled
    /// once per `System::step` at any shard count. (The caller picks the
    /// victim and bumps [`KFaultStats::controller_deaths`] once it has.)
    pub fn roll_controller_death(&mut self) -> bool {
        self.roll(self.rates.controller_death)
    }

    /// Uniform pick in `0..n` for victim selection. `n` must be nonzero.
    pub fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// One deterministic bit: hard kill (`SIGKILL`) vs. quiet exit.
    pub fn next_bit(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = KernelFaultPlan::new(42, KernelFaultRates::uniform(500));
        let mut b = KernelFaultPlan::new(42, KernelFaultRates::uniform(500));
        for _ in 0..200 {
            assert_eq!(a.roll_eintr(), b.roll_eintr());
            assert_eq!(a.roll_death(), b.roll_death());
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn zero_rate_consumes_no_state() {
        let mut plan = KernelFaultPlan::new(7, KernelFaultRates::default());
        let before = plan.state;
        assert!(!plan.roll_eagain_fork());
        assert!(!plan.roll_eintr());
        assert!(!plan.roll_spurious_wakeup());
        assert!(!plan.roll_death());
        assert!(!plan.roll_death_mid_op());
        assert!(!plan.roll_controller_death());
        assert_eq!(plan.state, before, "zero rates must short-circuit");
        assert_eq!(plan.stats, KFaultStats::default());
    }

    #[test]
    fn targeted_death_flag_defaults_off_and_builds_on() {
        let plan = KernelFaultPlan::new(1, KernelFaultRates::uniform(10));
        assert!(!plan.targeted_death);
        let before = plan.state;
        let plan = plan.with_targeted_death(true);
        assert!(plan.targeted_death);
        assert_eq!(plan.state, before, "targeting never touches the generator");
    }

    #[test]
    fn mid_op_rate_is_opt_in() {
        assert_eq!(
            KernelFaultRates::uniform(300).mid_op,
            0,
            "uniform sweeps exclude the per-step site"
        );
        let rates = KernelFaultRates { mid_op: 1000, ..Default::default() };
        let mut plan = KernelFaultPlan::new(3, rates);
        assert!(plan.roll_death_mid_op(), "rate 1000 always fires");
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut plan = KernelFaultPlan::new(0, KernelFaultRates::uniform(1000));
        assert!(plan.roll_eintr(), "rate 1000 always fires");
        assert_ne!(plan.state, 0);
    }

    #[test]
    fn stats_round_trip() {
        let st = KFaultStats {
            enomem_vm: 1,
            eagain_fork: 2,
            eagain_spawn: 3,
            eintr_wait: 4,
            spurious_wakeups: 5,
            deaths: 6,
            deaths_mid_op: 7,
            controller_deaths: 8,
        };
        let bytes = st.to_bytes();
        assert_eq!(bytes.len(), KFaultStats::WIRE_LEN);
        assert_eq!(KFaultStats::from_bytes(&bytes), Ok(st));
        assert_eq!(KFaultStats::from_bytes(&bytes[1..]), Err(Errno::EINVAL));
    }
}
