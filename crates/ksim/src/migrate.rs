//! Live guest migration: the destination half of `PIOCMIGRATE`.
//!
//! A migration moves a `PIOCCKPT` image of one stopped guest from a
//! source [`crate::System`] into a destination `System`, typically over
//! the fault-injected remote `/proc` wire. The image travels as
//! chunked, resumable, idempotency-classed sub-operations multiplexed
//! through one ioctl request — `PIOCMIGRATE` on the *destination's*
//! placeholder process:
//!
//! ```text
//! BEGIN  {xfer, total, digest}   create / resume a transfer
//! CHUNK  {xfer, offset, data}    append image bytes at offset
//! COMMIT {xfer, digest}          verify digest, restore into target
//! ABORT  {xfer}                  drop the transfer
//! ```
//!
//! Every reply carries `next_off`, the byte offset the destination
//! expects next, so a driver that lost a reply (wire `ETIMEDOUT`)
//! resynchronises by re-reading it instead of restarting. The ops are
//! idempotent at the protocol level — a re-sent `BEGIN` with identical
//! parameters resumes, a `CHUNK` below `next_off` is a counted
//! duplicate, a repeated `COMMIT` of a completed transfer succeeds
//! without restoring twice — which combines with the wire layer's
//! sequenced-op dedup to make the whole transfer exactly-once under
//! retry storms.
//!
//! The destination materialises nothing until `COMMIT`: the end-to-end
//! FNV-1a digest (see [`crate::record::fnv`]) over the complete image
//! must match both the `BEGIN` and the `COMMIT` stamp, and the restore
//! itself parses the image fully before mutating the target. Any
//! failure leaves the destination guest untouched and the transfer
//! either resumable or dropped; the source is never involved past
//! checkpoint time, so it is trivially left running on abort.

use crate::kernel::Kernel;
use crate::record::fnv;
use vfs::remote::WireReader;
use vfs::{Errno, Pid, SysResult};

/// Sub-operation: create or resume a transfer.
pub const MIG_OP_BEGIN: u8 = 0;
/// Sub-operation: append image bytes.
pub const MIG_OP_CHUNK: u8 = 1;
/// Sub-operation: verify and materialise.
pub const MIG_OP_COMMIT: u8 = 2;
/// Sub-operation: drop the transfer.
pub const MIG_OP_ABORT: u8 = 3;

/// Largest chunk a driver should send (fits comfortably inside the wire
/// layer's frame and queue limits even with duplication floods).
pub const MIG_CHUNK_MAX: usize = 4096;

/// Reply status byte: the sub-operation succeeded.
pub const MIG_ST_OK: u8 = 0;
/// Reply status byte: the sub-operation was rejected; the reply errno
/// says why and `next_off` says where to resume (when resumable).
pub const MIG_ST_ERR: u8 = 1;

/// Fixed reply length: status u8 | errno i32 | next_off u64 | detail u64.
pub const MIG_REPLY_LEN: usize = 1 + 4 + 8 + 8;

/// Bound on concurrently open inbound transfers; BEGIN beyond it sheds
/// with `EAGAIN`.
pub const MIG_XFERS_MAX: usize = 8;

/// One inbound transfer on the destination kernel.
#[derive(Clone, Debug)]
pub struct MigXfer {
    /// Total image length promised by `BEGIN`.
    pub total: u64,
    /// End-to-end digest promised by `BEGIN`.
    pub digest: u64,
    /// Image bytes received so far (always a prefix: chunks append in
    /// order, out-of-order offsets are bounced with `next_off`).
    pub buf: Vec<u8>,
    /// Pid the image was restored into, once `COMMIT` succeeded. Kept so
    /// a retried `COMMIT` is idempotent instead of restoring twice.
    pub done: Option<u32>,
}

/// Migration protocol counters, marshalled little-endian for
/// `PIOCMIGSTATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigStats {
    /// Transfers opened by `BEGIN`.
    pub begins: u64,
    /// Chunks accepted in sequence.
    pub chunks: u64,
    /// Image bytes accepted.
    pub bytes: u64,
    /// Duplicate or out-of-order chunks absorbed idempotently.
    pub dup_chunks: u64,
    /// Transfers committed (guest materialised).
    pub commits: u64,
    /// Transfers dropped by `ABORT`.
    pub aborts: u64,
    /// Commits rejected because the received image's digest did not
    /// match the promised one.
    pub digest_mismatches: u64,
    /// `BEGIN`s that resumed an existing transfer after a lost reply.
    pub resumes: u64,
}

impl MigStats {
    /// Byte length of the wire image.
    pub const WIRE_LEN: usize = 8 * 8;

    /// Serialises to the `PIOCMIGSTATS` wire image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_LEN);
        for v in [
            self.begins,
            self.chunks,
            self.bytes,
            self.dup_chunks,
            self.commits,
            self.aborts,
            self.digest_mismatches,
            self.resumes,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialises from the wire image; `None` if too short.
    pub fn from_bytes(b: &[u8]) -> Option<MigStats> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let w = |i: usize| crate::bytes::le_u64(&b[i * 8..]);
        Some(MigStats {
            begins: w(0),
            chunks: w(1),
            bytes: w(2),
            dup_chunks: w(3),
            commits: w(4),
            aborts: w(5),
            digest_mismatches: w(6),
            resumes: w(7),
        })
    }
}

/// A typed migration failure as the *driver* sees it. Protocol-level
/// rejections arrive as `MIG_ST_ERR` replies and are rebuilt into this;
/// transport-level failures (the wire gave up) map to `Transport`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MigrateError {
    /// The wire itself failed (retry budget exhausted, queues shed, the
    /// mount refused the descriptor).
    Transport(Errno),
    /// The destination rejected a sub-operation.
    Rejected {
        /// Which sub-operation ("begin", "chunk", "commit", "abort").
        op: &'static str,
        /// The destination's errno.
        errno: Errno,
    },
    /// The destination's end-to-end digest check failed.
    DigestMismatch {
        /// Digest the source promised.
        expected: u64,
        /// Digest the destination computed.
        got: u64,
    },
    /// The checkpoint image exceeds the transferable bound.
    TooLarge(usize),
    /// The destination's replies stopped making protocol sense.
    Protocol(&'static str),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Transport(e) => write!(f, "migrate: transport failed: {e:?}"),
            MigrateError::Rejected { op, errno } => {
                write!(f, "migrate: destination rejected {op}: {errno:?}")
            }
            MigrateError::DigestMismatch { expected, got } => write!(
                f,
                "migrate: image digest mismatch: expected {expected:#018x}, got {got:#018x}"
            ),
            MigrateError::TooLarge(n) => write!(f, "migrate: image too large ({n} bytes)"),
            MigrateError::Protocol(what) => write!(f, "migrate: protocol error: {what}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// One decoded `PIOCMIGRATE` reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigReply {
    /// [`MIG_ST_OK`] or [`MIG_ST_ERR`].
    pub status: u8,
    /// Errno explaining a rejection (0 on success).
    pub errno: i32,
    /// Byte offset the destination expects next.
    pub next_off: u64,
    /// Op-specific detail: the materialised pid on a committed transfer,
    /// the computed digest on a digest mismatch, else 0.
    pub detail: u64,
}

impl MigReply {
    fn ok(next_off: u64, detail: u64) -> MigReply {
        MigReply { status: MIG_ST_OK, errno: 0, next_off, detail }
    }

    fn err(errno: Errno, next_off: u64, detail: u64) -> MigReply {
        MigReply { status: MIG_ST_ERR, errno: errno as i32, next_off, detail }
    }

    /// Serialises to the fixed [`MIG_REPLY_LEN`] reply image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MIG_REPLY_LEN);
        out.push(self.status);
        out.extend_from_slice(&self.errno.to_le_bytes());
        out.extend_from_slice(&self.next_off.to_le_bytes());
        out.extend_from_slice(&self.detail.to_le_bytes());
        out
    }

    /// Deserialises a reply image; `None` if too short.
    pub fn from_bytes(b: &[u8]) -> Option<MigReply> {
        if b.len() < MIG_REPLY_LEN {
            return None;
        }
        let errno = i32::from_le_bytes([b[1], b[2], b[3], b[4]]);
        let u = |i: usize| crate::bytes::le_u64(&b[i..]);
        Some(MigReply { status: b[0], errno, next_off: u(5), detail: u(13) })
    }
}

/// Builds a `BEGIN` argument.
pub fn arg_begin(xfer: u64, total: u64, digest: u64) -> Vec<u8> {
    let mut out = vec![MIG_OP_BEGIN];
    out.extend_from_slice(&xfer.to_le_bytes());
    out.extend_from_slice(&total.to_le_bytes());
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Builds a `CHUNK` argument.
pub fn arg_chunk(xfer: u64, offset: u64, data: &[u8]) -> Vec<u8> {
    let mut out = vec![MIG_OP_CHUNK];
    out.extend_from_slice(&xfer.to_le_bytes());
    out.extend_from_slice(&offset.to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
    out
}

/// Builds a `COMMIT` argument.
pub fn arg_commit(xfer: u64, digest: u64) -> Vec<u8> {
    let mut out = vec![MIG_OP_COMMIT];
    out.extend_from_slice(&xfer.to_le_bytes());
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

/// Builds an `ABORT` argument.
pub fn arg_abort(xfer: u64) -> Vec<u8> {
    let mut out = vec![MIG_OP_ABORT];
    out.extend_from_slice(&xfer.to_le_bytes());
    out
}

/// Handles one `PIOCMIGRATE` ioctl on the destination kernel. `target`
/// is the process the descriptor names — the placeholder the image will
/// be restored into at `COMMIT`. Malformed arguments are `EINVAL` at
/// the ioctl layer; protocol rejections ride an ok ioctl reply with
/// `MIG_ST_ERR` inside so the wire's retry machinery never re-runs a
/// rejected mutation.
pub fn handle(k: &mut Kernel, target: Pid, arg: &[u8]) -> SysResult<Vec<u8>> {
    let mut r = WireReader::new(arg);
    let op = r.u8().map_err(|_| Errno::EINVAL)?;
    let xfer = r.u64().map_err(|_| Errno::EINVAL)?;
    let reply = match op {
        MIG_OP_BEGIN => {
            let total = r.u64().map_err(|_| Errno::EINVAL)?;
            let digest = r.u64().map_err(|_| Errno::EINVAL)?;
            begin(k, xfer, total, digest)
        }
        MIG_OP_CHUNK => {
            let offset = r.u64().map_err(|_| Errno::EINVAL)?;
            let data = dec_chunk(&mut r)?;
            chunk(k, xfer, offset, data)
        }
        MIG_OP_COMMIT => {
            let digest = r.u64().map_err(|_| Errno::EINVAL)?;
            commit(k, target, xfer, digest)
        }
        MIG_OP_ABORT => {
            k.mig_stats.aborts += 1;
            k.migrations.remove(&xfer);
            MigReply::ok(0, 0)
        }
        _ => return Err(Errno::EINVAL),
    };
    Ok(reply.to_bytes())
}

fn dec_chunk<'a>(r: &mut WireReader<'a>) -> SysResult<&'a [u8]> {
    let n = r.u32().map_err(|_| Errno::EINVAL)? as usize;
    if n > MIG_CHUNK_MAX {
        return Err(Errno::EINVAL);
    }
    r.take(n).map_err(|_| Errno::EINVAL)
}

fn begin(k: &mut Kernel, xfer: u64, total: u64, digest: u64) -> MigReply {
    if total > crate::ckpt::CKPT_MAX as u64 {
        return MigReply::err(Errno::EFBIG, 0, 0);
    }
    if let Some(x) = k.migrations.get(&xfer) {
        if x.total == total && x.digest == digest {
            // Lost-reply retry: resume where the bytes stopped.
            k.mig_stats.resumes += 1;
            return MigReply::ok(x.buf.len() as u64, 0);
        }
        return MigReply::err(Errno::EBUSY, x.buf.len() as u64, 0);
    }
    if k.migrations.len() >= MIG_XFERS_MAX {
        return MigReply::err(Errno::EAGAIN, 0, 0);
    }
    k.mig_stats.begins += 1;
    k.migrations.insert(xfer, MigXfer { total, digest, buf: Vec::new(), done: None });
    MigReply::ok(0, 0)
}

fn chunk(k: &mut Kernel, xfer: u64, offset: u64, data: &[u8]) -> MigReply {
    let Some(x) = k.migrations.get_mut(&xfer) else {
        return MigReply::err(Errno::ENOENT, 0, 0);
    };
    let next = x.buf.len() as u64;
    if x.done.is_some() || offset < next {
        // Duplicate delivery (wire-level duplication or driver re-send
        // after a lost reply): already applied, absorb idempotently.
        k.mig_stats.dup_chunks += 1;
        return MigReply::ok(next, 0);
    }
    if offset > next {
        // A gap: an earlier chunk died on the wire. Not an error — the
        // reply's next_off tells the driver where to rewind.
        return MigReply::ok(next, 0);
    }
    if next + data.len() as u64 > x.total {
        return MigReply::err(Errno::EFBIG, next, 0);
    }
    x.buf.extend_from_slice(data);
    k.mig_stats.chunks += 1;
    k.mig_stats.bytes += data.len() as u64;
    MigReply::ok(x.buf.len() as u64, 0)
}

fn commit(k: &mut Kernel, target: Pid, xfer: u64, digest: u64) -> MigReply {
    let Some(x) = k.migrations.get(&xfer) else {
        return MigReply::err(Errno::ENOENT, 0, 0);
    };
    if let Some(pid) = x.done {
        // Retried COMMIT after a lost reply: already materialised.
        return MigReply::ok(x.total, pid as u64);
    }
    let next = x.buf.len() as u64;
    if next != x.total {
        return MigReply::err(Errno::EINVAL, next, 0);
    }
    let got = fnv(&x.buf);
    if got != digest || got != x.digest {
        // The image that arrived is not the image that was promised.
        // Nothing materialises; the transfer is dropped so a fresh
        // attempt starts clean.
        k.mig_stats.digest_mismatches += 1;
        k.migrations.remove(&xfer);
        return MigReply::err(Errno::EIO, 0, got);
    }
    let image = x.buf.clone();
    match crate::ckpt::restore(k, target, &image) {
        Ok(()) => {
            k.mig_stats.commits += 1;
            if let Some(x) = k.migrations.get_mut(&xfer) {
                x.done = Some(target.0);
                x.buf.clear(); // image applied; keep only the receipt
            }
            MigReply::ok(image.len() as u64, target.0 as u64)
        }
        // restore() parses before mutating, so the target is untouched;
        // the transfer stays resumable (the driver may retry COMMIT once
        // the placeholder is stopped, or ABORT).
        Err(e) => MigReply::err(e, next, 0),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn reply_roundtrip() {
        let r = MigReply { status: MIG_ST_ERR, errno: Errno::EIO as i32, next_off: 7, detail: 9 };
        assert_eq!(MigReply::from_bytes(&r.to_bytes()), Some(r));
        assert_eq!(MigReply::from_bytes(&[0u8; MIG_REPLY_LEN - 1]), None);
    }

    #[test]
    fn mig_stats_roundtrip() {
        let st = MigStats {
            begins: 1,
            chunks: 2,
            bytes: 3,
            dup_chunks: 4,
            commits: 5,
            aborts: 6,
            digest_mismatches: 7,
            resumes: 8,
        };
        assert_eq!(MigStats::from_bytes(&st.to_bytes()), Some(st));
        assert!(MigStats::from_bytes(&[0u8; 8]).is_none());
    }

    #[test]
    fn begin_chunk_sequencing_is_idempotent() {
        let mut k = Kernel::new();
        let img = vec![7u8; 100];
        let digest = fnv(&img);
        let ok = |b: &[u8]| MigReply::from_bytes(b).unwrap();
        let r = ok(&handle(&mut k, Pid(1), &arg_begin(42, 100, digest)).unwrap());
        assert_eq!((r.status, r.next_off), (MIG_ST_OK, 0));
        // Duplicate BEGIN resumes.
        let r = ok(&handle(&mut k, Pid(1), &arg_begin(42, 100, digest)).unwrap());
        assert_eq!((r.status, r.next_off), (MIG_ST_OK, 0));
        assert_eq!(k.mig_stats.resumes, 1);
        // Conflicting BEGIN is rejected.
        let r = ok(&handle(&mut k, Pid(1), &arg_begin(42, 50, 1)).unwrap());
        assert_eq!(r.status, MIG_ST_ERR);
        // In-order chunk advances; replaying it is absorbed.
        let r = ok(&handle(&mut k, Pid(1), &arg_chunk(42, 0, &img[..60])).unwrap());
        assert_eq!(r.next_off, 60);
        let r = ok(&handle(&mut k, Pid(1), &arg_chunk(42, 0, &img[..60])).unwrap());
        assert_eq!((r.status, r.next_off), (MIG_ST_OK, 60));
        assert_eq!(k.mig_stats.dup_chunks, 1);
        // A gap bounces with the resume offset, applying nothing.
        let r = ok(&handle(&mut k, Pid(1), &arg_chunk(42, 90, &img[90..])).unwrap());
        assert_eq!((r.status, r.next_off), (MIG_ST_OK, 60));
        assert_eq!(k.migrations.get(&42).unwrap().buf.len(), 60);
    }

    #[test]
    fn commit_checks_digest_before_touching_anything() {
        let mut k = Kernel::new();
        let img = vec![9u8; 16];
        let bad_digest = fnv(&img) ^ 1;
        let ok = |b: &[u8]| MigReply::from_bytes(b).unwrap();
        handle(&mut k, Pid(1), &arg_begin(1, 16, bad_digest)).unwrap();
        handle(&mut k, Pid(1), &arg_chunk(1, 0, &img)).unwrap();
        let r = ok(&handle(&mut k, Pid(1), &arg_commit(1, bad_digest)).unwrap());
        assert_eq!((r.status, r.errno), (MIG_ST_ERR, Errno::EIO as i32));
        assert_eq!(r.detail, fnv(&img));
        assert_eq!(k.mig_stats.digest_mismatches, 1);
        assert!(k.migrations.is_empty(), "mismatched transfer dropped");
        assert!(k.procs.is_empty(), "nothing materialised");
    }

    #[test]
    fn malformed_args_are_einval() {
        let mut k = Kernel::new();
        assert_eq!(handle(&mut k, Pid(1), &[]), Err(Errno::EINVAL));
        assert_eq!(handle(&mut k, Pid(1), &[MIG_OP_BEGIN, 1, 2]), Err(Errno::EINVAL));
        assert_eq!(handle(&mut k, Pid(1), &[99, 0, 0, 0, 0, 0, 0, 0, 0]), Err(Errno::EINVAL));
        let mut trunc = arg_chunk(5, 0, &[1, 2, 3]);
        trunc.pop();
        assert_eq!(handle(&mut k, Pid(1), &trunc), Err(Errno::EINVAL));
    }
}
