//! File descriptors, the system open-file table, and pipes.

use std::collections::VecDeque;
use vfs::{OFlags, OpenToken};

/// Index into the system open-file table.
pub type FileId = u32;

/// Per-process descriptor table: small integers to open files.
#[derive(Clone, Debug, Default)]
pub struct FdTable {
    slots: Vec<Option<FileId>>,
}

/// Maximum descriptors per process.
pub const NOFILE: usize = 256;

impl FdTable {
    /// An empty table.
    pub fn new() -> FdTable {
        FdTable::default()
    }

    /// Allocates the lowest free descriptor for `file`. `None` if the
    /// table is full (`EMFILE`).
    pub fn alloc(&mut self, file: FileId) -> Option<usize> {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(file);
                return Some(i);
            }
        }
        if self.slots.len() >= NOFILE {
            return None;
        }
        self.slots.push(Some(file));
        Some(self.slots.len() - 1)
    }

    /// Looks up descriptor `fd`.
    pub fn get(&self, fd: usize) -> Option<FileId> {
        self.slots.get(fd).copied().flatten()
    }

    /// Removes descriptor `fd`, returning the file it referenced.
    pub fn remove(&mut self, fd: usize) -> Option<FileId> {
        self.slots.get_mut(fd).and_then(Option::take)
    }

    /// All live `(fd, file)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FileId)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.map(|f| (i, f)))
    }

    /// Number of live descriptors.
    pub fn count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// What an open file refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A vnode in mounted file system `fs`.
    Vnode {
        /// The file system.
        fs: u32,
        /// The node within it.
        node: vfs::NodeId,
        /// Per-open token returned by the file system's `open`.
        token: OpenToken,
    },
    /// Read end of pipe `0`.
    PipeR(u32),
    /// Write end of pipe `0`.
    PipeW(u32),
}

/// An entry in the system open-file table, shared by dup'd and inherited
/// descriptors (they share the offset, as in UNIX).
#[derive(Clone, Debug)]
pub struct OpenFile {
    /// Reference count (descriptors pointing here).
    pub refs: u32,
    /// The object.
    pub kind: FileKind,
    /// Current byte offset.
    pub offset: u64,
    /// Open mode.
    pub flags: OFlags,
}

/// The system open-file table.
#[derive(Clone, Debug, Default)]
pub struct FileTable {
    files: Vec<Option<OpenFile>>,
    free: Vec<FileId>,
}

impl FileTable {
    /// An empty table.
    pub fn new() -> FileTable {
        FileTable::default()
    }

    /// Inserts a new open file with one reference.
    pub fn alloc(&mut self, kind: FileKind, flags: OFlags) -> FileId {
        let of = OpenFile { refs: 1, kind, offset: 0, flags };
        match self.free.pop() {
            Some(id) => {
                self.files[id as usize] = Some(of);
                id
            }
            None => {
                self.files.push(Some(of));
                (self.files.len() - 1) as FileId
            }
        }
    }

    /// Shared access.
    pub fn get(&self, id: FileId) -> Option<&OpenFile> {
        self.files.get(id as usize).and_then(Option::as_ref)
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, id: FileId) -> Option<&mut OpenFile> {
        self.files.get_mut(id as usize).and_then(Option::as_mut)
    }

    /// Adds a reference (dup, fork inheritance).
    pub fn incref(&mut self, id: FileId) {
        if let Some(f) = self.get_mut(id) {
            f.refs += 1;
        }
    }

    /// Drops a reference. When the last reference goes, removes the entry
    /// and returns it so the caller can run close hooks (file system
    /// close, pipe end bookkeeping).
    pub fn decref(&mut self, id: FileId) -> Option<OpenFile> {
        let slot = self.files.get_mut(id as usize)?;
        let f = slot.as_mut()?;
        f.refs -= 1;
        if f.refs == 0 {
            let dead = slot.take();
            self.free.push(id);
            dead
        } else {
            None
        }
    }

    /// Number of live open files.
    pub fn live(&self) -> usize {
        self.files.iter().filter(|f| f.is_some()).count()
    }
}

/// An in-kernel pipe.
#[derive(Clone, Debug, Default)]
pub struct Pipe {
    /// Buffered bytes.
    pub buf: VecDeque<u8>,
    /// Open read ends.
    pub readers: u32,
    /// Open write ends.
    pub writers: u32,
}

/// Pipe capacity in bytes; writes beyond it block.
pub const PIPE_CAP: usize = 8192;

/// Table of pipes.
#[derive(Clone, Debug, Default)]
pub struct PipeTable {
    pipes: Vec<Option<Pipe>>,
}

impl PipeTable {
    /// An empty table.
    pub fn new() -> PipeTable {
        PipeTable::default()
    }

    /// Allocates a pipe with one reader and one writer.
    pub fn alloc(&mut self) -> u32 {
        let p = Pipe { buf: VecDeque::new(), readers: 1, writers: 1 };
        for (i, slot) in self.pipes.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(p);
                return i as u32;
            }
        }
        self.pipes.push(Some(p));
        (self.pipes.len() - 1) as u32
    }

    /// Shared access.
    pub fn get(&self, id: u32) -> Option<&Pipe> {
        self.pipes.get(id as usize).and_then(Option::as_ref)
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut Pipe> {
        self.pipes.get_mut(id as usize).and_then(Option::as_mut)
    }

    /// Drops an end; removes the pipe when both sides are gone.
    pub fn drop_end(&mut self, id: u32, write_end: bool) {
        let Some(p) = self.get_mut(id) else { return };
        if write_end {
            p.writers = p.writers.saturating_sub(1);
        } else {
            p.readers = p.readers.saturating_sub(1);
        }
        if p.readers == 0 && p.writers == 0 {
            self.pipes[id as usize] = None;
        }
    }

    /// Adds a reference to an end (dup/fork).
    pub fn add_end(&mut self, id: u32, write_end: bool) {
        if let Some(p) = self.get_mut(id) {
            if write_end {
                p.writers += 1;
            } else {
                p.readers += 1;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fd_alloc_lowest_first() {
        let mut t = FdTable::new();
        assert_eq!(t.alloc(10), Some(0));
        assert_eq!(t.alloc(11), Some(1));
        assert_eq!(t.remove(0), Some(10));
        assert_eq!(t.alloc(12), Some(0), "reuses the lowest free slot");
        assert_eq!(t.get(1), Some(11));
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn fd_table_limit() {
        let mut t = FdTable::new();
        for i in 0..NOFILE {
            assert_eq!(t.alloc(0), Some(i));
        }
        assert_eq!(t.alloc(0), None, "EMFILE");
    }

    #[test]
    fn file_refcounting() {
        let mut ft = FileTable::new();
        let id = ft.alloc(FileKind::PipeR(0), OFlags::rdonly());
        ft.incref(id);
        assert!(ft.decref(id).is_none(), "still referenced");
        let dead = ft.decref(id).expect("last close returns the file");
        assert_eq!(dead.kind, FileKind::PipeR(0));
        assert!(ft.get(id).is_none());
        // The slot is reused.
        let id2 = ft.alloc(FileKind::PipeW(1), OFlags::wronly());
        assert_eq!(id2, id);
    }

    #[test]
    fn pipe_lifecycle() {
        let mut pt = PipeTable::new();
        let id = pt.alloc();
        pt.get_mut(id).expect("pipe").buf.extend([1u8, 2, 3]);
        pt.add_end(id, false);
        pt.drop_end(id, false);
        assert!(pt.get(id).is_some());
        pt.drop_end(id, false);
        assert!(pt.get(id).is_some(), "writer still open");
        pt.drop_end(id, true);
        assert!(pt.get(id).is_none(), "both sides closed");
    }
}
