//! System call numbering and names.
//!
//! The set type (`sysset_t`) provides for 512 system calls per the paper;
//! "there is no system call number 0".

use crate::bitset::BitSet;

/// System call set type (`sysset_t`), capacity 512.
pub type SysSet = BitSet<8>;

/// Terminate the calling process.
pub const SYS_EXIT: u16 = 1;
/// Create a new process.
pub const SYS_FORK: u16 = 2;
/// Read from a file descriptor.
pub const SYS_READ: u16 = 3;
/// Write to a file descriptor.
pub const SYS_WRITE: u16 = 4;
/// Open a file.
pub const SYS_OPEN: u16 = 5;
/// Close a file descriptor.
pub const SYS_CLOSE: u16 = 6;
/// Wait for a child to change state.
pub const SYS_WAIT: u16 = 7;
/// Create a file.
pub const SYS_CREAT: u16 = 8;
/// Link a file (unsupported by memfs; returns EROFS-style errors).
pub const SYS_LINK: u16 = 9;
/// Remove a directory entry.
pub const SYS_UNLINK: u16 = 10;
/// Execute a new program image.
pub const SYS_EXEC: u16 = 11;
/// Change working directory.
pub const SYS_CHDIR: u16 = 12;
/// Current simulated time.
pub const SYS_TIME: u16 = 13;
/// Set the break (heap end).
pub const SYS_BRK: u16 = 17;
/// File status by path.
pub const SYS_STAT: u16 = 18;
/// Reposition a file offset.
pub const SYS_LSEEK: u16 = 19;
/// Process id of the caller.
pub const SYS_GETPID: u16 = 20;
/// Set user id.
pub const SYS_SETUID: u16 = 23;
/// Real user id of the caller.
pub const SYS_GETUID: u16 = 24;
/// The old-style ptrace mechanism ("made obsolete by /proc but still
/// required by the System V Interface Definition").
pub const SYS_PTRACE: u16 = 26;
/// Schedule an alarm signal.
pub const SYS_ALARM: u16 = 27;
/// Wait for any signal.
pub const SYS_PAUSE: u16 = 29;
/// Change scheduling priority.
pub const SYS_NICE: u16 = 34;
/// Send a signal.
pub const SYS_KILL: u16 = 37;
/// Duplicate a file descriptor.
pub const SYS_DUP: u16 = 41;
/// Create a pipe.
pub const SYS_PIPE: u16 = 42;
/// Set group id.
pub const SYS_SETGID: u16 = 46;
/// Real group id of the caller.
pub const SYS_GETGID: u16 = 47;
/// Install a signal action.
pub const SYS_SIGACTION: u16 = 48;
/// Device/file control operation.
pub const SYS_IOCTL: u16 = 54;
/// Parent process id of the caller.
pub const SYS_GETPPID: u16 = 57;
/// Set the file-creation mask.
pub const SYS_UMASK: u16 = 60;
/// Create a new process sharing the parent's suspension (classic vfork;
/// the parent blocks until the child execs or exits).
pub const SYS_VFORK: u16 = 62;
/// Read directory entries.
pub const SYS_GETDENTS: u16 = 63;
/// Create a directory.
pub const SYS_MKDIR: u16 = 64;
/// Wait on multiple file descriptors.
pub const SYS_POLL: u16 = 65;
/// Examine or change the held-signal mask.
pub const SYS_SIGPROCMASK: u16 = 66;
/// Atomically replace the mask and wait for a signal.
pub const SYS_SIGSUSPEND: u16 = 67;
/// Return from a signal handler (invoked via the kernel trampoline).
pub const SYS_SIGRETURN: u16 = 68;
/// Sleep for a number of simulated ticks.
pub const SYS_NANOSLEEP: u16 = 69;
/// Map an object into the address space.
pub const SYS_MMAP: u16 = 70;
/// Unmap part of the address space.
pub const SYS_MUNMAP: u16 = 71;
/// Change mapping protections.
pub const SYS_MPROTECT: u16 = 72;
/// Create a new thread of control (LWP) in this process.
pub const SYS_THR_CREATE: u16 = 73;
/// Terminate the calling LWP.
pub const SYS_THR_EXIT: u16 = 74;
/// Yield the processor.
pub const SYS_YIELD: u16 = 75;
/// A retired system call kept only so old binaries can be encapsulated
/// at user level through /proc (experiment E7: "older system calls or
/// alternate versions of them can be simulated entirely at user level").
/// The kernel itself fails it with ENOSYS.
pub const SYS_RETIRED: u16 = 79;
/// Process group of the caller.
pub const SYS_GETPGRP: u16 = 80;

/// Number of syscall slots (for `sysset_t`).
pub const NSYSCALL: usize = 512;

/// Symbolic name of system call `nr` (for `truss`), or `sys#<n>`.
pub fn sys_name(nr: u16) -> String {
    let known: &[(u16, &str)] = &[
        (SYS_EXIT, "exit"),
        (SYS_FORK, "fork"),
        (SYS_READ, "read"),
        (SYS_WRITE, "write"),
        (SYS_OPEN, "open"),
        (SYS_CLOSE, "close"),
        (SYS_WAIT, "wait"),
        (SYS_CREAT, "creat"),
        (SYS_LINK, "link"),
        (SYS_UNLINK, "unlink"),
        (SYS_EXEC, "exec"),
        (SYS_CHDIR, "chdir"),
        (SYS_TIME, "time"),
        (SYS_BRK, "brk"),
        (SYS_STAT, "stat"),
        (SYS_LSEEK, "lseek"),
        (SYS_GETPID, "getpid"),
        (SYS_SETUID, "setuid"),
        (SYS_GETUID, "getuid"),
        (SYS_PTRACE, "ptrace"),
        (SYS_ALARM, "alarm"),
        (SYS_PAUSE, "pause"),
        (SYS_NICE, "nice"),
        (SYS_KILL, "kill"),
        (SYS_DUP, "dup"),
        (SYS_PIPE, "pipe"),
        (SYS_SETGID, "setgid"),
        (SYS_GETGID, "getgid"),
        (SYS_SIGACTION, "sigaction"),
        (SYS_IOCTL, "ioctl"),
        (SYS_GETPPID, "getppid"),
        (SYS_UMASK, "umask"),
        (SYS_VFORK, "vfork"),
        (SYS_GETDENTS, "getdents"),
        (SYS_MKDIR, "mkdir"),
        (SYS_POLL, "poll"),
        (SYS_SIGPROCMASK, "sigprocmask"),
        (SYS_SIGSUSPEND, "sigsuspend"),
        (SYS_SIGRETURN, "sigreturn"),
        (SYS_NANOSLEEP, "nanosleep"),
        (SYS_MMAP, "mmap"),
        (SYS_MUNMAP, "munmap"),
        (SYS_MPROTECT, "mprotect"),
        (SYS_THR_CREATE, "thr_create"),
        (SYS_THR_EXIT, "thr_exit"),
        (SYS_YIELD, "yield"),
        (SYS_RETIRED, "retired_op"),
        (SYS_GETPGRP, "getpgrp"),
    ];
    known
        .iter()
        .find(|(n, _)| *n == nr)
        .map(|(_, s)| s.to_string())
        .unwrap_or_else(|| format!("sys#{nr}"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve() {
        assert_eq!(sys_name(SYS_FORK), "fork");
        assert_eq!(sys_name(SYS_IOCTL), "ioctl");
        assert_eq!(sys_name(500), "sys#500");
    }

    #[test]
    fn sysset_capacity_matches_paper() {
        assert_eq!(SysSet::capacity(), 512);
        let mut s = SysSet::empty();
        s.add(SYS_EXEC as usize);
        assert!(s.has(SYS_EXEC as usize));
        assert!(!s.has(SYS_FORK as usize));
    }
}
