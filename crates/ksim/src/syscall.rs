//! The system call dispatcher for simulated processes.
//!
//! Arguments arrive in registers (`a0..a5`), pointers point into the
//! calling process's address space. The dispatcher is re-entered on
//! retries after sleeps, so every handler reads its arguments afresh and
//! is idempotent up to its first externally visible effect.

use crate::kernel::{Kernel, HZ};
use crate::proc::{LwpState, Tid, WaitChannel};
use crate::signal::{Handler, SigAction, SigSet, SIGKILL, SIGSTOP};
use crate::sysno::*;
use crate::system::{FlIo, SysOutcome, System};
use vfs::{Errno, IoctlReply, OFlags, Pid, SysResult};
use vm::{MapFlags, Prot, SegName};

/// Limit on single read/write transfers from simulated callers.
const MAX_IO: usize = 1 << 20;
/// Limit on strings copied in from user space.
const MAX_STR: usize = 4096;
/// Limit on exec argv entries.
const MAX_ARGS: usize = 64;

impl System {
    /// Copies bytes in from a simulated process's address space.
    pub fn copyin(&self, pid: Pid, addr: u64, len: usize) -> SysResult<Vec<u8>> {
        let proc = self.kernel.proc(pid)?;
        let mut buf = vec![0u8; len];
        proc.aspace
            .kernel_read(&self.kernel.objects, addr, &mut buf)
            .map_err(|_| Errno::EFAULT)?;
        Ok(buf)
    }

    /// Copies bytes out to a simulated process's address space.
    pub fn copyout(&mut self, pid: Pid, addr: u64, data: &[u8]) -> SysResult<()> {
        let Kernel { procs, objects, .. } = &mut self.kernel;
        let proc = procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
        proc.aspace.kernel_write(objects, addr, data).map_err(|_| Errno::EFAULT)
    }

    /// Copies in a NUL-terminated string.
    pub fn copyin_str(&self, pid: Pid, addr: u64) -> SysResult<String> {
        let proc = self.kernel.proc(pid)?;
        let mut out = Vec::new();
        let mut pos = addr;
        // Read in chunks bounded by the mapped span.
        while out.len() < MAX_STR {
            let mut byte = [0u8; 1];
            proc.aspace
                .kernel_read(&self.kernel.objects, pos, &mut byte)
                .map_err(|_| Errno::EFAULT)?;
            if byte[0] == 0 {
                return Ok(String::from_utf8_lossy(&out).into_owned());
            }
            out.push(byte[0]);
            pos += 1;
        }
        Err(Errno::EINVAL)
    }

    /// The dispatcher. `args` were read from the registers by the caller
    /// (afresh on every retry, so entry-stopped debuggers can rewrite
    /// them).
    pub(crate) fn do_syscall(
        &mut self,
        pid: Pid,
        tid: Tid,
        nr: u16,
        args: [u64; 6],
    ) -> SysOutcome {
        let done = SysOutcome::Done;
        match nr {
            SYS_EXIT => {
                self.do_exit(pid, Kernel::status_exited(args[0] as u8));
                SysOutcome::Gone
            }
            SYS_FORK => self.do_fork(pid, tid, false),
            SYS_VFORK => self.do_fork(pid, tid, true),
            SYS_READ => {
                let (fd, buf, len) = (args[0] as usize, args[1], args[2] as usize);
                let len = len.min(MAX_IO);
                let mut tmp = vec![0u8; len];
                match self.read_fd(pid, fd, &mut tmp) {
                    Err(e) => done(Err(e)),
                    Ok(FlIo::Block(chan)) => SysOutcome::Sleep(chan),
                    Ok(FlIo::Done(n)) => match self.copyout(pid, buf, &tmp[..n]) {
                        Ok(()) => done(Ok(n as u64)),
                        Err(e) => done(Err(e)),
                    },
                }
            }
            SYS_WRITE => {
                let (fd, buf, len) = (args[0] as usize, args[1], args[2] as usize);
                let len = len.min(MAX_IO);
                let data = match self.copyin(pid, buf, len) {
                    Ok(d) => d,
                    Err(e) => return done(Err(e)),
                };
                match self.write_fd(pid, fd, &data) {
                    Err(e) => done(Err(e)),
                    Ok(FlIo::Block(chan)) => SysOutcome::Sleep(chan),
                    Ok(FlIo::Done(n)) => done(Ok(n as u64)),
                }
            }
            SYS_OPEN => {
                let path = match self.copyin_str(pid, args[0]) {
                    Ok(p) => p,
                    Err(e) => return done(Err(e)),
                };
                let flags = OFlags::from_bits(args[1]);
                done(self.open_path(pid, &path, flags).map(|fd| fd as u64))
            }
            SYS_CREAT => {
                let path = match self.copyin_str(pid, args[0]) {
                    Ok(p) => p,
                    Err(e) => return done(Err(e)),
                };
                let flags = OFlags {
                    write: true,
                    creat: true,
                    trunc: true,
                    ..Default::default()
                };
                done(self.open_path(pid, &path, flags).map(|fd| fd as u64))
            }
            SYS_CLOSE => done(self.close_fd(pid, args[0] as usize).map(|()| 0)),
            SYS_WAIT => match self.wait_check(pid) {
                Err(e) => done(Err(e)),
                Ok(Some((child, status))) => {
                    if args[0] != 0 {
                        if let Err(e) =
                            self.copyout(pid, args[0], &(status as u64).to_le_bytes())
                        {
                            return done(Err(e));
                        }
                    }
                    done(Ok(child.0 as u64))
                }
                Ok(None) => SysOutcome::Sleep(WaitChannel::Child(pid)),
            },
            SYS_LINK => done(Err(Errno::ENOSYS)),
            SYS_UNLINK => {
                let path = match self.copyin_str(pid, args[0]) {
                    Ok(p) => p,
                    Err(e) => return done(Err(e)),
                };
                done(self.unlink_path(pid, &path).map(|()| 0))
            }
            SYS_EXEC => {
                let path = match self.copyin_str(pid, args[0]) {
                    Ok(p) => p,
                    Err(e) => return done(Err(e)),
                };
                let argv = match self.copyin_argv(pid, args[1]) {
                    Ok(v) => v,
                    Err(e) => return done(Err(e)),
                };
                done(self.do_exec(pid, &path, &argv).map(|()| 0))
            }
            SYS_CHDIR => {
                let path = match self.copyin_str(pid, args[0]) {
                    Ok(p) => p,
                    Err(e) => return done(Err(e)),
                };
                done(self.chdir(pid, &path).map(|()| 0))
            }
            SYS_TIME => done(Ok(self.kernel.clock / HZ)),
            SYS_BRK => {
                let Kernel { procs, objects, .. } = &mut self.kernel;
                let Some(proc) = procs.get_mut(&pid.0) else {
                    return done(Err(Errno::ESRCH));
                };
                done(proc.aspace.grow_break(objects, args[0]).map_err(|_| Errno::ENOMEM))
            }
            SYS_STAT => {
                let path = match self.copyin_str(pid, args[0]) {
                    Ok(p) => p,
                    Err(e) => return done(Err(e)),
                };
                match self.stat_path(pid, &path) {
                    Err(e) => done(Err(e)),
                    Ok(meta) => {
                        let img = encode_stat(&meta);
                        done(self.copyout(pid, args[1], &img).map(|()| 0))
                    }
                }
            }
            SYS_LSEEK => done(self.lseek_fd(pid, args[0] as usize, args[1] as i64, args[2] as u32)),
            SYS_GETPID => done(Ok(pid.0 as u64)),
            SYS_GETPPID => done(Ok(self
                .kernel
                .proc(pid)
                .map(|p| p.ppid.0 as u64)
                .unwrap_or(0))),
            SYS_GETPGRP => done(Ok(self
                .kernel
                .proc(pid)
                .map(|p| p.pgrp.0 as u64)
                .unwrap_or(0))),
            SYS_GETUID => done(Ok(self
                .kernel
                .proc(pid)
                .map(|p| p.cred.ruid as u64)
                .unwrap_or(0))),
            SYS_GETGID => done(Ok(self
                .kernel
                .proc(pid)
                .map(|p| p.cred.rgid as u64)
                .unwrap_or(0))),
            SYS_SETUID => {
                let uid = args[0] as u32;
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                if proc.cred.is_superuser() {
                    proc.cred.ruid = uid;
                    proc.cred.euid = uid;
                    proc.cred.suid = uid;
                    done(Ok(0))
                } else if uid == proc.cred.ruid || uid == proc.cred.suid {
                    proc.cred.euid = uid;
                    done(Ok(0))
                } else {
                    done(Err(Errno::EPERM))
                }
            }
            SYS_SETGID => {
                let gid = args[0] as u32;
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                if proc.cred.is_superuser() {
                    proc.cred.rgid = gid;
                    proc.cred.egid = gid;
                    proc.cred.sgid = gid;
                    done(Ok(0))
                } else if gid == proc.cred.rgid || gid == proc.cred.sgid {
                    proc.cred.egid = gid;
                    done(Ok(0))
                } else {
                    done(Err(Errno::EPERM))
                }
            }
            SYS_PTRACE => done(self.sys_ptrace(pid, tid, args)),
            SYS_ALARM => {
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                let remaining = proc
                    .alarm_at
                    .map(|at| at.saturating_sub(self.kernel.clock) / HZ)
                    .unwrap_or(0);
                let clock = self.kernel.clock;
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                proc.alarm_at = if args[0] == 0 { None } else { Some(clock + args[0] * HZ) };
                if let Some(at) = proc.alarm_at {
                    self.kernel.deadlines.arm(at, pid.0);
                }
                done(Ok(remaining))
            }
            SYS_PAUSE => SysOutcome::Sleep(WaitChannel::Pause),
            SYS_NICE => {
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                let incr = args[0] as i64 as i8;
                if incr < 0 && !proc.cred.is_superuser() {
                    return done(Err(Errno::EPERM));
                }
                proc.nice = proc.nice.saturating_add(incr).clamp(-20, 19);
                done(Ok((proc.nice + 20) as u64))
            }
            SYS_KILL => {
                let target = Pid(args[0] as u32);
                done(self.host_kill(pid, target, args[1] as usize).map(|()| 0))
            }
            SYS_DUP => done(self.dup_fd(pid, args[0] as usize).map(|fd| fd as u64)),
            SYS_PIPE => match self.make_pipe(pid) {
                Err(e) => done(Err(e)),
                Ok((r, w)) => {
                    let mut img = Vec::with_capacity(16);
                    img.extend_from_slice(&(r as u64).to_le_bytes());
                    img.extend_from_slice(&(w as u64).to_le_bytes());
                    done(self.copyout(pid, args[0], &img).map(|()| 0))
                }
            },
            SYS_SIGACTION => {
                // args: sig, handler code (0 default, 1 ignore, addr),
                // mask pointer (0 = empty; 16 bytes).
                let sig = args[0] as usize;
                let handler = match args[1] {
                    0 => Handler::Default,
                    1 => Handler::Ignore,
                    addr => Handler::Catch(addr),
                };
                let mask = if args[2] == 0 {
                    SigSet::empty()
                } else {
                    match self.copyin(pid, args[2], SigSet::WIRE_LEN) {
                        Ok(b) => match SigSet::from_bytes(&b) {
                            Some(s) => s,
                            None => return done(Err(Errno::EINVAL)),
                        },
                        Err(e) => return done(Err(e)),
                    }
                };
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                let old = proc.actions.get(sig);
                if !proc.actions.set(sig, SigAction { handler, mask }) {
                    return done(Err(Errno::EINVAL));
                }
                let old_code = match old.handler {
                    Handler::Default => 0,
                    Handler::Ignore => 1,
                    Handler::Catch(a) => a,
                };
                done(Ok(old_code))
            }
            SYS_SIGPROCMASK => {
                // args: how (0 block, 1 unblock, 2 set), newset ptr (0 =
                // none), oldset ptr (0 = none).
                let how = args[0];
                let newset = if args[1] == 0 {
                    None
                } else {
                    match self.copyin(pid, args[1], SigSet::WIRE_LEN) {
                        Ok(b) => match SigSet::from_bytes(&b) {
                            Some(s) => Some(s),
                            None => return done(Err(Errno::EINVAL)),
                        },
                        Err(e) => return done(Err(e)),
                    }
                };
                let old = {
                    let Ok(proc) = self.kernel.proc_mut(pid) else {
                        return done(Err(Errno::ESRCH));
                    };
                    let Some(lwp) = proc.lwp_mut(tid) else {
                        return done(Err(Errno::ESRCH));
                    };
                    let old = lwp.held;
                    if let Some(mut set) = newset {
                        // SIGKILL and SIGSTOP can never be held.
                        set.del(SIGKILL);
                        set.del(SIGSTOP);
                        match how {
                            0 => lwp.held.union_with(&set),
                            1 => lwp.held.subtract(&set),
                            2 => lwp.held = set,
                            _ => return done(Err(Errno::EINVAL)),
                        }
                    }
                    old
                };
                if args[2] != 0 {
                    if let Err(e) = self.copyout(pid, args[2], &old.to_bytes()) {
                        return done(Err(e));
                    }
                }
                done(Ok(0))
            }
            SYS_SIGSUSPEND => {
                // args: mask ptr. Replace the mask and sleep until a
                // signal; the old mask is restored when the call finishes.
                let mask = match self.copyin(pid, args[0], SigSet::WIRE_LEN) {
                    Ok(b) => match SigSet::from_bytes(&b) {
                        Some(s) => s,
                        None => return done(Err(Errno::EINVAL)),
                    },
                    Err(e) => return done(Err(e)),
                };
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                let Some(lwp) = proc.lwp_mut(tid) else {
                    return done(Err(Errno::ESRCH));
                };
                if let Some(ctx) = &mut lwp.syscall {
                    if ctx.saved_hold.is_none() {
                        ctx.saved_hold = Some(lwp.held);
                        let mut m = mask;
                        m.del(SIGKILL);
                        m.del(SIGSTOP);
                        lwp.held = m;
                    }
                }
                SysOutcome::Sleep(WaitChannel::Pause)
            }
            SYS_SIGRETURN => done(Err(Errno::EINVAL)),
            SYS_NANOSLEEP => {
                // args: ticks. The absolute deadline persists across
                // retries in the syscall context.
                let deadline = {
                    let clock = self.kernel.clock;
                    let Ok(proc) = self.kernel.proc_mut(pid) else {
                        return done(Err(Errno::ESRCH));
                    };
                    let Some(lwp) = proc.lwp_mut(tid) else {
                        return done(Err(Errno::ESRCH));
                    };
                    let Some(ctx) = &mut lwp.syscall else {
                        return done(Err(Errno::EINVAL));
                    };
                    *ctx.deadline.get_or_insert(clock + args[0])
                };
                if self.kernel.clock >= deadline {
                    done(Ok(0))
                } else {
                    SysOutcome::Sleep(WaitChannel::Ticks(deadline))
                }
            }
            SYS_MMAP => {
                // args: addr (0 = anywhere), len, prot bits, flags bits
                // (1 = shared, 2 = anon), fd, offset.
                done(self.sys_mmap(pid, args))
            }
            SYS_MUNMAP => {
                let Kernel { procs, objects, .. } = &mut self.kernel;
                let Some(proc) = procs.get_mut(&pid.0) else {
                    return done(Err(Errno::ESRCH));
                };
                done(
                    proc.aspace
                        .unmap(objects, args[0], args[1])
                        .map(|()| 0)
                        .map_err(|_| Errno::EINVAL),
                )
            }
            SYS_MPROTECT => {
                let Kernel { procs, objects, .. } = &mut self.kernel;
                let Some(proc) = procs.get_mut(&pid.0) else {
                    return done(Err(Errno::ESRCH));
                };
                done(
                    proc.aspace
                        .protect(objects, args[0], args[1], Prot::from_bits(args[2] as u32))
                        .map(|()| 0)
                        .map_err(|_| Errno::EINVAL),
                )
            }
            SYS_THR_CREATE => {
                // args: start pc, stack pointer, argument.
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                let tid_new = Tid(proc.next_tid);
                proc.next_tid += 1;
                let mut lwp = crate::proc::Lwp::new(tid_new, args[0], args[1]);
                lwp.gregs.set_arg(0, args[2]);
                proc.lwps.push(lwp);
                done(Ok(tid_new.0 as u64))
            }
            SYS_THR_EXIT => {
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return SysOutcome::Gone;
                };
                if let Some(lwp) = proc.lwp_mut(tid) {
                    lwp.state = LwpState::Zombie;
                    lwp.syscall = None;
                }
                let all_dead = proc.lwps.iter().all(|l| l.state == LwpState::Zombie);
                if all_dead {
                    self.do_exit(pid, Kernel::status_exited(0));
                }
                SysOutcome::Gone
            }
            SYS_YIELD => done(Ok(0)),
            SYS_GETDENTS => {
                // args: fd, buffer, buffer length. Entries are encoded as
                // [u64 node][u16 namelen][name bytes] back to back.
                done(self.sys_getdents(pid, args))
            }
            SYS_MKDIR => {
                let path = match self.copyin_str(pid, args[0]) {
                    Ok(p) => p,
                    Err(e) => return done(Err(e)),
                };
                done(self.mkdir_path(pid, &path, args[1] as u16).map(|_| 0))
            }
            SYS_UMASK => {
                let Ok(proc) = self.kernel.proc_mut(pid) else {
                    return done(Err(Errno::ESRCH));
                };
                let old = proc.umask;
                proc.umask = (args[0] as u16) & 0o777;
                done(Ok(old as u64))
            }
            SYS_POLL => self.sys_poll(pid, args),
            SYS_IOCTL => {
                // args: fd, request, in ptr, in len, out ptr, out len.
                let in_len = (args[3] as usize).min(MAX_IO);
                let arg = if args[2] == 0 || in_len == 0 {
                    Vec::new()
                } else {
                    match self.copyin(pid, args[2], in_len) {
                        Ok(b) => b,
                        Err(e) => return done(Err(e)),
                    }
                };
                match self.ioctl_fd(pid, args[0] as usize, args[1] as u32, &arg) {
                    Err(e) => done(Err(e)),
                    Ok(IoctlReply::Block) => SysOutcome::Sleep(WaitChannel::PollWait),
                    Ok(IoctlReply::Done(out)) => {
                        let n = out.len().min(args[5] as usize);
                        if args[4] != 0 && n > 0 {
                            if let Err(e) = self.copyout(pid, args[4], &out[..n]) {
                                return done(Err(e));
                            }
                        }
                        done(Ok(n as u64))
                    }
                }
            }
            SYS_RETIRED => done(Err(Errno::ENOSYS)),
            _ => done(Err(Errno::ENOSYS)),
        }
    }

    fn copyin_argv(&self, pid: Pid, addr: u64) -> SysResult<Vec<String>> {
        if addr == 0 {
            return Ok(Vec::new());
        }
        let mut argv = Vec::new();
        for i in 0..MAX_ARGS as u64 {
            let p = self.copyin(pid, addr + i * 8, 8)?;
            let ptr = crate::bytes::le_u64(&p);
            if ptr == 0 {
                return Ok(argv);
            }
            argv.push(self.copyin_str(pid, ptr)?);
        }
        Err(Errno::E2BIG)
    }

    fn chdir(&mut self, pid: Pid, path: &str) -> SysResult<()> {
        let meta = self.stat_path(pid, path)?;
        if meta.kind != vfs::VnodeKind::Directory {
            return Err(Errno::ENOTDIR);
        }
        let abs = if path.starts_with('/') {
            path.to_string()
        } else {
            let cwd = self.kernel.proc(pid)?.cwd.clone();
            format!("{}/{}", if cwd == "/" { "" } else { &cwd }, path)
        };
        let parts = vfs::path::components(&abs).ok_or(Errno::EINVAL)?;
        self.kernel.proc_mut(pid)?.cwd = vfs::path::join(&parts);
        Ok(())
    }

    /// Removes a directory entry (used by the unlink syscall and hosted
    /// tools).
    pub fn unlink_path(&mut self, pid: Pid, path: &str) -> SysResult<()> {
        let (fsid, dir, name) = self.resolve_parent(pid, path)?;
        let System { kernel, fss, .. } = self;
        fss[fsid as usize].as_fs().unlink(kernel, pid, dir, &name)
    }

    /// Creates a directory (used by the mkdir syscall and hosted tools).
    pub fn mkdir_path(&mut self, pid: Pid, path: &str, mode: u16) -> SysResult<vfs::NodeId> {
        let cred = self.kernel.proc(pid)?.cred.clone();
        let umask = self.kernel.proc(pid)?.umask;
        let (fsid, dir, name) = self.resolve_parent(pid, path)?;
        let System { kernel, fss, .. } = self;
        fss[fsid as usize].as_fs().mkdir(kernel, pid, dir, &name, mode & !umask, &cred)
    }

    fn sys_mmap(&mut self, pid: Pid, args: [u64; 6]) -> SysResult<u64> {
        let (addr, len, prot_bits, flag_bits, fd, off) =
            (args[0], args[1], args[2] as u32, args[3], args[4] as i64, args[5]);
        if len == 0 {
            return Err(Errno::EINVAL);
        }
        let len = len.div_ceil(vm::PAGE_SIZE) * vm::PAGE_SIZE;
        let prot = Prot::from_bits(prot_bits);
        let shared = flag_bits & 1 != 0;
        let anon = flag_bits & 2 != 0;
        let flags = MapFlags { shared, ..Default::default() };
        let object = if anon {
            self.kernel.objects.alloc_anon(len)
        } else {
            // File mapping: snapshot the file content into a page-cache
            // object (a private object per mmap call; full coherence with
            // the file is out of scope, see DESIGN.md).
            let fid = self.kernel.proc(pid)?.fds.get(fd as usize).ok_or(Errno::EBADF)?;
            let file = self.kernel.files.get(fid).ok_or(Errno::EBADF)?.clone();
            let crate::fd::FileKind::Vnode { fs, node, token } = file.kind else {
                return Err(Errno::ENODEV);
            };
            let System { kernel, fss, .. } = self;
            let size = fss[fs as usize].as_fs().getattr(kernel, node)?.size;
            let mut content = vec![0u8; size.saturating_sub(off).min(len) as usize];
            let mut read = 0usize;
            while read < content.len() {
                match fss[fs as usize].as_fs().read(
                    kernel,
                    pid,
                    node,
                    token,
                    off + read as u64,
                    &mut content[read..],
                )? {
                    vfs::IoReply::Done(0) => break,
                    vfs::IoReply::Done(n) => read += n,
                    vfs::IoReply::Block => return Err(Errno::EIO),
                }
            }
            self.kernel.objects.alloc_file(fs, node.0, "mmap", &content)
        };
        let name = if anon { SegName::Anon } else { SegName::Mapped };
        let Kernel { procs, objects, .. } = &mut self.kernel;
        let proc = procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
        let result = if addr != 0 {
            proc.aspace.map_fixed(addr, len, prot, flags, object, 0, name).map(|()| addr)
        } else {
            proc.aspace.map_anywhere(
                crate::aout::MMAP_LO,
                crate::aout::MMAP_HI,
                len,
                prot,
                flags,
                object,
                0,
                name,
            )
        };
        match result {
            Ok(base) => Ok(base),
            Err(_) => {
                objects.decref(object);
                Err(Errno::ENOMEM)
            }
        }
    }

    fn sys_getdents(&mut self, pid: Pid, args: [u64; 6]) -> SysResult<u64> {
        let (fd, buf, len) = (args[0] as usize, args[1], (args[2] as usize).min(MAX_IO));
        let fid = self.kernel.proc(pid)?.fds.get(fd).ok_or(Errno::EBADF)?;
        let file = self.kernel.files.get(fid).ok_or(Errno::EBADF)?.clone();
        let crate::fd::FileKind::Vnode { fs, node, .. } = file.kind else {
            return Err(Errno::ENOTDIR);
        };
        let entries = {
            let System { kernel, fss, .. } = self;
            fss[fs as usize].as_fs().readdir(kernel, pid, node)?
        };
        // Resume where the offset (an entry index) left off.
        let start = file.offset as usize;
        let mut img = Vec::new();
        let mut taken = 0usize;
        for e in entries.iter().skip(start) {
            let rec = 8 + 2 + e.name.len();
            if img.len() + rec > len {
                break;
            }
            img.extend_from_slice(&e.node.0.to_le_bytes());
            img.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
            img.extend_from_slice(e.name.as_bytes());
            taken += 1;
        }
        if taken == 0 && !entries.is_empty() && start < entries.len() {
            return Err(Errno::EINVAL); // Buffer too small for one entry.
        }
        self.copyout(pid, buf, &img)?;
        if let Some(f) = self.kernel.files.get_mut(fid) {
            f.offset += taken as u64;
        }
        Ok(img.len() as u64)
    }

    /// `poll(2)` for simulated callers; array entries are 12 bytes:
    /// `[u64 fd][u16 events][u16 revents]` with event bits 1=readable,
    /// 2=writable, 4=hangup.
    fn sys_poll(&mut self, pid: Pid, args: [u64; 6]) -> SysOutcome {
        let (arr, n) = (args[0], (args[1] as usize).min(256));
        let raw = match self.copyin(pid, arr, n * 12) {
            Ok(b) => b,
            Err(e) => return SysOutcome::Done(Err(e)),
        };
        let mut out = raw.clone();
        let mut ready = 0u64;
        for i in 0..n {
            let fd = crate::bytes::le_u64(&raw[i * 12..i * 12 + 8]) as usize;
            let events = crate::bytes::le_u16(&raw[i * 12 + 8..i * 12 + 10]);
            let st = match self.poll_fd(pid, fd) {
                Ok(s) => s,
                Err(_) => {
                    out[i * 12 + 10..i * 12 + 12].copy_from_slice(&4u16.to_le_bytes());
                    ready += 1;
                    continue;
                }
            };
            let mut revents = 0u16;
            if st.readable && events & 1 != 0 {
                revents |= 1;
            }
            if st.writable && events & 2 != 0 {
                revents |= 2;
            }
            if st.hangup {
                revents |= 4;
            }
            if revents != 0 {
                ready += 1;
            }
            out[i * 12 + 10..i * 12 + 12].copy_from_slice(&revents.to_le_bytes());
        }
        if ready == 0 {
            return SysOutcome::Sleep(WaitChannel::PollWait);
        }
        if let Err(e) = self.copyout(pid, arr, &out) {
            return SysOutcome::Done(Err(e));
        }
        SysOutcome::Done(Ok(ready))
    }
}

/// Serialises [`vfs::Metadata`] for the `stat` syscall: 40 bytes
/// `[u8 kind][u8 pad][u16 mode][u32 uid][u32 gid][u32 nlink][u64 size][u64 mtime][u64 reserved]`.
pub fn encode_stat(meta: &vfs::Metadata) -> [u8; 40] {
    let mut out = [0u8; 40];
    out[0] = match meta.kind {
        vfs::VnodeKind::Regular => 0,
        vfs::VnodeKind::Directory => 1,
        vfs::VnodeKind::Proc => 2,
        vfs::VnodeKind::Fifo => 3,
    };
    out[2..4].copy_from_slice(&meta.mode.to_le_bytes());
    out[4..8].copy_from_slice(&meta.uid.to_le_bytes());
    out[8..12].copy_from_slice(&meta.gid.to_le_bytes());
    out[12..16].copy_from_slice(&meta.nlink.to_le_bytes());
    out[16..24].copy_from_slice(&meta.size.to_le_bytes());
    out[24..32].copy_from_slice(&meta.mtime.to_le_bytes());
    out
}

