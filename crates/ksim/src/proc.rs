//! The process and LWP (lightweight process / thread) structures.
//!
//! The paper's proposed restructuring is motivated by "a process model
//! incorporating shared address spaces and multiple threads of control";
//! this kernel supports multiple LWPs per process from the start. The
//! flat `/proc` interface deliberately exposes only a representative LWP
//! (the strain the paper describes); the hierarchical interface exposes
//! them all.

use crate::fault::Fault;
use crate::fd::FdTable;
use crate::signal::{ActionTable, SigSet};
use crate::sysno::SysSet;
use crate::fault::FltSet;
use isa::{FpregSet, GregSet};
use vfs::{Cred, Errno, Pid};
use vm::AddressSpace;

/// LWP identifier, unique within its process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u32);

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Why a stopped LWP is stopped — `pr_why`/`pr_what` of `prstatus`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopWhy {
    /// Directed to stop by a controlling process (`PIOCSTOP`/`PCSTOP`).
    Requested,
    /// Stopped on receipt of a traced signal.
    Signalled(usize),
    /// Job-control stop (not an event of interest to `/proc`).
    JobControl(usize),
    /// Stopped on a traced machine fault.
    Faulted(Fault),
    /// Stopped on entry to a traced system call.
    SyscallEntry(u16),
    /// Stopped on exit from a traced system call.
    SyscallExit(u16),
    /// Stopped for the competing old-style `ptrace` mechanism.
    Ptrace(usize),
}

impl StopWhy {
    /// True for stops on an event of interest (or a requested stop) — the
    /// stops `PIOCWSTOP` waits for. Job-control and ptrace stops are the
    /// "competing mechanisms" and do not qualify.
    pub fn is_event_stop(&self) -> bool {
        !matches!(self, StopWhy::JobControl(_) | StopWhy::Ptrace(_))
    }
}

/// What a sleeping LWP is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitChannel {
    /// A child of this parent pid changing state (`wait`).
    Child(Pid),
    /// Data in pipe `n`.
    PipeR(u32),
    /// Space in pipe `n`.
    PipeW(u32),
    /// Any signal (`pause`, `sigsuspend`).
    Pause,
    /// The clock reaching this tick (`nanosleep`, also `alarm` sleeps).
    Ticks(u64),
    /// The target process entering an event-of-interest stop
    /// (`PIOCWSTOP` issued by a simulated process).
    ProcStop(Pid),
    /// A vforked child (this pid) exec-ing or exiting.
    VforkDone(Pid),
    /// Any pollable state change (`poll`).
    PollWait,
}

/// Progress of an in-flight system call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SysPhase {
    /// About to (re)dispatch; possibly stopped at the entry point.
    Entry,
    /// Blocked inside the call.
    Sleeping,
    /// The call finished with this result; return values are already in
    /// the saved registers; possibly stopped at the exit point.
    Exit(Result<u64, Errno>),
}

/// An in-flight system call, kept across entry stops, sleeps and exit
/// stops so the call can be restarted, aborted or resumed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallCtx {
    /// The call number as trapped (the dispatcher re-reads arguments from
    /// the registers each time, so a debugger stopped at entry can change
    /// them).
    pub nr: u16,
    /// Address of the `SYSCALL` instruction (`pc - 8` at trap time).
    pub insn_pc: u64,
    /// Where the call currently is.
    pub phase: SysPhase,
    /// `PRSABORT` was latched while stopped at entry: the call must be
    /// aborted with `EINTR` without executing.
    pub abort: bool,
    /// The entry stop was already taken (it is one-shot per call).
    pub entry_stop_taken: bool,
    /// Absolute wake tick for `nanosleep` (persisted across retries).
    pub deadline: Option<u64>,
    /// The child created by `fork`/`vfork` (so a vfork retry after the
    /// child releases the parent returns the pid instead of forking
    /// again).
    pub forked_child: Option<Pid>,
    /// Held-signal mask to restore when the call finishes
    /// (`sigsuspend`).
    pub saved_hold: Option<SigSet>,
}

impl SyscallCtx {
    /// A fresh context at the entry phase.
    pub fn new(nr: u16, insn_pc: u64) -> SyscallCtx {
        SyscallCtx {
            nr,
            insn_pc,
            phase: SysPhase::Entry,
            abort: false,
            entry_stop_taken: false,
            deadline: None,
            forked_child: None,
            saved_hold: None,
        }
    }
}

/// Scheduling state of an LWP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LwpState {
    /// Eligible to run.
    Runnable,
    /// Blocked on a wait channel.
    Sleeping {
        /// What it waits for.
        chan: WaitChannel,
        /// Whether signals (and stop directives) interrupt the sleep.
        interruptible: bool,
    },
    /// Stopped; see [`StopWhy`].
    Stopped(StopWhy),
    /// Terminated LWP awaiting its process.
    Zombie,
}

/// A single thread of control.
#[derive(Clone, Debug)]
pub struct Lwp {
    /// Identifier within the process.
    pub tid: Tid,
    /// General registers.
    pub gregs: GregSet,
    /// Floating registers.
    pub fpregs: FpregSet,
    /// Scheduling state.
    pub state: LwpState,
    /// Signals held (blocked) by this LWP.
    pub held: SigSet,
    /// The current signal, promoted from pending by `issig()`. "Older
    /// UNIX systems did not use the current signal concept and
    /// consequently suffered a race condition" — this field is that fix.
    pub cursig: Option<usize>,
    /// A directed-stop request is outstanding (`PIOCSTOP`/`PCDSTOP`).
    pub stop_directive: bool,
    /// The signalled stop for `cursig` was already taken (so a resume
    /// without clearing the signal proceeds to the next gate rather than
    /// re-stopping).
    pub sig_stop_taken: bool,
    /// The ptrace stop for `cursig` was already taken.
    pub ptrace_stop_taken: bool,
    /// One-shot single-step request (`PRSTEP`).
    pub single_step: bool,
    /// The most recent machine fault incurred (cleared by `PRCFAULT`).
    pub last_fault: Option<Fault>,
    /// In-flight system call, if any.
    pub syscall: Option<SyscallCtx>,
    /// The LWP must pass through `issig()` before returning to user code.
    pub user_return_pending: bool,
    /// The sleep was interrupted by a signal (vs a normal wakeup).
    pub sleep_interrupted: bool,
    /// Instructions retired by this LWP.
    pub insns: u64,
    /// Per-LWP decoded-instruction cache. Every LWP construction path
    /// (boot, `fork`, `exec`, `lwp_create`) goes through [`Lwp::new`],
    /// so new threads of control always start with a cold cache;
    /// validity is checked per fetch against the address-space
    /// generation, the backing mapping's content epoch and the object
    /// store's content generation.
    pub icache: isa::InsnCache,
    /// Per-LWP superblock cache: traced straight-line runs the CPU
    /// executes in one dispatch. Same lifecycle as the icache — every
    /// LWP construction path goes through [`Lwp::new`], so children
    /// start cold; blocks validate against the address-space
    /// generation, their text page's content epoch and the object
    /// store's content generation before every dispatch.
    pub sblocks: isa::SBlockCache,
    /// Per-LWP generation stamp, bumped whenever this LWP's externally
    /// visible state changes. LWP-scoped `/proc` images (`lwp/<tid>/
    /// status`, `gregs`) are cached against this stamp instead of the
    /// whole-process `pr_gen`, so mutating one thread does not evict its
    /// siblings' snapshots.
    pub lwp_gen: u64,
}

impl Lwp {
    /// A runnable LWP starting at `pc` with stack pointer `sp`.
    pub fn new(tid: Tid, pc: u64, sp: u64) -> Lwp {
        let mut gregs = GregSet::at(pc);
        gregs.set_sp(sp);
        Lwp {
            tid,
            gregs,
            fpregs: FpregSet::default(),
            state: LwpState::Runnable,
            held: SigSet::empty(),
            cursig: None,
            stop_directive: false,
            sig_stop_taken: false,
            ptrace_stop_taken: false,
            single_step: false,
            last_fault: None,
            syscall: None,
            user_return_pending: false,
            sleep_interrupted: false,
            insns: 0,
            icache: isa::InsnCache::new(),
            sblocks: isa::SBlockCache::new(),
            lwp_gen: 0,
        }
    }

    /// True if stopped (any reason).
    pub fn is_stopped(&self) -> bool {
        matches!(self.state, LwpState::Stopped(_))
    }

    /// The stop reason, if stopped.
    pub fn stop_why(&self) -> Option<StopWhy> {
        match self.state {
            LwpState::Stopped(why) => Some(why),
            _ => None,
        }
    }

    /// True if stopped on an event of interest (what `PIOCWSTOP` waits
    /// for).
    pub fn is_event_stopped(&self) -> bool {
        self.stop_why().is_some_and(|w| w.is_event_stop())
    }
}

/// Kernel-side tracing state, manipulated through `/proc` but owned by
/// the kernel (tracing must outlive any particular `/proc` descriptor:
/// "tracing flags can remain active for a process when its process file
/// is closed").
#[derive(Clone, Debug, Default)]
pub struct TraceState {
    /// Signals whose receipt stops the process (`PIOCSTRACE`).
    pub sig_trace: SigSet,
    /// Faults that stop the process (`PIOCSFAULT`).
    pub flt_trace: FltSet,
    /// System calls whose entry stops the process (`PIOCSENTRY`).
    pub entry_trace: SysSet,
    /// System calls whose exit stops the process (`PIOCSEXIT`).
    pub exit_trace: SysSet,
    /// Children inherit tracing flags and stop on fork exit
    /// (`PIOCSFORK`).
    pub inherit_on_fork: bool,
    /// Clear flags and set running when the last writable descriptor
    /// closes (`PIOCSRLC`).
    pub run_on_last_close: bool,
    /// Number of writable `/proc` descriptors currently open on this
    /// process (maintained by the `/proc` implementation).
    pub writers: u32,
    /// An exclusive-use writable descriptor is held (`O_EXCL`).
    pub excl: bool,
}

impl TraceState {
    /// True if any event tracing is active.
    pub fn any_tracing(&self) -> bool {
        !self.sig_trace.is_empty()
            || !self.flt_trace.is_empty()
            || !self.entry_trace.is_empty()
            || !self.exit_trace.is_empty()
    }

    /// Clears every tracing flag (run-on-last-close, untrace).
    pub fn clear_tracing(&mut self) {
        self.sig_trace = SigSet::empty();
        self.flt_trace = FltSet::empty();
        self.entry_trace = SysSet::empty();
        self.exit_trace = SysSet::empty();
        self.inherit_on_fork = false;
        self.run_on_last_close = false;
    }

    /// The tracing flags a forked child inherits when inherit-on-fork is
    /// set (descriptor bookkeeping is per-process and starts fresh).
    pub fn inherited(&self) -> TraceState {
        TraceState {
            sig_trace: self.sig_trace,
            flt_trace: self.flt_trace,
            entry_trace: self.entry_trace,
            exit_trace: self.exit_trace,
            inherit_on_fork: self.inherit_on_fork,
            run_on_last_close: self.run_on_last_close,
            writers: 0,
            excl: false,
        }
    }
}

/// A process.
#[derive(Clone, Debug)]
pub struct Proc {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Process group.
    pub pgrp: Pid,
    /// Session.
    pub sid: Pid,
    /// Credentials.
    pub cred: Cred,
    /// The address space.
    pub aspace: AddressSpace,
    /// Open file descriptors.
    pub fds: FdTable,
    /// Threads of control. At least one; `lwps[0]` is created first.
    pub lwps: Vec<Lwp>,
    /// Next LWP id.
    pub next_tid: u32,
    /// Process-directed pending signals.
    pub pending: SigSet,
    /// Signal actions.
    pub actions: ActionTable,
    /// `/proc` tracing state.
    pub trace: TraceState,
    /// Command name (`pr_fname`).
    pub fname: String,
    /// Command line (`pr_psargs`).
    pub psargs: String,
    /// Working directory.
    pub cwd: String,
    /// File creation mask (the paper's example of something `/proc` does
    /// *not* provide).
    pub umask: u16,
    /// Nice value.
    pub nice: i8,
    /// Start tick.
    pub start_time: u64,
    /// Instructions retired by all LWPs, live and dead.
    pub cpu_time: u64,
    /// True for hosted processes (controlling programs whose logic is
    /// host code; they are never scheduled on the CPU).
    pub hosted: bool,
    /// The process has exited and awaits `wait`.
    pub zombie: bool,
    /// Wait-status (valid when zombie).
    pub exit_status: u16,
    /// Bumped on every set-id exec; `/proc` descriptors opened under an
    /// older generation are invalid ("no further operation on that file
    /// descriptor will succeed except close(2)").
    pub exec_gen: u32,
    /// Traced with old-style `ptrace` by its parent.
    pub ptraced: bool,
    /// The current ptrace/job-control stop has been reported to `wait`.
    pub stop_reported: bool,
    /// Tick at which `SIGALRM` fires, if scheduled.
    pub alarm_at: Option<u64>,
    /// Set while a vforked child still borrows the parent.
    pub vfork_parent: Option<Pid>,
    /// Generation counter bumped by every externally visible state
    /// mutation (signal post/delivery, stop/run transitions, exec,
    /// register/memory pokes, usage ticks). Snapshot caches key cached
    /// `/proc` renderings on this value; a stale stamp means re-render.
    pub pr_gen: u64,
}

impl Proc {
    /// Marks the process state as changed, invalidating any cached
    /// `/proc` snapshot of it.
    #[inline]
    pub fn touch(&mut self) {
        self.pr_gen = self.pr_gen.wrapping_add(1);
    }

    /// Marks one LWP's state as changed. The process-wide `pr_gen` is
    /// only bumped when the mutated LWP is the representative one, since
    /// that is the only LWP the whole-process images render; a mutation
    /// scoped to any other LWP leaves process-level snapshots valid.
    pub fn touch_lwp(&mut self, tid: Tid) {
        let rep = self.rep_lwp().tid;
        if let Some(l) = self.lwp_mut(tid) {
            l.lwp_gen = l.lwp_gen.wrapping_add(1);
        }
        if tid == rep {
            self.touch();
        }
    }

    /// Finds an LWP by id.
    pub fn lwp(&self, tid: Tid) -> Option<&Lwp> {
        self.lwps.iter().find(|l| l.tid == tid)
    }

    /// Finds an LWP mutably.
    pub fn lwp_mut(&mut self, tid: Tid) -> Option<&mut Lwp> {
        self.lwps.iter_mut().find(|l| l.tid == tid)
    }

    /// The representative LWP shown by the flat `/proc` interface: the
    /// first non-zombie LWP, else the first LWP.
    pub fn rep_lwp(&self) -> &Lwp {
        self.lwps
            .iter()
            .find(|l| l.state != LwpState::Zombie)
            .unwrap_or(&self.lwps[0])
    }

    /// Mutable access to the representative LWP.
    pub fn rep_lwp_mut(&mut self) -> &mut Lwp {
        let idx = self
            .lwps
            .iter()
            .position(|l| l.state != LwpState::Zombie)
            .unwrap_or(0);
        &mut self.lwps[idx]
    }

    /// True if every LWP is stopped or dead and at least one is stopped
    /// (the flat interface treats "the process" as stopped).
    pub fn is_stopped(&self) -> bool {
        let mut saw_stop = false;
        for l in &self.lwps {
            match l.state {
                LwpState::Stopped(_) => saw_stop = true,
                LwpState::Zombie => {}
                _ => return false,
            }
        }
        saw_stop
    }

    /// True if the representative LWP is stopped on an event of interest.
    pub fn is_event_stopped(&self) -> bool {
        !self.zombie && self.rep_lwp().is_event_stopped()
    }

    /// Single-character run state for `ps` (`pr_sname`):
    /// O running/runnable, S sleeping, T stopped, Z zombie.
    pub fn state_char(&self) -> char {
        if self.zombie {
            return 'Z';
        }
        let l = self.rep_lwp();
        match l.state {
            LwpState::Runnable => 'O',
            LwpState::Sleeping { .. } => 'S',
            LwpState::Stopped(_) => 'T',
            LwpState::Zombie => 'Z',
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn stop_why_event_classification() {
        assert!(StopWhy::Requested.is_event_stop());
        assert!(StopWhy::Signalled(2).is_event_stop());
        assert!(StopWhy::Faulted(Fault::Bpt).is_event_stop());
        assert!(StopWhy::SyscallEntry(5).is_event_stop());
        assert!(!StopWhy::JobControl(23).is_event_stop());
        assert!(!StopWhy::Ptrace(5).is_event_stop());
    }

    #[test]
    fn trace_state_inheritance_resets_descriptor_bookkeeping() {
        let mut t = TraceState::default();
        t.sig_trace.add(2);
        t.inherit_on_fork = true;
        t.writers = 3;
        t.excl = true;
        let c = t.inherited();
        assert!(c.sig_trace.has(2));
        assert!(c.inherit_on_fork);
        assert_eq!(c.writers, 0);
        assert!(!c.excl);
    }

    #[test]
    fn clear_tracing_clears_events_not_bookkeeping() {
        let mut t = TraceState::default();
        t.sig_trace.add(2);
        t.entry_trace.add(5);
        t.writers = 1;
        t.clear_tracing();
        assert!(!t.any_tracing());
        assert_eq!(t.writers, 1);
    }

    #[test]
    fn lwp_stop_helpers() {
        let mut l = Lwp::new(Tid(1), 0x1000, 0x8000);
        assert!(!l.is_stopped());
        l.state = LwpState::Stopped(StopWhy::JobControl(23));
        assert!(l.is_stopped());
        assert!(!l.is_event_stopped());
        l.state = LwpState::Stopped(StopWhy::Requested);
        assert!(l.is_event_stopped());
    }
}
