//! Durable on-disk format for a [`Recording`]: versioned, segmented,
//! checksummed, append-only.
//!
//! PR 8's recordings live and die with their process. This module makes
//! a run survive it: a recfile image is the construction [`SimConfig`]
//! plus the input log, written so that a crash mid-write can lose at
//! most the *open* segment and never corrupt a committed one.
//!
//! ## Layout
//!
//! ```text
//! header:   magic "PSRECF01" | version u32 | config_len u32
//!           | SimConfig::encode bytes | crc32(version..config)
//! segment:  kind u8 | payload_len u32 | payload
//!           | crc32(kind+len+payload) | commit footer u32
//! ```
//!
//! Everything after the header is a sequence of segments. Segment kinds:
//!
//! - `0` — a batch of at most [`RECORDS_PER_SEGMENT`] records, each the
//!   input's full-fidelity encoding (unlike the digest encoding,
//!   `Steps` stores its count) followed by the recorded digest.
//! - `1` — a snapshot mark: the record position at which the live run
//!   banked a copy-on-write [`crate::record::Snap`]. Snapshots
//!   themselves hold live kernel clones and cannot be serialised; the
//!   loader re-banks them deterministically by replaying to each mark.
//!
//! ## Crash consistency
//!
//! Segments are written append-only and are self-validating: the CRC32
//! covers the kind, the length and the payload, and a fixed commit
//! footer follows the CRC. A torn write — truncation anywhere inside
//! the open segment, or a segment whose footer never made it out —
//! fails that segment's checks without touching any earlier one, so
//! [`load_committed`] recovers exactly the committed prefix. Committed
//! segments are never rewritten, so no failure mode can corrupt one.
//!
//! Every malformation is a typed [`RecfileError`]; no input bytes panic
//! the loader (fuzzed over truncation at every offset and single-bit
//! flips in `tests/robustness.rs`).

use crate::config::SimConfig;
use crate::record::{Input, Record, Recording};
use vfs::remote::{crc32, WireError, WireReader};
use vfs::{Cred, OFlags};

/// First eight bytes of every recfile image.
pub const RECFILE_MAGIC: &[u8; 8] = b"PSRECF01";

/// Current format version. Version 2 extends the embedded
/// `SimConfig` encoding with the scheduler shard dimension
/// (`shards`/`interleave_seed`/`shard_batch`) and the
/// `controller_death` fault rate; version-1 images predate both and are
/// rejected with a typed [`RecfileError::BadVersion`].
pub const RECFILE_VERSION: u32 = 2;

/// Records per batch segment; bounds how much one torn segment can lose.
pub const RECORDS_PER_SEGMENT: usize = 256;

/// Commit footer written after each segment checksum. A segment without
/// it was never committed.
const COMMIT_FOOTER: u32 = 0x5EC7_C0D3;

/// Segment kind: a batch of records.
const SEG_RECORDS: u8 = 0;
/// Segment kind: a snapshot-position mark.
const SEG_SNAP_MARK: u8 = 1;

/// Upper bound on one segment's payload (defense against hostile length
/// fields; honest batches are far smaller).
const MAX_SEGMENT: u32 = 1 << 24;

/// Upper bound on any single length-prefixed field inside a payload.
const MAX_FIELD: usize = 1 << 20;

/// A typed recfile load failure. Every malformed input maps here; the
/// loader never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecfileError {
    /// The image does not begin with [`RECFILE_MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The image ends before a fixed-size field it promised.
    Truncated,
    /// A CRC32 mismatch; segment 0 is the header.
    BadChecksum {
        /// Failing segment index (0 = header).
        segment: usize,
    },
    /// A segment's commit footer is absent or wrong: the segment was
    /// torn mid-write and never committed.
    BadCommit {
        /// Failing segment index.
        segment: usize,
    },
    /// A checksummed payload fails structural validation.
    Malformed {
        /// Failing segment index (0 = header).
        segment: usize,
        /// What failed.
        what: &'static str,
    },
}

impl std::fmt::Display for RecfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecfileError::BadMagic => write!(f, "recfile: bad magic"),
            RecfileError::BadVersion(v) => write!(f, "recfile: unsupported version {v}"),
            RecfileError::Truncated => write!(f, "recfile: truncated"),
            RecfileError::BadChecksum { segment } => {
                write!(f, "recfile: checksum mismatch in segment {segment}")
            }
            RecfileError::BadCommit { segment } => {
                write!(f, "recfile: segment {segment} missing commit footer (torn write)")
            }
            RecfileError::Malformed { segment, what } => {
                write!(f, "recfile: malformed segment {segment}: {what}")
            }
        }
    }
}

impl std::error::Error for RecfileError {}

/// A loaded recfile: the recording plus the snapshot marks to re-bank
/// during replay.
#[derive(Clone, Debug, PartialEq)]
pub struct RecFile {
    /// The recording (config comes back with `record = false`; loaders
    /// replay with recording re-enabled).
    pub recording: Recording,
    /// Record positions at which the original run banked snapshots,
    /// ascending.
    pub snap_marks: Vec<usize>,
}

fn enc_input_full(input: &Input, out: &mut Vec<u8>) {
    input.encode(out);
    // The digest encoding deliberately omits the coalesced step count;
    // the file must keep it to re-issue the burst.
    if let Input::Steps { n } = input {
        out.extend_from_slice(&n.to_le_bytes());
    }
}

fn push_segment(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let mut crc = crc32(0, &[kind]);
    crc = crc32(crc, &(payload.len() as u32).to_le_bytes());
    crc = crc32(crc, payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&COMMIT_FOOTER.to_le_bytes());
}

/// Serialises a recording (plus its snapshot positions) to the recfile
/// image. Snap marks beyond the log's end are ignored.
pub fn save(rec: &Recording, snap_marks: &[usize]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(RECFILE_MAGIC);
    let mut cfg = Vec::new();
    rec.config.encode(&mut cfg);
    out.extend_from_slice(&RECFILE_VERSION.to_le_bytes());
    out.extend_from_slice(&(cfg.len() as u32).to_le_bytes());
    out.extend_from_slice(&cfg);
    let crc = crc32(0, &out[8..]);
    out.extend_from_slice(&crc.to_le_bytes());

    let mut marks: Vec<usize> =
        snap_marks.iter().copied().filter(|&p| p <= rec.records.len()).collect();
    marks.sort_unstable();
    marks.dedup();
    let mut next_mark = 0usize;
    let mut i = 0usize;
    // Emit marks at their positions between batches, append-only order.
    loop {
        while next_mark < marks.len() && marks[next_mark] <= i {
            push_segment(&mut out, SEG_SNAP_MARK, &(marks[next_mark] as u64).to_le_bytes());
            next_mark += 1;
        }
        if i == rec.records.len() {
            break;
        }
        let mut end = (i + RECORDS_PER_SEGMENT).min(rec.records.len());
        if next_mark < marks.len() {
            end = end.min(marks[next_mark]);
        }
        let batch = &rec.records[i..end];
        let mut payload = Vec::new();
        payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
        for r in batch {
            enc_input_full(&r.input, &mut payload);
            payload.extend_from_slice(&r.digest.to_le_bytes());
        }
        push_segment(&mut out, SEG_RECORDS, &payload);
        i = end;
    }
    out
}

fn dec_str(r: &mut WireReader<'_>) -> Result<String, WireError> {
    let n = r.u64()? as usize;
    if n > MAX_FIELD {
        return Err(WireError::Malformed);
    }
    String::from_utf8(r.take(n)?.to_vec()).map_err(|_| WireError::Malformed)
}

fn dec_blob(r: &mut WireReader<'_>) -> Result<Vec<u8>, WireError> {
    let n = r.u64()? as usize;
    if n > MAX_FIELD {
        return Err(WireError::Malformed);
    }
    Ok(r.take(n)?.to_vec())
}

fn dec_cred(r: &mut WireReader<'_>) -> Result<Cred, WireError> {
    let ruid = r.u32()?;
    let euid = r.u32()?;
    let suid = r.u32()?;
    let rgid = r.u32()?;
    let egid = r.u32()?;
    let sgid = r.u32()?;
    let n = r.u64()? as usize;
    if n > 256 {
        return Err(WireError::Malformed);
    }
    let mut groups = Vec::with_capacity(n);
    for _ in 0..n {
        groups.push(r.u32()?);
    }
    Ok(Cred { ruid, euid, suid, rgid, egid, sgid, groups })
}

fn dec_oflags(b: u8) -> Result<OFlags, WireError> {
    if b >= 0x20 {
        return Err(WireError::Malformed);
    }
    Ok(OFlags {
        read: b & 1 != 0,
        write: b & 2 != 0,
        excl: b & 4 != 0,
        creat: b & 8 != 0,
        trunc: b & 16 != 0,
    })
}

fn dec_fds(r: &mut WireReader<'_>) -> Result<Vec<u32>, WireError> {
    let n = r.u64()? as usize;
    if n > MAX_FIELD / 4 {
        return Err(WireError::Malformed);
    }
    let mut fds = Vec::with_capacity(n);
    for _ in 0..n {
        fds.push(r.u32()?);
    }
    Ok(fds)
}

/// Inverts [`enc_input_full`]: the tag byte selects the variant, fields
/// follow in [`Input::encode`] order (with `Steps` carrying its count).
fn dec_input(r: &mut WireReader<'_>) -> Result<Input, WireError> {
    Ok(match r.u8()? {
        0 => {
            let path = dec_str(r)?;
            let mode = r.u16()?;
            let bytes = dec_blob(r)?;
            Input::InstallFile { path, mode, bytes }
        }
        1 => Input::InstallDir { path: dec_str(r)?, mode: r.u16()? },
        2 => Input::SpawnHosted { name: dec_str(r)?, cred: dec_cred(r)? },
        3 => {
            let parent = r.u32()?;
            let path = dec_str(r)?;
            let n = r.u64()? as usize;
            if n > 4096 {
                return Err(WireError::Malformed);
            }
            let mut argv = Vec::with_capacity(n);
            for _ in 0..n {
                argv.push(dec_str(r)?);
            }
            Input::SpawnProgram { parent, path, argv }
        }
        4 => Input::Steps { n: r.u64()? },
        5 => {
            let pid = r.u32()?;
            let path = dec_str(r)?;
            let flags = dec_oflags(r.u8()?)?;
            Input::HostOpen { pid, path, flags }
        }
        6 => Input::HostClose { pid: r.u32()?, fd: r.u32()? },
        7 => Input::HostRead { pid: r.u32()?, fd: r.u32()?, len: r.u32()? },
        8 => Input::HostWrite { pid: r.u32()?, fd: r.u32()?, data: dec_blob(r)? },
        9 => Input::HostLseek {
            pid: r.u32()?,
            fd: r.u32()?,
            off: r.u64()? as i64,
            whence: r.u32()?,
        },
        10 => {
            let pid = r.u32()?;
            let fd = r.u32()?;
            let req = r.u32()?;
            let arg = dec_blob(r)?;
            Input::HostIoctl { pid, fd, req, arg }
        }
        11 => Input::HostKill { pid: r.u32()?, target: r.u32()?, sig: r.u32()? },
        12 => Input::HostWait { pid: r.u32()? },
        13 => Input::HostPoll { pid: r.u32()?, fds: dec_fds(r)? },
        14 => Input::HostPollIn { pid: r.u32()?, fds: dec_fds(r)? },
        15 => Input::HostPollFd { pid: r.u32()?, fd: r.u32()? },
        _ => return Err(WireError::Malformed),
    })
}

fn payload_what(e: WireError) -> &'static str {
    match e {
        WireError::Truncated => "payload truncated",
        _ => "payload malformed",
    }
}

/// Parses the header, returning the config and the offset of the first
/// segment.
fn parse_header(bytes: &[u8]) -> Result<(SimConfig, usize), RecfileError> {
    if bytes.len() < RECFILE_MAGIC.len() {
        return Err(RecfileError::Truncated);
    }
    if &bytes[..8] != RECFILE_MAGIC {
        return Err(RecfileError::BadMagic);
    }
    let mut r = WireReader::new(&bytes[8..]);
    let version = r.u32().map_err(|_| RecfileError::Truncated)?;
    if version != RECFILE_VERSION {
        return Err(RecfileError::BadVersion(version));
    }
    let clen = r.u32().map_err(|_| RecfileError::Truncated)? as usize;
    if clen > MAX_SEGMENT as usize {
        return Err(RecfileError::Malformed { segment: 0, what: "config length" });
    }
    let cfg_bytes = r.take(clen).map_err(|_| RecfileError::Truncated)?.to_vec();
    let stored = r.u32().map_err(|_| RecfileError::Truncated)?;
    if crc32(0, &bytes[8..16 + clen]) != stored {
        return Err(RecfileError::BadChecksum { segment: 0 });
    }
    let mut cr = WireReader::new(&cfg_bytes);
    let config = SimConfig::decode(&mut cr)
        .map_err(|_| RecfileError::Malformed { segment: 0, what: "config" })?;
    if cr.remaining() != 0 {
        return Err(RecfileError::Malformed { segment: 0, what: "config trailing bytes" });
    }
    Ok((config, 8 + r.position()))
}

/// Parses one committed segment at `off`; returns the payload range and
/// the offset past the segment.
fn parse_segment(
    bytes: &[u8],
    off: usize,
    segment: usize,
) -> Result<(u8, std::ops::Range<usize>, usize), RecfileError> {
    let mut r = WireReader::new(&bytes[off..]);
    let kind = r.u8().map_err(|_| RecfileError::Truncated)?;
    let plen = r.u32().map_err(|_| RecfileError::Truncated)? as usize;
    if kind > SEG_SNAP_MARK {
        return Err(RecfileError::Malformed { segment, what: "segment kind" });
    }
    if plen > MAX_SEGMENT as usize {
        return Err(RecfileError::Malformed { segment, what: "segment length" });
    }
    r.take(plen).map_err(|_| RecfileError::Truncated)?;
    let stored = r.u32().map_err(|_| RecfileError::Truncated)?;
    if crc32(0, &bytes[off..off + 5 + plen]) != stored {
        return Err(RecfileError::BadChecksum { segment });
    }
    let footer = r.u32().map_err(|_| RecfileError::BadCommit { segment })?;
    if footer != COMMIT_FOOTER {
        return Err(RecfileError::BadCommit { segment });
    }
    Ok((kind, off + 5..off + 5 + plen, off + r.position()))
}

fn parse_records(
    payload: &[u8],
    segment: usize,
    records: &mut Vec<Record>,
) -> Result<(), RecfileError> {
    let mut r = WireReader::new(payload);
    let count = r.u32().map_err(|_| RecfileError::Malformed { segment, what: "record count" })?;
    if count as usize > RECORDS_PER_SEGMENT {
        return Err(RecfileError::Malformed { segment, what: "record count" });
    }
    for _ in 0..count {
        let input =
            dec_input(&mut r).map_err(|e| RecfileError::Malformed { segment, what: payload_what(e) })?;
        let digest =
            r.u64().map_err(|_| RecfileError::Malformed { segment, what: "record digest" })?;
        records.push(Record { input, digest });
    }
    if r.remaining() != 0 {
        return Err(RecfileError::Malformed { segment, what: "trailing payload bytes" });
    }
    Ok(())
}

/// Strict load: the whole image must be well-formed. Any torn, corrupt
/// or trailing byte is a typed error.
pub fn load(bytes: &[u8]) -> Result<RecFile, RecfileError> {
    match load_committed(bytes)? {
        (file, None) => Ok(file),
        (_, Some(e)) => Err(e),
    }
}

/// Crash-recovery load: parses the committed prefix and reports the
/// first failure (if any) alongside it. The header must be intact —
/// without a config there is nothing to replay into. A clean image
/// returns `(file, None)`.
pub fn load_committed(bytes: &[u8]) -> Result<(RecFile, Option<RecfileError>), RecfileError> {
    let (config, mut off) = parse_header(bytes)?;
    let mut records = Vec::new();
    let mut snap_marks = Vec::new();
    let mut segment = 1usize;
    let mut tail_err = None;
    while off < bytes.len() {
        let (kind, range, next) = match parse_segment(bytes, off, segment) {
            Ok(v) => v,
            Err(e) => {
                tail_err = Some(e);
                break;
            }
        };
        let res = match kind {
            SEG_RECORDS => parse_records(&bytes[range], segment, &mut records),
            _ => {
                let mut r = WireReader::new(&bytes[range]);
                match (r.u64(), r.remaining()) {
                    (Ok(pos), 0) if (pos as usize) <= records.len() => {
                        snap_marks.push(pos as usize);
                        Ok(())
                    }
                    _ => Err(RecfileError::Malformed { segment, what: "snap mark" }),
                }
            }
        };
        if let Err(e) = res {
            tail_err = Some(e);
            break;
        }
        off = next;
        segment += 1;
    }
    Ok((RecFile { recording: Recording { config, records }, snap_marks }, tail_err))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::MountPlan;
    use vfs::remote::WireConfig;

    fn sample_recording() -> (Recording, Vec<usize>) {
        let config = SimConfig::standard()
            .quantum(128)
            .mount("/procr", MountPlan::RemoteProc(WireConfig::clean()))
            .snapshot_every(2);
        let records = vec![
            Record {
                input: Input::InstallFile { path: "/bin/x".into(), mode: 0o755, bytes: vec![1, 2] },
                digest: 0x1111,
            },
            Record {
                input: Input::SpawnHosted { name: "ctl".into(), cred: Cred::new(7, 7) },
                digest: 0x2222,
            },
            Record { input: Input::Steps { n: 37 }, digest: 0x3333 },
            Record {
                input: Input::HostOpen {
                    pid: 2,
                    path: "/procr/00002".into(),
                    flags: OFlags::rdwr_excl(),
                },
                digest: 0x4444,
            },
            Record {
                input: Input::HostIoctl { pid: 2, fd: 3, req: 0x5001, arg: vec![9, 9] },
                digest: 0x5555,
            },
        ];
        (Recording { config, records }, vec![0, 2, 4])
    }

    #[test]
    fn save_load_roundtrip() {
        let (rec, marks) = sample_recording();
        let bytes = save(&rec, &marks);
        let file = load(&bytes).expect("loads");
        assert_eq!(file.recording.records, rec.records);
        assert_eq!(file.snap_marks, marks);
        // `record` is not carried in the config encoding.
        assert_eq!(file.recording.config, SimConfig { record: false, ..rec.config.clone() });
        // Byte-identical re-save: load then save reproduces the image.
        assert_eq!(save(&file.recording, &file.snap_marks), bytes);
    }

    #[test]
    fn empty_recording_roundtrips() {
        let rec = Recording { config: SimConfig::new(), records: Vec::new() };
        let bytes = save(&rec, &[]);
        let file = load(&bytes).expect("loads");
        assert!(file.recording.records.is_empty());
        assert!(file.snap_marks.is_empty());
    }

    #[test]
    fn batches_split_at_segment_cap() {
        let records: Vec<Record> = (0..(RECORDS_PER_SEGMENT as u64 + 10))
            .map(|i| Record { input: Input::Steps { n: i + 1 }, digest: i })
            .collect();
        let rec = Recording { config: SimConfig::new(), records };
        let bytes = save(&rec, &[]);
        let file = load(&bytes).expect("loads");
        assert_eq!(file.recording.records, rec.records);
    }

    #[test]
    fn torn_tail_segment_keeps_committed_prefix() {
        let (rec, marks) = sample_recording();
        let bytes = save(&rec, &marks);
        // Cut inside the last segment: strict load fails typed, committed
        // load keeps everything before it.
        let cut = bytes.len() - 3;
        assert!(load(&bytes[..cut]).is_err());
        let (file, err) = load_committed(&bytes[..cut]).expect("header intact");
        assert!(err.is_some());
        assert!(file.recording.records.len() < rec.records.len());
        assert_eq!(
            file.recording.records[..],
            rec.records[..file.recording.records.len()]
        );
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let (rec, _) = sample_recording();
        let mut bytes = save(&rec, &[]);
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        assert_eq!(load(&wrong), Err(RecfileError::BadMagic));
        bytes[8] = 0xEE; // version field
        match load(&bytes) {
            Err(RecfileError::BadVersion(_)) | Err(RecfileError::BadChecksum { .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn flipped_segment_byte_fails_checksum() {
        let (rec, marks) = sample_recording();
        let mut bytes = save(&rec, &marks);
        let tail = bytes.len() - 12; // inside the last segment's payload
        bytes[tail] ^= 0x01;
        match load(&bytes) {
            Err(
                RecfileError::BadChecksum { .. }
                | RecfileError::BadCommit { .. }
                | RecfileError::Malformed { .. }
                | RecfileError::Truncated,
            ) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
