//! `issig()` and `psig()` — the paper's Figure 4.
//!
//! "Just before a process returns to user level, it checks for the
//! presence of a signal to be acted upon and then acts on it by
//! executing: `if (issig()) psig();`"
//!
//! `issig()` here is [`Kernel::issig`], evaluated at every return to user
//! level, and [`Kernel::issig_insleep`], evaluated inside interruptible
//! sleeps to decide whether the system call terminates with `EINTR`. The
//! ordering of its gates reproduces the paper's interactions:
//!
//! 1. **signal promotion** — one pending, non-held, non-ignored signal
//!    becomes the *current signal* (ignored-but-traced signals are
//!    promotable: tracing must see them). The current-signal concept
//!    fixes the pre-SVR4 race the paper describes in its footnote.
//! 2. **signalled stop** — if the current signal is traced via `/proc`
//!    and this stop has not been taken yet.
//! 3. **ptrace stop** — if the process is traced with old-style
//!    `ptrace`, it stops on *any* signal; if the signal was also traced
//!    via `/proc`, the `/proc` stop came first and "the process must be
//!    set running through /proc before it can be manipulated by ptrace".
//! 4. **job-control stop** — default action for stop signals, taken
//!    *inside* `issig()`; consumes the current signal; released only by
//!    `SIGCONT`.
//! 5. **requested stop** — the `/proc` stop directive, honoured last:
//!    "/proc gets the last word."
//!
//! A resumed LWP re-enters `issig()`; the `sig_stop_taken` /
//! `ptrace_stop_taken` latches make the gates one-shot per current
//! signal, which is exactly what lets a process "stop twice due to
//! receipt of a job-control stop signal".

use crate::event::Event;
use crate::kernel::Kernel;
use crate::proc::{StopWhy, Tid};
use crate::signal::{
    default_dispo, is_stop_signal, DefaultDispo, Handler, SigSet, SIGKILL, SIGSEGV,
};
use vfs::Pid;

/// Outcome of `issig()` at user return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Issig {
    /// The LWP stopped; do not run user code.
    Stop,
    /// Deliver this signal via `psig()`.
    Deliver(usize),
    /// Nothing to do; return to user code.
    Run,
}

/// Outcome of `issig()` inside an interruptible sleep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SleepSig {
    /// The LWP stopped inside the sleep; the system call is undisturbed
    /// and resumes sleeping when the LWP is set running again.
    Stop,
    /// Terminate the system call with `EINTR`.
    Interrupt,
    /// Spurious wakeup; retry the operation (and possibly sleep again) —
    /// "the operation of wakeup runs all the processes sleeping on the
    /// channel, so a newly awakened process has to ask the question
    /// again".
    Retry,
}

/// Outcome of `psig()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Psig {
    /// A handler frame was pushed; resume user code at the handler.
    Handled,
    /// The default action terminates the process with this wait-status.
    Terminated(u16),
    /// The signal evaporated (ignored, or continue).
    Nothing,
}

/// Byte length of a signal delivery frame on the user stack:
/// `[pc, psr, held[0], held[1], sig]`.
pub const SIGFRAME_LEN: u64 = 40;

impl Kernel {
    /// Promotes a pending signal to current if none is current. Returns
    /// the current signal, if any.
    fn promote(&mut self, pid: Pid, tid: Tid) -> Option<usize> {
        let proc = self.procs.get_mut(&pid.0)?;
        // Compute the promotion mask first: ignored signals are not
        // promotable unless traced (tracing must observe them).
        let mut ignored = proc.actions.ignored_set();
        ignored.subtract(&proc.trace.sig_trace);
        let (cursig, held) = {
            let lwp = proc.lwp(tid)?;
            (lwp.cursig, lwp.held)
        };
        if cursig.is_none() {
            if let Some(sig) = proc.pending.first_not_in(&held, &ignored) {
                proc.pending.del(sig);
                let lwp = proc.lwp_mut(tid)?;
                lwp.cursig = Some(sig);
                lwp.sig_stop_taken = false;
                lwp.ptrace_stop_taken = false;
            }
        }
        proc.lwp(tid)?.cursig
    }

    /// The common gate sequence. `in_sleep` moves the requested-stop
    /// check to the front (a directed stop must not disturb the sleeping
    /// system call) and converts delivery into `Interrupt`.
    fn issig_gates(&mut self, pid: Pid, tid: Tid, in_sleep: bool) -> Issig {
        // Requested stop first when sleeping.
        if in_sleep && self.take_directive(pid, tid) {
            self.stop_lwp(pid, tid, StopWhy::Requested);
            return Issig::Stop;
        }
        while let Some(sig) = self.promote(pid, tid) {
            if sig == SIGKILL {
                // SIGKILL cannot be traced, held or ignored; deliver now.
                return Issig::Deliver(sig);
            }
            let (traced, taken, ptraced, ptaken, handler) = {
                let proc = match self.proc(pid) {
                    Ok(p) => p,
                    Err(_) => return Issig::Run,
                };
                let lwp = match proc.lwp(tid) {
                    Some(l) => l,
                    None => return Issig::Run,
                };
                (
                    proc.trace.sig_trace.has(sig),
                    lwp.sig_stop_taken,
                    proc.ptraced,
                    lwp.ptrace_stop_taken,
                    proc.actions.get(sig).handler,
                )
            };
            // Gate: signalled stop.
            if traced && !taken {
                if let Ok(p) = self.proc_mut(pid) {
                    if let Some(l) = p.lwp_mut(tid) {
                        l.sig_stop_taken = true;
                    }
                }
                self.stop_lwp(pid, tid, StopWhy::Signalled(sig));
                return Issig::Stop;
            }
            // Gate: ptrace stop — "when controlled via ptrace, a process
            // stops on receipt of any signal".
            if ptraced && !ptaken {
                if let Ok(p) = self.proc_mut(pid) {
                    if let Some(l) = p.lwp_mut(tid) {
                        l.ptrace_stop_taken = true;
                    }
                }
                self.stop_lwp(pid, tid, StopWhy::Ptrace(sig));
                return Issig::Stop;
            }
            // Gate: job-control stop, taken within issig().
            if is_stop_signal(sig) && handler == Handler::Default {
                if let Ok(p) = self.proc_mut(pid) {
                    if let Some(l) = p.lwp_mut(tid) {
                        l.cursig = None;
                    }
                }
                self.stop_lwp(pid, tid, StopWhy::JobControl(sig));
                return Issig::Stop;
            }
            // The signal may have become moot: ignored (possibly it was
            // only promotable because traced), or SIGCONT whose continue
            // side effect already happened at post time.
            let moot = match handler {
                Handler::Ignore => true,
                Handler::Default => matches!(
                    default_dispo(sig),
                    DefaultDispo::Ignore | DefaultDispo::Continue
                ),
                Handler::Catch(_) => false,
            };
            if moot {
                if let Ok(p) = self.proc_mut(pid) {
                    if let Some(l) = p.lwp_mut(tid) {
                        l.cursig = None;
                    }
                }
                continue; // Promote the next one.
            }
            // A real signal to act on.
            return Issig::Deliver(sig);
        }
        // Requested stop last when returning to user: "/proc gets the
        // last word".
        if !in_sleep && self.take_directive(pid, tid) {
            self.stop_lwp(pid, tid, StopWhy::Requested);
            return Issig::Stop;
        }
        Issig::Run
    }

    fn take_directive(&mut self, pid: Pid, tid: Tid) -> bool {
        if let Ok(p) = self.proc_mut(pid) {
            if let Some(l) = p.lwp_mut(tid) {
                if l.stop_directive {
                    l.stop_directive = false;
                    return true;
                }
            }
        }
        false
    }

    /// `issig()` at return to user level.
    pub fn issig(&mut self, pid: Pid, tid: Tid) -> Issig {
        self.issig_gates(pid, tid, false)
    }

    /// `issig()` within an interruptible sleep: decides between stopping
    /// (without disturbing the call), interrupting with `EINTR`, and
    /// retrying.
    pub fn issig_insleep(&mut self, pid: Pid, tid: Tid) -> SleepSig {
        match self.issig_gates(pid, tid, true) {
            Issig::Stop => SleepSig::Stop,
            Issig::Deliver(_) => SleepSig::Interrupt,
            Issig::Run => SleepSig::Retry,
        }
    }

    /// `psig()` — act on the current signal: enter the handler or take
    /// the default action. The caller (the System layer) performs the
    /// actual process teardown on `Terminated`.
    pub fn psig(&mut self, pid: Pid, tid: Tid) -> Psig {
        let Ok(proc) = self.proc_mut(pid) else {
            return Psig::Nothing;
        };
        let Some(lwp) = proc.lwp_mut(tid) else {
            return Psig::Nothing;
        };
        let Some(sig) = lwp.cursig.take() else {
            return Psig::Nothing;
        };
        lwp.sig_stop_taken = false;
        lwp.ptrace_stop_taken = false;
        proc.touch();
        let action = proc.actions.get(sig);
        match action.handler {
            Handler::Catch(handler_pc) if sig != SIGKILL => {
                // Push the delivery frame onto the user stack and redirect
                // to the handler; the return address is the kernel
                // sigreturn trampoline.
                let Kernel { procs, objects, log, .. } = self;
                let Some(proc) = procs.get_mut(&pid.0) else {
                    unreachable!("pid validated at entry")
                };
                let Some(lwp_idx) = proc.lwps.iter().position(|l| l.tid == tid) else {
                    unreachable!("tid validated at entry")
                };
                let (pc, psr, held, sp) = {
                    let l = &proc.lwps[lwp_idx];
                    (l.gregs.pc, l.gregs.psr, l.held, l.gregs.sp())
                };
                let new_sp = sp.wrapping_sub(SIGFRAME_LEN);
                let mut frame = Vec::with_capacity(SIGFRAME_LEN as usize);
                frame.extend_from_slice(&pc.to_le_bytes());
                frame.extend_from_slice(&psr.to_le_bytes());
                frame.extend_from_slice(&held.to_bytes());
                frame.extend_from_slice(&(sig as u64).to_le_bytes());
                if proc.aspace.kernel_write(objects, new_sp, &frame).is_err() {
                    // Unable to build the frame (bad stack): the process
                    // dies as if by SIGSEGV with a core dump.
                    log.push(Event::CoreDump { pid, sig: SIGSEGV });
                    return Psig::Terminated(Kernel::status_signalled(SIGSEGV, true));
                }
                let l = &mut proc.lwps[lwp_idx];
                l.gregs.set_sp(new_sp);
                l.gregs.pc = handler_pc;
                l.gregs.set_arg(0, sig as u64);
                l.gregs.set_r(isa::REG_RA, crate::aout::SIGRETURN_ADDR);
                l.held.union_with(&action.mask);
                l.held.add(sig);
                log.push(Event::SigDeliver { pid, sig, handled: true });
                Psig::Handled
            }
            _ => {
                let dispo = if action.handler == Handler::Ignore {
                    DefaultDispo::Ignore
                } else {
                    default_dispo(sig)
                };
                match dispo {
                    DefaultDispo::Terminate => {
                        self.log.push(Event::SigDeliver { pid, sig, handled: false });
                        Psig::Terminated(Kernel::status_signalled(sig, false))
                    }
                    DefaultDispo::Core => {
                        self.log.push(Event::SigDeliver { pid, sig, handled: false });
                        self.log.push(Event::CoreDump { pid, sig });
                        Psig::Terminated(Kernel::status_signalled(sig, true))
                    }
                    // Stop is taken inside issig(); Ignore/Continue
                    // evaporate.
                    DefaultDispo::Stop | DefaultDispo::Ignore | DefaultDispo::Continue => {
                        Psig::Nothing
                    }
                }
            }
        }
    }

    /// Restores state from a signal frame (`sigreturn`, entered via the
    /// kernel trampoline address). Returns false if the frame is
    /// unreadable (the process should die with SIGSEGV).
    pub fn sigreturn(&mut self, pid: Pid, tid: Tid) -> bool {
        let Kernel { procs, objects, .. } = self;
        let Some(proc) = procs.get_mut(&pid.0) else {
            return false;
        };
        let Some(lwp_idx) = proc.lwps.iter().position(|l| l.tid == tid) else {
            return false;
        };
        let sp = proc.lwps[lwp_idx].gregs.sp();
        let mut frame = [0u8; SIGFRAME_LEN as usize];
        if proc.aspace.kernel_read(objects, sp, &mut frame).is_err() {
            return false;
        }
        let l = &mut proc.lwps[lwp_idx];
        l.gregs.pc = crate::bytes::le_u64(&frame[0..8]);
        l.gregs.psr = crate::bytes::le_u64(&frame[8..16]);
        let Some(held) = SigSet::from_bytes(&frame[16..32]) else {
            return false;
        };
        l.held = held;
        l.gregs.set_sp(sp + SIGFRAME_LEN);
        proc.touch();
        true
    }

    /// Sets the current signal directly (`PIOCSSIG`). A signal of 0 (or
    /// `None`) clears it.
    pub fn set_cursig(&mut self, pid: Pid, tid: Tid, sig: Option<usize>) -> vfs::SysResult<()> {
        let proc = self.proc_mut(pid)?;
        let lwp = proc.lwp_mut(tid).ok_or(vfs::Errno::ESRCH)?;
        lwp.cursig = sig.filter(|&s| s != 0);
        lwp.sig_stop_taken = false;
        lwp.ptrace_stop_taken = false;
        proc.touch();
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::proc::LwpState;
    use crate::signal::{SigAction, SIGINT, SIGTSTP};
    use vfs::Cred;

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::new();
        let p0 = k.new_proc(Pid(0), Pid(0), Pid(0), Cred::superuser(), "sched", true);
        let pid = k.new_proc(p0, p0, p0, Cred::new(100, 10), "t", false);
        (k, pid)
    }

    const T: Tid = Tid(1);

    #[test]
    fn no_signal_no_stop_runs() {
        let (mut k, pid) = boot();
        assert_eq!(k.issig(pid, T), Issig::Run);
    }

    #[test]
    fn untraced_terminating_signal_delivers() {
        let (mut k, pid) = boot();
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Deliver(SIGINT));
        // psig default-terminates.
        assert_eq!(k.psig(pid, T), Psig::Terminated(Kernel::status_signalled(SIGINT, false)));
    }

    #[test]
    fn traced_signal_stops_then_delivers_if_not_cleared() {
        let (mut k, pid) = boot();
        k.proc_mut(pid).expect("p").trace.sig_trace.add(SIGINT);
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Stop);
        assert_eq!(
            k.proc(pid).expect("p").rep_lwp().stop_why(),
            Some(StopWhy::Signalled(SIGINT))
        );
        // Resume without clearing: the stop is one-shot, so the signal is
        // now delivered.
        k.run_lwp(pid, T, crate::kernel::RunOpts::default()).expect("run");
        assert_eq!(k.issig(pid, T), Issig::Deliver(SIGINT));
    }

    #[test]
    fn traced_signal_cleared_on_resume_runs() {
        let (mut k, pid) = boot();
        k.proc_mut(pid).expect("p").trace.sig_trace.add(SIGINT);
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Stop);
        k.run_lwp(pid, T, crate::kernel::RunOpts { clear_sig: true, ..Default::default() })
            .expect("run");
        assert_eq!(k.issig(pid, T), Issig::Run, "cleared signal leaves nothing to do");
    }

    #[test]
    fn held_signal_not_promoted() {
        let (mut k, pid) = boot();
        k.proc_mut(pid).expect("p").lwps[0].held.add(SIGINT);
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Run);
        assert!(k.proc(pid).expect("p").pending.has(SIGINT), "stays pending");
    }

    #[test]
    fn ignored_but_traced_signal_stops_then_evaporates() {
        let (mut k, pid) = boot();
        {
            let p = k.proc_mut(pid).expect("p");
            p.trace.sig_trace.add(SIGINT);
            p.actions.set(
                SIGINT,
                SigAction { handler: Handler::Ignore, mask: SigSet::empty() },
            );
        }
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Stop, "tracing sees ignored signals");
        k.run_lwp(pid, T, crate::kernel::RunOpts::default()).expect("run");
        assert_eq!(k.issig(pid, T), Issig::Run, "ignored signal evaporates after the stop");
        assert_eq!(k.proc(pid).expect("p").rep_lwp().cursig, None);
    }

    #[test]
    fn job_control_double_stop() {
        // "A process may stop twice due to receipt of a job-control stop
        // signal, first on a signalled stop if the signal is being traced
        // and again on a job-control stop if the process is set running
        // without clearing the signal."
        let (mut k, pid) = boot();
        k.proc_mut(pid).expect("p").trace.sig_trace.add(SIGTSTP);
        k.post_signal(pid, SIGTSTP).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Stop);
        assert_eq!(
            k.proc(pid).expect("p").rep_lwp().stop_why(),
            Some(StopWhy::Signalled(SIGTSTP))
        );
        k.run_lwp(pid, T, crate::kernel::RunOpts::default()).expect("run");
        assert_eq!(k.issig(pid, T), Issig::Stop);
        assert_eq!(
            k.proc(pid).expect("p").rep_lwp().stop_why(),
            Some(StopWhy::JobControl(SIGTSTP))
        );
        // Released only by SIGCONT; /proc cannot resume it.
        assert_eq!(
            k.run_lwp(pid, T, crate::kernel::RunOpts::default()),
            Err(vfs::Errno::EBUSY)
        );
        k.post_signal(pid, crate::signal::SIGCONT).expect("post");
        assert_eq!(k.proc(pid).expect("p").rep_lwp().state, LwpState::Runnable);
        assert_eq!(k.issig(pid, T), Issig::Run);
    }

    #[test]
    fn proc_gets_the_last_word_after_sigcont() {
        // Directed to stop while job-control stopped: when restarted by
        // SIGCONT it stops again on a requested stop before exiting
        // issig().
        let (mut k, pid) = boot();
        k.post_signal(pid, SIGTSTP).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Stop, "job-control stop");
        k.direct_stop(pid).expect("direct");
        k.post_signal(pid, crate::signal::SIGCONT).expect("cont");
        assert_eq!(k.issig(pid, T), Issig::Stop, "requested stop has the last word");
        assert_eq!(k.proc(pid).expect("p").rep_lwp().stop_why(), Some(StopWhy::Requested));
    }

    #[test]
    fn ptrace_after_proc_ordering() {
        let (mut k, pid) = boot();
        {
            let p = k.proc_mut(pid).expect("p");
            p.ptraced = true;
            p.trace.sig_trace.add(SIGINT);
        }
        k.post_signal(pid, SIGINT).expect("post");
        // /proc signalled stop first.
        assert_eq!(k.issig(pid, T), Issig::Stop);
        assert_eq!(
            k.proc(pid).expect("p").rep_lwp().stop_why(),
            Some(StopWhy::Signalled(SIGINT))
        );
        // Set running through /proc: now ptrace takes control.
        k.run_lwp(pid, T, crate::kernel::RunOpts::default()).expect("run");
        assert_eq!(k.issig(pid, T), Issig::Stop);
        assert_eq!(k.proc(pid).expect("p").rep_lwp().stop_why(), Some(StopWhy::Ptrace(SIGINT)));
        // /proc cannot resume a ptrace stop.
        assert_eq!(
            k.run_lwp(pid, T, crate::kernel::RunOpts::default()),
            Err(vfs::Errno::EBUSY)
        );
    }

    #[test]
    fn directive_checked_first_in_sleep() {
        let (mut k, pid) = boot();
        k.proc_mut(pid).expect("p").lwps[0].stop_directive = true;
        assert_eq!(k.issig_insleep(pid, T), SleepSig::Stop);
        // After resume, a retry continues the sleep undisturbed.
        k.run_lwp(pid, T, crate::kernel::RunOpts::default()).expect("run");
        assert_eq!(k.issig_insleep(pid, T), SleepSig::Retry);
    }

    #[test]
    fn real_signal_interrupts_sleep() {
        let (mut k, pid) = boot();
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig_insleep(pid, T), SleepSig::Interrupt);
        // The current signal survives for the at-user-return issig — "a
        // second signal is not promoted".
        assert_eq!(k.proc(pid).expect("p").rep_lwp().cursig, Some(SIGINT));
    }

    #[test]
    fn traced_signal_stops_inside_sleep_then_interrupts_or_resumes() {
        let (mut k, pid) = boot();
        k.proc_mut(pid).expect("p").trace.sig_trace.add(SIGINT);
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig_insleep(pid, T), SleepSig::Stop, "signalled stop in sleep");
        // Debugger clears the signal: the call resumes sleeping.
        k.run_lwp(pid, T, crate::kernel::RunOpts { clear_sig: true, ..Default::default() })
            .expect("run");
        assert_eq!(k.issig_insleep(pid, T), SleepSig::Retry);
        // Second round: not cleared → EINTR.
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig_insleep(pid, T), SleepSig::Stop);
        k.run_lwp(pid, T, crate::kernel::RunOpts::default()).expect("run");
        assert_eq!(k.issig_insleep(pid, T), SleepSig::Interrupt);
    }

    #[test]
    fn sigkill_overrides_everything() {
        let (mut k, pid) = boot();
        k.proc_mut(pid).expect("p").trace.sig_trace.add(SIGKILL); // futile
        k.post_signal(pid, SIGKILL).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Deliver(SIGKILL));
        assert_eq!(k.psig(pid, T), Psig::Terminated(Kernel::status_signalled(SIGKILL, false)));
    }

    #[test]
    fn handler_delivery_builds_frame_and_sigreturn_restores() {
        let (mut k, pid) = boot();
        // Give the process a stack.
        {
            let Kernel { procs, objects, .. } = &mut k;
            let p = procs.get_mut(&pid.0).expect("p");
            let obj = objects.alloc_anon(0x4000);
            p.aspace
                .map_fixed(
                    0x10000,
                    0x4000,
                    vm::Prot::RW,
                    vm::MapFlags::default(),
                    obj,
                    0,
                    vm::SegName::Stack,
                )
                .expect("map");
            p.lwps[0].gregs.set_sp(0x13000);
            p.lwps[0].gregs.pc = 0x999000;
            p.actions.set(
                SIGINT,
                SigAction { handler: Handler::Catch(0x555000), mask: SigSet::empty() },
            );
        }
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Deliver(SIGINT));
        assert_eq!(k.psig(pid, T), Psig::Handled);
        {
            let l = &k.proc(pid).expect("p").lwps[0];
            assert_eq!(l.gregs.pc, 0x555000);
            assert_eq!(l.gregs.arg(0), SIGINT as u64);
            assert_eq!(l.gregs.get(isa::REG_RA), crate::aout::SIGRETURN_ADDR);
            assert_eq!(l.gregs.sp(), 0x13000 - SIGFRAME_LEN);
            assert!(l.held.has(SIGINT), "signal held during handler");
        }
        assert!(k.sigreturn(pid, T));
        let l = &k.proc(pid).expect("p").lwps[0];
        assert_eq!(l.gregs.pc, 0x999000, "pc restored");
        assert_eq!(l.gregs.sp(), 0x13000, "sp restored");
        assert!(!l.held.has(SIGINT), "mask restored");
    }

    #[test]
    fn handler_with_bad_stack_terminates_with_core() {
        let (mut k, pid) = boot();
        k.proc_mut(pid).expect("p").actions.set(
            SIGINT,
            SigAction { handler: Handler::Catch(0x555000), mask: SigSet::empty() },
        );
        // sp is 0: unmapped.
        k.post_signal(pid, SIGINT).expect("post");
        assert_eq!(k.issig(pid, T), Issig::Deliver(SIGINT));
        assert_eq!(k.psig(pid, T), Psig::Terminated(Kernel::status_signalled(SIGSEGV, true)));
    }

    #[test]
    fn set_cursig_resets_latches() {
        let (mut k, pid) = boot();
        {
            let l = &mut k.proc_mut(pid).expect("p").lwps[0];
            l.cursig = Some(SIGINT);
            l.sig_stop_taken = true;
        }
        k.set_cursig(pid, T, Some(SIGTSTP)).expect("set");
        let l = &k.proc(pid).expect("p").lwps[0];
        assert_eq!(l.cursig, Some(SIGTSTP));
        assert!(!l.sig_stop_taken);
        k.set_cursig(pid, T, None).expect("clear");
        assert_eq!(k.proc(pid).expect("p").lwps[0].cursig, None);
    }
}
