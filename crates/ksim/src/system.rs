//! The `System`: the kernel plus its mounted file systems, the CPU
//! scheduler, the trap handlers, and the host-level system-call API used
//! by controlling programs.
//!
//! The paper's stop points (Figure 3) all live here:
//!
//! * the system-call handler stops the process on entry to or exit from
//!   traced calls (`syscall_entry`, `finish_syscall`);
//! * the user trap handler stops it on traced machine faults
//!   (`take_fault`);
//! * `issig()` stops it on traced signals, job control, ptrace, and
//!   requested stops (see [`crate::sched`]) on every return to user
//!   level and inside interruptible sleeps.

use crate::aout::{self, Aout};
use crate::config::SimConfig;
use crate::fault::Fault;
use crate::fd::{FileId, FileKind, PIPE_CAP};
use crate::kernel::{CachedImage, Kernel};
use crate::record::{self, Input, Recorder, Recording};
use crate::proc::{LwpState, StopWhy, SysPhase, SyscallCtx, Tid, WaitChannel};
use crate::signal::{SIGCHLD, SIGKILL, SIGPIPE, SIGSEGV};
use crate::sysno::SYS_FORK;
use isa::{Access, Bus, BusFault, BusFaultKind, Cpu, RunExit, StepEvent, PSR_ERR, PSR_TRACE};
use vfs::{
    Cred, DirEntry, Errno, FileSystem, IoReply, IoctlReply, Metadata, MountTable, NodeId, OFlags,
    Pid, PollStatus, SysResult,
};
use vm::PAGE_SIZE;

/// Signal number for SIGPIPE — re-exported into this module's scope via
/// `crate::signal`; alias kept for readability at call sites.
const _: () = ();

/// A mounted file system: the root memfs is held concretely (so userland
/// installation can reach it), everything else as a trait object.
pub enum FsSlot {
    /// The concrete root file system.
    Mem(vfs::MemFs<Kernel>),
    /// Any other file system type (`/proc`, remote shims, ...).
    Dyn(Box<dyn FileSystem<Kernel>>),
}

impl FsSlot {
    pub(crate) fn as_fs(&mut self) -> &mut dyn FileSystem<Kernel> {
        match self {
            FsSlot::Mem(m) => m,
            FsSlot::Dyn(d) => d.as_mut(),
        }
    }
}

/// Outcome of one system-call dispatch.
pub enum SysOutcome {
    /// The call completed with this result.
    Done(SysResult<u64>),
    /// The call must sleep on this channel (interruptibly).
    Sleep(WaitChannel),
    /// The calling process or LWP no longer runs (exit, thr_exit).
    Gone,
}

/// Result of a file-layer operation that can block.
pub enum FlIo {
    /// Transferred this many bytes.
    Done(usize),
    /// Would block; sleep on this channel and retry.
    Block(WaitChannel),
}

/// The whole machine.
pub struct System {
    /// Kernel state (processes, files, pipes, objects, clock, log).
    pub kernel: Kernel,
    /// Mounted file systems, indexed by `FsId`.
    pub fss: Vec<FsSlot>,
    /// Path-prefix mount table.
    pub mounts: MountTable,
    cpu: Cpu,
    run_cursor: usize,
    /// Instructions per scheduling quantum.
    pub quantum: u64,
    /// Idle-step limit for hosted blocking calls before `EDEADLK`.
    pub pump_limit: u64,
    /// Shard count for the gang-round scheduler; 0 selects the legacy
    /// one-LWP-per-step loop (see [`SimConfig::shards`]).
    pub shards: u32,
    /// Quanta each selected LWP runs per gang round.
    pub shard_batch: u32,
    /// Seed for the per-round commit permutation.
    pub interleave_seed: u64,
}

/// What one scheduler step actually did. `System::step` collapses this
/// to a bool (`true` unless `Blocked`), preserving its original contract;
/// budgeted drivers ([`System::run_until`], [`System::run_idle`]) use the
/// full outcome so an idle fast-forward over a long sleep consumes
/// budget in proportion to the simulated time it skipped, instead of
/// counting as one step and letting a frozen frontier spin the budget
/// away one tick-jump at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// A slice (or gang round) of guest or kernel work ran.
    Ran,
    /// Nothing was runnable; the clock fast-forwarded `jumped` ticks to
    /// the next timer deadline.
    Idle {
        /// Ticks skipped to reach the deadline.
        jumped: u64,
    },
    /// Nothing runnable and no timed sleeper: the machine cannot make
    /// progress without outside input.
    Blocked,
}

impl System {
    /// Boots a system under the default [`SimConfig`]: root memfs
    /// mounted at `/`, process 0 (`sched`) and process 1 (`init`)
    /// created as hosted system processes.
    pub fn boot() -> System {
        System::with_config(SimConfig::new())
    }

    /// Boots a system under `cfg` — the one construction path every
    /// knob goes through. Mount plans in `cfg.mounts` are *not*
    /// interpreted here (the `/proc` faces live a crate up); the
    /// `procfs` crate's `build_sim` consumes them after this returns.
    pub fn with_config(cfg: SimConfig) -> System {
        let mut kernel = Kernel::new();
        kernel.fast_path = cfg.fast_path;
        kernel.coarse_epochs = cfg.coarse_epochs;
        let mut sys = System {
            kernel,
            fss: vec![FsSlot::Mem(vfs::MemFs::new())],
            mounts: MountTable::new(),
            cpu: Cpu::new(),
            run_cursor: 0,
            quantum: cfg.quantum,
            pump_limit: cfg.pump_limit,
            shards: cfg.shards,
            shard_batch: cfg.shard_batch,
            interleave_seed: cfg.interleave_seed,
        };
        sys.mounts.add("/", 0);
        let p0 = sys.kernel.new_proc(Pid(0), Pid(0), Pid(0), Cred::superuser(), "sched", true);
        debug_assert_eq!(p0, Pid(0));
        let p1 = sys.kernel.new_proc(p0, Pid(1), Pid(1), Cred::superuser(), "init", true);
        debug_assert_eq!(p1, Pid(1));
        if let Some(f) = cfg.kernel_faults {
            sys.apply_fault_plan(f.seed, f.rates, f.targeted);
        }
        if cfg.record {
            sys.kernel.recorder = Some(Box::new(Recorder::new(cfg)));
        }
        sys
    }

    /// Mounts a file system at `path`, returning its id.
    pub fn mount(&mut self, path: &str, fs: Box<dyn FileSystem<Kernel>>) -> u32 {
        let id = self.fss.len() as u32;
        self.fss.push(FsSlot::Dyn(fs));
        assert!(self.mounts.add(path, id), "mount point {path} already taken");
        id
    }

    /// The root memfs, for installing userland files.
    pub fn memfs_mut(&mut self) -> &mut vfs::MemFs<Kernel> {
        match &mut self.fss[0] {
            FsSlot::Mem(m) => m,
            FsSlot::Dyn(_) => unreachable!("slot 0 is always the root memfs"),
        }
    }

    // ------------------------------------------------------------------
    // Recording
    // ------------------------------------------------------------------

    /// True when a recorder is attached and not suppressed (i.e. this
    /// call is a genuine host-boundary input, not the interior of one).
    fn rec_active(&self) -> bool {
        self.kernel.recorder.as_ref().map(|r| r.suppress == 0).unwrap_or(false)
    }

    fn rec_suppress(&mut self, on: bool) {
        if let Some(r) = self.kernel.recorder.as_mut() {
            if on {
                r.suppress += 1;
            } else {
                r.suppress = r.suppress.saturating_sub(1);
            }
        }
    }

    /// Takes a copy-on-write snapshot (kernel clone + root memfs clone +
    /// per-slot wire-transport state) if the recorder's interval says
    /// the current position needs one. Must run *before* the input it
    /// precedes executes.
    fn rec_snapshot_if_due(&mut self, will_extend: bool) {
        let due = match self.kernel.recorder.as_ref() {
            Some(r) if r.suppress == 0 => r.wants_snapshot(will_extend),
            _ => false,
        };
        if !due {
            return;
        }
        let kernel = self.kernel.snapshot();
        let root = match &self.fss[0] {
            FsSlot::Mem(m) => m.clone(),
            FsSlot::Dyn(_) => return,
        };
        // Mounted `/proc` faces are views over the kernel and rebuild
        // fresh on restore — except the remote mount, whose transport
        // (sessions, dedup window, queues) lives outside the kernel and
        // must travel with the snapshot for `goto` to restore it.
        let wires: Vec<(usize, vfs::remote::WireSnapshot)> = self
            .fss
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                FsSlot::Dyn(fs) => fs.wire_snapshot().map(|w| (i, w)),
                FsSlot::Mem(_) => None,
            })
            .collect();
        if let Some(r) = self.kernel.recorder.as_mut() {
            r.push_snap(kernel, root, wires);
        }
    }

    fn rec_commit(&mut self, input: Input, result: &[u8]) {
        let clock = self.kernel.clock;
        if let Some(r) = self.kernel.recorder.as_mut() {
            r.commit(input, result, clock);
        }
    }

    /// Records one host-boundary call: pre-snapshot if due, run `f` with
    /// recording suppressed (its interior pump steps are not inputs),
    /// then commit the input with the encoded result.
    fn recorded<T>(
        &mut self,
        f: impl FnOnce(&mut System) -> SysResult<T>,
        input: impl FnOnce() -> Input,
        enc: impl FnOnce(&T, &mut Vec<u8>),
    ) -> SysResult<T> {
        if !self.rec_active() {
            return f(self);
        }
        self.rec_snapshot_if_due(false);
        self.rec_suppress(true);
        let r = f(self);
        self.rec_suppress(false);
        let res = record::result_bytes(&r, enc);
        self.rec_commit(input(), &res);
        r
    }

    /// The recording so far (config + input log), when recording.
    pub fn recording(&self) -> Option<Recording> {
        self.kernel.recorder.as_ref().map(|r| r.recording())
    }

    /// Serialises the attached recording — config, input log and the
    /// positions of the banked snapshots — to the durable recfile image
    /// ([`crate::recfile`]), bumping the recorder's file counters.
    /// `None` when the run is not recorded.
    pub fn save_recfile(&mut self) -> Option<Vec<u8>> {
        let r = self.kernel.recorder.as_mut()?;
        let rec = r.recording();
        let marks: Vec<usize> = r.snaps.iter().map(|s| s.pos).collect();
        let bytes = crate::recfile::save(&rec, &marks);
        r.stats.file_saves += 1;
        r.stats.file_bytes += bytes.len() as u64;
        Some(bytes)
    }

    /// Installs raw file content at `path` in the root file system.
    /// Recorded with the bytes inline, so replay re-installs verbatim.
    pub fn install_file(&mut self, path: &str, mode: u16, bytes: &[u8]) {
        self.rec_snapshot_if_due(false);
        self.memfs_mut().install(path, mode, 0, 0, bytes.to_vec());
        if self.rec_active() {
            self.rec_commit(
                Input::InstallFile { path: path.to_string(), mode, bytes: bytes.to_vec() },
                &[],
            );
        }
    }

    /// Creates `path` (and any missing parents) as a directory with
    /// `mode` in the root file system.
    pub fn install_dir(&mut self, path: &str, mode: u16) {
        self.rec_snapshot_if_due(false);
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        let id = self.memfs_mut().mkdir_p(&parts);
        self.memfs_mut().set_mode(id, mode);
        if self.rec_active() {
            self.rec_commit(Input::InstallDir { path: path.to_string(), mode }, &[]);
        }
    }

    /// Installs an executable image at `path` in the root file system.
    pub fn install_aout(&mut self, path: &str, aout: &Aout, mode: u16) {
        self.install_file(path, mode, &aout.to_bytes());
    }

    /// Assembles `src` and installs it at `path` (mode 0755). The
    /// recording stores the *assembled* image, so replay needs no
    /// assembler.
    pub fn install_program(&mut self, path: &str, src: &str) {
        let aout = match aout::build_aout(src) {
            Ok(a) => a,
            Err(e) => panic!("program {path} does not assemble: {e:?}"),
        };
        self.install_aout(path, &aout, 0o755);
    }

    // ------------------------------------------------------------------
    // Scheduler
    // ------------------------------------------------------------------

    /// Runs one scheduling step: fires timers, picks a runnable LWP and
    /// runs it for up to one quantum. Returns false when nothing can make
    /// progress (no runnable LWPs and no timed sleepers). When recording,
    /// the step (and its progress bit and post-step clock) coalesces
    /// into the trailing `Steps` record.
    pub fn step(&mut self) -> bool {
        !matches!(self.step_outcome(), StepOutcome::Blocked)
    }

    /// Like [`System::step`], but reports *what* the step did — real
    /// work, an idle fast-forward (and how far), or no progress at all.
    pub fn step_outcome(&mut self) -> StepOutcome {
        if !self.rec_active() {
            return self.step_dispatch();
        }
        let will_extend = self
            .kernel
            .recorder
            .as_ref()
            .map(|r| r.step_will_extend())
            .unwrap_or(false);
        self.rec_snapshot_if_due(will_extend);
        self.rec_suppress(true);
        let out = self.step_dispatch();
        self.rec_suppress(false);
        let clock = self.kernel.clock;
        let ran = !matches!(out, StepOutcome::Blocked);
        if let Some(r) = self.kernel.recorder.as_mut() {
            r.commit_step(ran, clock);
        }
        out
    }

    fn step_dispatch(&mut self) -> StepOutcome {
        if self.shards > 0 {
            self.step_round()
        } else {
            self.step_inner()
        }
    }

    fn step_inner(&mut self) -> StepOutcome {
        self.kfault_controller_tick();
        self.fire_timers();
        self.autoreap_init_children();
        let Some((pid, tid)) = self.pick_next() else {
            return self.idle_jump();
        };
        self.run_slice(pid, tid);
        StepOutcome::Ran
    }

    /// Idle: fast-forward to the next timed wakeup if one exists. A
    /// deadline at or before the current clock would mean a zero-tick
    /// jump — with nothing runnable that is a guaranteed spin, so it
    /// reports `Blocked` (it cannot happen after `fire_timers`, which
    /// drains everything due).
    fn idle_jump(&mut self) -> StepOutcome {
        let Some(t) = self.next_deadline() else {
            return StepOutcome::Blocked;
        };
        let jumped = t.saturating_sub(self.kernel.clock);
        if jumped == 0 {
            return StepOutcome::Blocked;
        }
        self.kernel.clock += jumped;
        self.fire_timers();
        StepOutcome::Idle { jumped }
    }

    /// Steps a budgeted driver loop: an idle fast-forward consumes
    /// budget proportional to the simulated time it skipped (in quantum
    /// units, minimum one), so `budget` bounds simulated work whether
    /// the machine is busy or sleeping.
    fn budget_charge(&self, out: StepOutcome) -> u64 {
        match out {
            StepOutcome::Ran => 1,
            StepOutcome::Idle { jumped } => (jumped / self.quantum.max(1)).max(1),
            StepOutcome::Blocked => 0,
        }
    }

    /// Runs steps until `cond` holds or the budget is exhausted. Returns
    /// whether the condition was met.
    pub fn run_until(&mut self, budget: u64, mut cond: impl FnMut(&System) -> bool) -> bool {
        let mut spent = 0u64;
        while spent < budget {
            if cond(self) {
                return true;
            }
            match self.step_outcome() {
                StepOutcome::Blocked => return cond(self),
                out => spent = spent.saturating_add(self.budget_charge(out)),
            }
        }
        cond(self)
    }

    /// Steps until the machine is fully idle or the budget is exhausted.
    pub fn run_idle(&mut self, budget: u64) {
        let mut spent = 0u64;
        while spent < budget {
            match self.step_outcome() {
                StepOutcome::Blocked => return,
                out => spent = spent.saturating_add(self.budget_charge(out)),
            }
        }
    }

    fn fire_timers(&mut self) {
        let clock = self.kernel.clock;
        // Lazy-deletion pop: the heap may hold entries for cancelled
        // alarms, rescheduled alarms and interrupted sleeps; collect the
        // distinct pids with *any* entry due and re-validate per process.
        // Pids are visited in ascending order — the same order the old
        // full-table scan produced.
        let mut due: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        while let Some((t, pid)) = self.kernel.deadlines.peek() {
            if t > clock {
                break;
            }
            self.kernel.deadlines.pop();
            due.insert(pid);
        }
        if due.is_empty() {
            return;
        }
        let mut alarms = Vec::new();
        for pid in due {
            let Some(proc) = self.kernel.procs.get_mut(&pid) else { continue };
            if let Some(at) = proc.alarm_at {
                if at <= clock {
                    proc.alarm_at = None;
                    alarms.push(proc.pid);
                }
            }
            let mut woke = false;
            for lwp in &mut proc.lwps {
                if let LwpState::Sleeping { chan: WaitChannel::Ticks(t), .. } = lwp.state {
                    if t <= clock {
                        lwp.state = LwpState::Runnable;
                        lwp.sleep_interrupted = false;
                        woke = true;
                    }
                }
            }
            if woke {
                proc.touch();
            }
        }
        for pid in alarms {
            let _ = self.kernel.post_signal(pid, crate::signal::SIGALRM);
        }
    }

    /// Children of init are reaped automatically (init's only job).
    fn autoreap_init_children(&mut self) {
        let dead: Vec<u32> = self
            .kernel
            .procs
            .values()
            .filter(|p| p.zombie && p.ppid == Pid(1) && p.pid != Pid(1))
            .map(|p| p.pid.0)
            .collect();
        for pid in dead {
            self.kernel.procs.remove(&pid);
            self.kernel.table_gen = self.kernel.table_gen.wrapping_add(1);
        }
    }

    /// The earliest live timer deadline, in O(stale entries) rather than
    /// a process-table scan: peeks the heap and discards entries whose
    /// process no longer holds a matching alarm or `Ticks` sleep.
    fn next_deadline(&mut self) -> Option<u64> {
        while let Some((t, pid)) = self.kernel.deadlines.peek() {
            let live = self
                .kernel
                .procs
                .get(&pid)
                .map(|p| {
                    p.alarm_at == Some(t)
                        || p.lwps.iter().any(|l| {
                            matches!(
                                l.state,
                                LwpState::Sleeping { chan: WaitChannel::Ticks(d), .. } if d == t
                            )
                        })
                })
                .unwrap_or(false);
            if live {
                return Some(t);
            }
            self.kernel.deadlines.pop();
        }
        None
    }

    fn pick_next(&mut self) -> Option<(Pid, Tid)> {
        let mut candidates = Vec::new();
        for proc in self.kernel.procs.values() {
            if proc.hosted || proc.zombie {
                continue;
            }
            for lwp in &proc.lwps {
                if lwp.state == LwpState::Runnable {
                    candidates.push((proc.pid, lwp.tid));
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates[self.run_cursor % candidates.len()];
        self.run_cursor = self.run_cursor.wrapping_add(1);
        Some(pick)
    }

    /// Runs one LWP for up to a quantum, handling its kernel entries.
    fn run_slice(&mut self, pid: Pid, tid: Tid) {
        // The LWP is about to run: registers, instruction counts and any
        // self-inflicted state all change, so one generation bump here
        // covers every mutation the slice makes to its own process.
        if let Ok(p) = self.kernel.proc_mut(pid) {
            p.touch();
        }
        // Phase A: in-flight system call continuation.
        let has_syscall = self
            .kernel
            .proc(pid)
            .ok()
            .and_then(|p| p.lwp(tid))
            .map(|l| l.syscall.is_some())
            .unwrap_or(false);
        if has_syscall {
            self.continue_syscall(pid, tid);
        }
        if !self.lwp_runnable(pid, tid) {
            return;
        }
        // Phase B: the issig()/psig() gate before returning to user code.
        let pending = self
            .kernel
            .proc(pid)
            .ok()
            .and_then(|p| p.lwp(tid))
            .map(|l| l.user_return_pending)
            .unwrap_or(false);
        if pending {
            loop {
                match self.kernel.issig(pid, tid) {
                    crate::sched::Issig::Stop => return,
                    crate::sched::Issig::Deliver(_) => match self.kernel.psig(pid, tid) {
                        crate::sched::Psig::Terminated(status) => {
                            self.do_exit(pid, status);
                            return;
                        }
                        _ => continue,
                    },
                    crate::sched::Issig::Run => break,
                }
            }
            if let Ok(p) = self.kernel.proc_mut(pid) {
                if let Some(l) = p.lwp_mut(tid) {
                    l.user_return_pending = false;
                }
            }
        }
        // Phase C/D: run user code.
        let quantum = self.quantum;
        let System { kernel, cpu, .. } = self;
        let Kernel { procs, objects, .. } = kernel;
        let Some(proc) = procs.get_mut(&pid.0) else { return };
        let crate::proc::Proc { aspace, lwps, cpu_time, .. } = proc;
        let Some(lwp) = lwps.iter_mut().find(|l| l.tid == tid) else {
            return;
        };
        if lwp.single_step {
            lwp.gregs.psr |= PSR_TRACE;
        }
        let crate::proc::Lwp { gregs, fpregs, icache, sblocks, insns, .. } = lwp;
        let mut bus = ProcBus { asp: aspace, store: StoreRef::Full(objects), icache, sblocks };
        let (n, exit) = cpu.run(gregs, fpregs, &mut bus, quantum);
        *cpu_time += n;
        *insns += n;
        kernel.clock += n.max(1);
        match exit {
            RunExit::Quantum => {
                // A clock interrupt is a kernel entry: honour directives
                // and pending signals before the next user slice.
                if let Some(l) = kernel
                    .proc_mut(pid)
                    .ok()
                    .and_then(|p| p.lwp_mut(tid))
                {
                    l.user_return_pending = true;
                }
            }
            RunExit::Event(ev) => self.handle_trap(pid, tid, ev),
        }
    }

    /// Runs user code only — no signal gate, no syscall continuation —
    /// for up to `budget` instructions with full store access. This is
    /// the serial tail of a speculative slice that stalled on the frozen
    /// store: the gang round already ran the kernel-entry phases, so the
    /// remainder is pure re-execution from the stalled pc.
    fn run_user_burst(&mut self, pid: Pid, tid: Tid, budget: u64) {
        let System { kernel, cpu, .. } = self;
        let Kernel { procs, objects, .. } = kernel;
        let Some(proc) = procs.get_mut(&pid.0) else { return };
        if proc.zombie {
            return;
        }
        let crate::proc::Proc { aspace, lwps, cpu_time, .. } = proc;
        let Some(lwp) = lwps.iter_mut().find(|l| l.tid == tid) else {
            return;
        };
        if lwp.state != LwpState::Runnable {
            return;
        }
        let crate::proc::Lwp { gregs, fpregs, icache, sblocks, insns, .. } = lwp;
        let mut bus = ProcBus { asp: aspace, store: StoreRef::Full(objects), icache, sblocks };
        let (n, exit) = cpu.run(gregs, fpregs, &mut bus, budget.max(1));
        *cpu_time += n;
        *insns += n;
        kernel.clock += n.max(1);
        match exit {
            RunExit::Quantum => {
                if let Some(l) = kernel.proc_mut(pid).ok().and_then(|p| p.lwp_mut(tid)) {
                    l.user_return_pending = true;
                }
            }
            RunExit::Event(ev) => self.handle_trap(pid, tid, ev),
        }
    }

    fn lwp_runnable(&self, pid: Pid, tid: Tid) -> bool {
        self.kernel
            .proc(pid)
            .ok()
            .and_then(|p| p.lwp(tid))
            .map(|l| l.state == LwpState::Runnable)
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Gang-round scheduler (shards > 0)
    // ------------------------------------------------------------------

    /// True when the slice is *pure user*: the next thing this LWP does
    /// is execute user instructions, with no kernel entry owed first.
    /// The issig() gate would answer `Run` without mutating anything (no
    /// pending or current signal, no stop directive), there is no system
    /// call to continue, and no single-step latch — so the slice can be
    /// speculated against a frozen store with every effect process-local.
    fn slice_eligible(proc: &crate::proc::Proc, lwp: &crate::proc::Lwp) -> bool {
        !proc.hosted
            && !proc.zombie
            && proc.pending.is_empty()
            && lwp.state == LwpState::Runnable
            && lwp.syscall.is_none()
            && lwp.cursig.is_none()
            && !lwp.stop_directive
            && !lwp.single_step
    }

    /// One gang round of the sharded scheduler (`shards > 0`).
    ///
    /// Selection picks one runnable LWP per non-hosted process (rotated
    /// by round number, so multi-LWP processes interleave). Pure-user
    /// slices are speculated in parallel — partitioned `pid % shards`
    /// onto host threads, each running up to `shard_batch` quanta
    /// against the round-start state with a frozen store view — while
    /// slices owing a kernel entry wait for the serial phase. The
    /// commit phase then applies *every* slice's kernel effect in an
    /// order drawn from the seeded interleave permutation.
    ///
    /// Determinism: commit order is a pure function of
    /// `(interleave_seed, round)`, speculation sees only round-start
    /// state, and aborted speculation (`BusFaultKind::Frozen`) re-runs
    /// serially — so transcripts, digests and replay are byte-identical
    /// across shard counts and host thread timing for a given seed.
    fn step_round(&mut self) -> StepOutcome {
        self.kfault_controller_tick();
        self.fire_timers();
        self.autoreap_init_children();
        let round = self.kernel.sched_rounds;
        self.kernel.sched_rounds = round.wrapping_add(1);

        let mut eligible: Vec<(Pid, Tid)> = Vec::new();
        let mut serial: Vec<(Pid, Tid)> = Vec::new();
        for proc in self.kernel.procs.values() {
            if proc.hosted || proc.zombie {
                continue;
            }
            let runnable: Vec<&crate::proc::Lwp> =
                proc.lwps.iter().filter(|l| l.state == LwpState::Runnable).collect();
            if runnable.is_empty() {
                continue;
            }
            let lwp = runnable[(round % runnable.len() as u64) as usize];
            if Self::slice_eligible(proc, lwp) {
                eligible.push((proc.pid, lwp.tid));
            } else {
                serial.push((proc.pid, lwp.tid));
            }
        }
        if eligible.is_empty() && serial.is_empty() {
            return self.idle_jump();
        }

        // Parallel phase: speculate the pure-user slices, sharded by pid.
        let batch = self.quantum.saturating_mul(self.shard_batch.max(1) as u64);
        let shards = self.shards.max(1) as usize;
        let mut results: Vec<Option<(u64, RunExit)>> =
            (0..eligible.len()).map(|_| None).collect();
        {
            let Kernel { procs, objects, .. } = &mut self.kernel;
            let mut want: std::collections::BTreeMap<u32, (Tid, usize)> = eligible
                .iter()
                .enumerate()
                .map(|(i, (p, t))| (p.0, (*t, i)))
                .collect();
            let mut buckets: Vec<Vec<(usize, Tid, &mut crate::proc::Proc)>> =
                (0..shards).map(|_| Vec::new()).collect();
            for (pid, proc) in procs.iter_mut() {
                if let Some((tid, idx)) = want.remove(pid) {
                    buckets[(*pid as usize) % shards].push((idx, tid, proc));
                }
            }
            let objs: &vm::ObjectStore = objects;
            let live: Vec<_> = buckets.into_iter().filter(|b| !b.is_empty()).collect();
            if live.len() <= 1 {
                // One shard's worth of work: run it on this thread. This
                // is also the `shards=1` path, which therefore executes
                // the identical speculate-then-commit algorithm.
                for bucket in live {
                    for (idx, tid, proc) in bucket {
                        results[idx] = spec_slice(proc, tid, objs, batch);
                    }
                }
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = live
                        .into_iter()
                        .map(|bucket| {
                            s.spawn(move || {
                                bucket
                                    .into_iter()
                                    .map(|(idx, tid, proc)| {
                                        (idx, spec_slice(proc, tid, objs, batch))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        match h.join() {
                            Ok(rs) => {
                                for (idx, r) in rs {
                                    results[idx] = r;
                                }
                            }
                            Err(p) => std::panic::resume_unwind(p),
                        }
                    }
                });
            }
        }

        // Commit phase: the seeded interleaving decides the order in
        // which this round's slices take their kernel effects.
        let total = eligible.len() + serial.len();
        for idx in commit_order(total, self.interleave_seed, round) {
            if idx < eligible.len() {
                let (pid, tid) = eligible[idx];
                if let Some((n, exit)) = results[idx].take() {
                    self.commit_spec(pid, tid, n, exit, batch);
                }
            } else {
                let (pid, tid) = serial[idx - eligible.len()];
                self.run_slice(pid, tid);
            }
        }
        StepOutcome::Ran
    }

    /// Applies one speculated slice's outcome at its commit slot: the
    /// retired prefix advances the clock, then the slice's kernel entry
    /// (quantum interrupt, trap, or frozen-store stall) is handled with
    /// full store access. A `Frozen` stall means the speculation stopped
    /// at an instruction needing store mutation (stack growth, COW,
    /// shared-mapping write): the remainder of the batch re-runs
    /// serially from that exact pc.
    fn commit_spec(&mut self, pid: Pid, tid: Tid, n: u64, exit: RunExit, batch: u64) {
        self.cpu.retired += n;
        let alive = self.kernel.procs.get(&pid.0).map(|p| !p.zombie).unwrap_or(false);
        if let RunExit::Event(StepEvent::MemFault(bf)) = &exit {
            if bf.kind == BusFaultKind::Frozen {
                self.kernel.clock += n;
                if alive {
                    self.run_user_burst(pid, tid, batch.saturating_sub(n));
                } else {
                    self.kernel.clock += 1;
                }
                return;
            }
        }
        self.kernel.clock += n.max(1);
        if !alive {
            return;
        }
        match exit {
            RunExit::Quantum => {
                if let Some(l) = self.kernel.proc_mut(pid).ok().and_then(|p| p.lwp_mut(tid)) {
                    l.user_return_pending = true;
                }
            }
            RunExit::Event(ev) => self.handle_trap(pid, tid, ev),
        }
    }

    /// Controller-death injection in the scheduler: rolled once per
    /// step/round, so a *hosted* controlling process can die between any
    /// two rounds — at a barrier, with its targets possibly stopped.
    /// The exit path closes the controller's `/proc` descriptors, whose
    /// run-on-last-close semantics must set every stopped target running
    /// again (the property `tests/kernel_fault.rs` pins).
    fn kfault_controller_tick(&mut self) {
        let rolled = match self.kernel.fault_plan.as_mut() {
            Some(plan) => plan.roll_controller_death(),
            None => return,
        };
        if rolled {
            self.kfault_kill_controller();
        }
    }

    /// Picks a deterministic hosted victim (never init or sched) and
    /// makes it exit quietly, as a crashed controller would.
    fn kfault_kill_controller(&mut self) {
        let victims: Vec<Pid> = self
            .kernel
            .procs
            .iter()
            .filter(|(id, p)| **id > 1 && p.hosted && !p.zombie)
            .map(|(id, _)| Pid(*id))
            .collect();
        if victims.is_empty() {
            return;
        }
        let Some(plan) = self.kernel.fault_plan.as_mut() else { return };
        let victim = victims[plan.pick(victims.len() as u64) as usize];
        plan.stats.controller_deaths += 1;
        self.do_exit(victim, Kernel::status_exited(0));
    }

    // ------------------------------------------------------------------
    // Trap handling
    // ------------------------------------------------------------------

    fn handle_trap(&mut self, pid: Pid, tid: Tid, ev: StepEvent) {
        match ev {
            StepEvent::Syscall => {
                let Ok(proc) = self.kernel.proc_mut(pid) else { return };
                let Some(lwp) = proc.lwp_mut(tid) else { return };
                let nr = lwp.gregs.rv() as u16;
                let insn_pc = lwp.gregs.pc.wrapping_sub(isa::INSN_LEN);
                lwp.syscall = Some(SyscallCtx::new(nr, insn_pc));
                self.syscall_entry(pid, tid);
            }
            StepEvent::Breakpoint => self.take_fault(pid, tid, Fault::Bpt),
            StepEvent::IllegalInsn => self.take_fault(pid, tid, Fault::Ill),
            StepEvent::PrivInsn => self.take_fault(pid, tid, Fault::Priv),
            StepEvent::DivZero => self.take_fault(pid, tid, Fault::IntZDiv),
            StepEvent::FpErr => self.take_fault(pid, tid, Fault::FpErr),
            StepEvent::TraceTrap => {
                if let Ok(p) = self.kernel.proc_mut(pid) {
                    if let Some(l) = p.lwp_mut(tid) {
                        l.gregs.psr &= !PSR_TRACE;
                        l.single_step = false;
                    }
                }
                self.take_fault(pid, tid, Fault::Trace);
            }
            StepEvent::MemFault(bf) => self.mem_fault(pid, tid, bf),
        }
    }

    fn mem_fault(&mut self, pid: Pid, tid: Tid, bf: BusFault) {
        // The sigreturn trampoline: a fetch at the magic kernel address.
        if bf.access == Access::Exec && bf.addr == aout::SIGRETURN_ADDR {
            if self.kernel.sigreturn(pid, tid) {
                if let Ok(p) = self.kernel.proc_mut(pid) {
                    if let Some(l) = p.lwp_mut(tid) {
                        // The restored mask may unblock pending signals.
                        l.user_return_pending = true;
                    }
                }
            } else {
                self.force_kill(pid, SIGSEGV);
            }
            return;
        }
        let fault = match bf.kind {
            BusFaultKind::Unmapped => Fault::Bounds,
            BusFaultKind::Protection => Fault::Access,
            BusFaultKind::Watch => Fault::Watch,
            // A frozen-store stall is a scheduler artefact, consumed by
            // the gang-round commit phase before trap handling; if one
            // ever leaks here, re-running with the full store is the
            // correct (and side-effect-free) recovery.
            BusFaultKind::Frozen => {
                self.run_user_burst(pid, tid, 1);
                return;
            }
        };
        self.take_fault(pid, tid, fault);
    }

    /// The user trap handler: stop on a traced fault, otherwise convert
    /// the fault to its signal. If the signal is ignored or held, the
    /// disposition is forced to default termination (a fault must not
    /// silently re-execute forever).
    fn take_fault(&mut self, pid: Pid, tid: Tid, fault: Fault) {
        let Ok(proc) = self.kernel.proc_mut(pid) else { return };
        if let Some(lwp) = proc.lwp_mut(tid) {
            lwp.last_fault = Some(fault);
        }
        if proc.trace.flt_trace.has(fault.number()) {
            self.kernel.stop_lwp(pid, tid, StopWhy::Faulted(fault));
            return;
        }
        let sig = fault.default_signal();
        let Ok(proc) = self.kernel.proc_mut(pid) else { return };
        let ignored = proc.actions.is_ignored(sig);
        let held = proc.lwp(tid).map(|l| l.held.has(sig)).unwrap_or(false);
        if (ignored || held) && !proc.trace.sig_trace.has(sig) {
            self.force_kill(pid, sig);
            return;
        }
        let _ = self.kernel.post_signal(pid, sig);
        if let Ok(p) = self.kernel.proc_mut(pid) {
            if let Some(l) = p.lwp_mut(tid) {
                l.user_return_pending = true;
            }
        }
    }

    /// Unconditionally terminates a process as if by an uncatchable
    /// signal.
    pub fn force_kill(&mut self, pid: Pid, sig: usize) {
        self.do_exit(pid, Kernel::status_signalled(sig, sig != SIGKILL));
    }

    // ------------------------------------------------------------------
    // System call machinery (Figure 3 stop points)
    // ------------------------------------------------------------------

    /// Entry point after the trap: "a stop on system call entry occurs
    /// before the system has fetched the system call arguments", so a
    /// debugger may rewrite the argument registers before dispatch.
    fn syscall_entry(&mut self, pid: Pid, tid: Tid) {
        let Ok(proc) = self.kernel.proc_mut(pid) else { return };
        let entry_trace = proc.trace.entry_trace;
        let Some(lwp) = proc.lwp_mut(tid) else { return };
        let Some(ctx) = &mut lwp.syscall else { return };
        let nr = ctx.nr;
        if entry_trace.has(nr as usize) && !ctx.entry_stop_taken {
            ctx.entry_stop_taken = true;
            self.kernel.stop_lwp(pid, tid, StopWhy::SyscallEntry(nr));
            return;
        }
        self.dispatch_syscall(pid, tid);
    }

    /// Re-entry for an LWP that is runnable with a system call in flight
    /// (resumed from an entry stop, woken from a sleep, or resumed from
    /// an exit stop).
    fn continue_syscall(&mut self, pid: Pid, tid: Tid) {
        let Some(phase) = self
            .kernel
            .proc(pid)
            .ok()
            .and_then(|p| p.lwp(tid))
            .and_then(|l| l.syscall.as_ref().map(|c| c.phase.clone()))
        else {
            return;
        };
        match phase {
            SysPhase::Entry => {
                let abort = self
                    .kernel
                    .proc(pid)
                    .ok()
                    .and_then(|p| p.lwp(tid))
                    .and_then(|l| l.syscall.as_ref())
                    .map(|c| c.abort)
                    .unwrap_or(false);
                if abort {
                    // "A process that is stopped on system call entry can
                    // be directed to abort execution of the system call
                    // and go directly to system call exit."
                    self.finish_syscall(pid, tid, Err(Errno::EINTR));
                } else {
                    self.dispatch_syscall(pid, tid);
                }
            }
            SysPhase::Sleeping => {
                let interrupted = {
                    let Ok(p) = self.kernel.proc_mut(pid) else { return };
                    let Some(l) = p.lwp_mut(tid) else { return };
                    std::mem::take(&mut l.sleep_interrupted)
                };
                if interrupted {
                    match self.kernel.issig_insleep(pid, tid) {
                        crate::sched::SleepSig::Stop => { /* stopped; retry on resume */ }
                        crate::sched::SleepSig::Interrupt => {
                            self.finish_syscall(pid, tid, Err(Errno::EINTR));
                        }
                        crate::sched::SleepSig::Retry => self.dispatch_syscall(pid, tid),
                    }
                } else {
                    self.dispatch_syscall(pid, tid);
                }
            }
            SysPhase::Exit(_) => self.complete_syscall(pid, tid),
        }
    }

    /// Dispatches (or retries) the call, reading the arguments from the
    /// registers afresh.
    fn dispatch_syscall(&mut self, pid: Pid, tid: Tid) {
        let Some((nr, args)) = ({
            self.kernel.proc(pid).ok().and_then(|p| p.lwp(tid)).and_then(|l| {
                l.syscall.as_ref().map(|c| {
                    let mut args = [0u64; 6];
                    for (i, a) in args.iter_mut().enumerate() {
                        *a = l.gregs.arg(i);
                    }
                    (c.nr, args)
                })
            })
        }) else {
            return;
        };
        match self.do_syscall(pid, tid, nr, args) {
            SysOutcome::Done(res) => self.finish_syscall(pid, tid, res),
            SysOutcome::Sleep(chan) => {
                if let WaitChannel::Ticks(t) = chan {
                    self.kernel.deadlines.arm(t, pid.0);
                }
                if let Ok(p) = self.kernel.proc_mut(pid) {
                    if let Some(l) = p.lwp_mut(tid) {
                        l.state = LwpState::Sleeping { chan, interruptible: true };
                        if let Some(c) = &mut l.syscall {
                            c.phase = SysPhase::Sleeping;
                        }
                    }
                }
                // The classic check before committing to the sleep: a
                // signal (or stop directive) that arrived while we were
                // deciding must not be slept through.
                let pending = self.kernel.signal_pending_for(pid, tid)
                    || self
                        .kernel
                        .proc(pid)
                        .ok()
                        .and_then(|p| p.lwp(tid))
                        .map(|l| l.stop_directive)
                        .unwrap_or(false);
                if pending {
                    match self.kernel.issig_insleep(pid, tid) {
                        crate::sched::SleepSig::Stop => {}
                        crate::sched::SleepSig::Interrupt => {
                            if let Ok(p) = self.kernel.proc_mut(pid) {
                                if let Some(l) = p.lwp_mut(tid) {
                                    l.state = LwpState::Runnable;
                                }
                            }
                            self.finish_syscall(pid, tid, Err(Errno::EINTR));
                        }
                        crate::sched::SleepSig::Retry => {}
                    }
                }
            }
            SysOutcome::Gone => {}
        }
    }

    /// "A stop on system call exit occurs after the system has stored all
    /// return values in the traced process's ... saved registers" — the
    /// result is installed first, then the exit stop is considered, so a
    /// debugger can manufacture whatever return values it wishes.
    fn finish_syscall(&mut self, pid: Pid, tid: Tid, res: SysResult<u64>) {
        let Ok(proc) = self.kernel.proc_mut(pid) else { return };
        let Some(lwp) = proc.lwp_mut(tid) else { return };
        match res {
            Ok(v) => {
                lwp.gregs.set_rv(v);
                lwp.gregs.psr &= !PSR_ERR;
            }
            Err(e) => {
                lwp.gregs.set_rv((-(e as i64)) as u64);
                lwp.gregs.psr |= PSR_ERR;
            }
        }
        let Some(ctx) = &mut lwp.syscall else { return };
        ctx.phase = SysPhase::Exit(res);
        ctx.deadline = None;
        if let Some(saved) = ctx.saved_hold.take() {
            lwp.held = saved;
        }
        let nr = ctx.nr;
        if proc.trace.exit_trace.has(nr as usize) {
            self.kernel.stop_lwp(pid, tid, StopWhy::SyscallExit(nr));
            return;
        }
        self.complete_syscall(pid, tid);
    }

    fn complete_syscall(&mut self, pid: Pid, tid: Tid) {
        if let Ok(p) = self.kernel.proc_mut(pid) {
            if let Some(l) = p.lwp_mut(tid) {
                l.syscall = None;
                l.user_return_pending = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// Creates a hosted process (a controlling program running as Rust
    /// code). It is a child of init unless `parent` says otherwise.
    pub fn spawn_hosted(&mut self, name: &str, cred: Cred) -> Pid {
        self.rec_snapshot_if_due(false);
        let pid = self.kernel.new_proc(Pid(1), Pid(1), Pid(1), cred.clone(), name, true);
        if self.rec_active() {
            let mut res = vec![1u8];
            res.extend_from_slice(&pid.0.to_le_bytes());
            self.rec_commit(Input::SpawnHosted { name: name.to_string(), cred }, &res);
        }
        pid
    }

    /// Creates a process and execs `path` in it. The child's parent is
    /// `parent` (so hosted controllers can `wait` for their targets),
    /// and it inherits `parent`'s credentials.
    pub fn spawn_program(&mut self, parent: Pid, path: &str, argv: &[&str]) -> SysResult<Pid> {
        self.recorded(
            |s| s.spawn_program_inner(parent, path, argv),
            || Input::SpawnProgram {
                parent: parent.0,
                path: path.to_string(),
                argv: argv.iter().map(|a| a.to_string()).collect(),
            },
            |pid, out| out.extend_from_slice(&pid.0.to_le_bytes()),
        )
    }

    fn spawn_program_inner(&mut self, parent: Pid, path: &str, argv: &[&str]) -> SysResult<Pid> {
        if let Some(plan) = self.kernel.fault_plan.as_mut() {
            if plan.roll_eagain_spawn() {
                return Err(Errno::EAGAIN);
            }
        }
        let (cred, pgrp, sid) = {
            let p = self.kernel.proc(parent)?;
            (p.cred.clone(), p.pgrp, p.sid)
        };
        let pid = self.kernel.new_proc(parent, pgrp, sid, cred, path, false);
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        match self.do_exec(pid, path, &argv) {
            Ok(()) => Ok(pid),
            Err(e) => {
                self.kernel.procs.remove(&pid.0);
                self.kernel.table_gen = self.kernel.table_gen.wrapping_add(1);
                Err(e)
            }
        }
    }

    /// Terminates a process: tears down its descriptors and address
    /// space, zombifies it, reparents its children to init, and notifies
    /// the parent.
    pub fn do_exit(&mut self, pid: Pid, status: u16) {
        let Ok(proc) = self.kernel.proc_mut(pid) else { return };
        if proc.zombie {
            return;
        }
        let ppid = proc.ppid;
        // Death by a core-dumping signal: write the post-mortem image
        // while the address space still exists.
        if status & 0x80 != 0 {
            self.write_core(pid, (status & 0x7F) as usize);
        }
        let Ok(proc) = self.kernel.proc_mut(pid) else { return };
        let vfork_parent = proc.vfork_parent.take();
        // Close descriptors.
        let fds: Vec<(usize, FileId)> = proc.fds.iter().collect();
        for (fd, _) in fds {
            let _ = self.close_fd(pid, fd);
        }
        let Kernel { procs, objects, .. } = &mut self.kernel;
        let Some(proc) = procs.get_mut(&pid.0) else {
            unreachable!("pid {pid:?} validated live above")
        };
        proc.aspace.clear(objects);
        for lwp in &mut proc.lwps {
            lwp.state = LwpState::Zombie;
            lwp.syscall = None;
        }
        proc.zombie = true;
        proc.exit_status = status;
        proc.touch();
        // Reparent children to init.
        for other in self.kernel.procs.values_mut() {
            if other.ppid == pid {
                other.ppid = Pid(1);
                other.touch();
            }
        }
        self.kernel.table_gen = self.kernel.table_gen.wrapping_add(1);
        if let Some(vp) = vfork_parent {
            let _ = vp;
            self.kernel.wake_channel(WaitChannel::VforkDone(pid));
        }
        let _ = self.kernel.post_signal(ppid, SIGCHLD);
        self.kernel.wake_channel(WaitChannel::Child(ppid));
        self.kernel.wake_channel(WaitChannel::ProcStop(pid));
        self.kernel.wake_pollers();
        self.kernel.log.push(crate::event::Event::Exit { pid, status });
    }

    /// The fork implementation shared by `fork` and `vfork`.
    pub fn do_fork(&mut self, parent: Pid, tid: Tid, vfork: bool) -> SysOutcome {
        // A vfork retry after the child released us: report the child.
        if let Ok(p) = self.kernel.proc_mut(parent) {
            if let Some(l) = p.lwp_mut(tid) {
                if let Some(ctx) = &mut l.syscall {
                    if let Some(child) = ctx.forked_child.take() {
                        return SysOutcome::Done(Ok(child.0 as u64));
                    }
                }
            }
        }
        if let Some(plan) = self.kernel.fault_plan.as_mut() {
            if plan.roll_eagain_fork() {
                return SysOutcome::Done(Err(Errno::EAGAIN));
            }
        }
        let child_pid = self.kernel.alloc_pid();
        let Kernel { procs, objects, files, clock, .. } = &mut self.kernel;
        let Some(pp) = procs.get_mut(&parent.0) else {
            return SysOutcome::Done(Err(Errno::ESRCH));
        };
        let Some(plwp) = pp.lwps.iter().find(|l| l.tid == tid) else {
            return SysOutcome::Done(Err(Errno::ESRCH));
        };
        let nr = plwp.syscall.as_ref().map(|c| c.nr).unwrap_or(SYS_FORK);
        let insn_pc = plwp.syscall.as_ref().map(|c| c.insn_pc).unwrap_or(0);
        // Child LWP: a copy of the calling LWP's machine state.
        let mut clwp = crate::proc::Lwp::new(Tid(1), plwp.gregs.pc, plwp.gregs.sp());
        clwp.gregs = plwp.gregs.clone();
        clwp.fpregs = plwp.fpregs.clone();
        clwp.held = plwp.held;
        // The child is logically at the exit of fork, returning 0.
        clwp.gregs.set_rv(0);
        clwp.gregs.psr &= !PSR_ERR;
        let mut cctx = SyscallCtx::new(nr, insn_pc);
        cctx.phase = SysPhase::Exit(Ok(0));
        clwp.syscall = Some(cctx);
        // Descriptors: share open files. Pipe end counts track open
        // *file descriptions*, not descriptors — fork shares the
        // description (one `incref`), so the end counts don't move;
        // they drop only when the last reference dies in `close_fd`.
        // Counting per descriptor here would leave `readers`/`writers`
        // permanently above zero after a fork, so a blocked writer
        // would never see the last reader vanish (no `SIGPIPE`) and a
        // reader would never see writer-side EOF.
        let cfds = pp.fds.clone();
        for (_, fid) in cfds.iter() {
            files.incref(fid);
        }
        let trace = if pp.trace.inherit_on_fork {
            pp.trace.inherited()
        } else {
            crate::proc::TraceState::default()
        };
        let child = crate::proc::Proc {
            pid: child_pid,
            ppid: parent,
            pgrp: pp.pgrp,
            sid: pp.sid,
            cred: pp.cred.clone(),
            aspace: pp.aspace.fork_clone(objects),
            fds: cfds,
            lwps: vec![clwp],
            next_tid: 2,
            pending: crate::signal::SigSet::empty(),
            actions: pp.actions.clone(),
            trace,
            fname: pp.fname.clone(),
            psargs: pp.psargs.clone(),
            cwd: pp.cwd.clone(),
            umask: pp.umask,
            nice: pp.nice,
            start_time: *clock,
            cpu_time: 0,
            hosted: pp.hosted,
            zombie: false,
            exit_status: 0,
            exec_gen: 0,
            ptraced: false,
            stop_reported: false,
            alarm_at: None,
            vfork_parent: vfork.then_some(parent),
            pr_gen: 0,
        };
        procs.insert(child_pid.0, child);
        self.kernel.table_gen = self.kernel.table_gen.wrapping_add(1);
        self.kernel.log.push(crate::event::Event::Fork { parent, child: child_pid });
        // The child stops on exit from fork if (and only if) it inherited
        // exit tracing of the call — "both parent and child stop on exit
        // from the fork".
        let child_exit_traced = self
            .kernel
            .proc(child_pid)
            .map(|p| p.trace.exit_trace.has(nr as usize))
            .unwrap_or(false);
        if child_exit_traced {
            self.kernel.stop_lwp(child_pid, Tid(1), StopWhy::SyscallExit(nr));
        } else if let Ok(p) = self.kernel.proc_mut(child_pid) {
            let l = &mut p.lwps[0];
            l.syscall = None;
            l.user_return_pending = true;
        }
        if vfork {
            if let Ok(p) = self.kernel.proc_mut(parent) {
                if let Some(l) = p.lwp_mut(tid) {
                    if let Some(ctx) = &mut l.syscall {
                        ctx.forked_child = Some(child_pid);
                    }
                }
            }
            SysOutcome::Sleep(WaitChannel::VforkDone(child_pid))
        } else {
            SysOutcome::Done(Ok(child_pid.0 as u64))
        }
    }

    /// Checks for a waitable child of `parent`. Returns
    /// `Ok(Some((pid, status)))` when one is ready, `Ok(None)` when the
    /// caller should sleep, `Err(ECHILD)` when there is nothing to wait
    /// for.
    pub fn wait_check(&mut self, parent: Pid) -> SysResult<Option<(Pid, u16)>> {
        let mut have_child = false;
        let mut zombie: Option<(Pid, u16)> = None;
        let mut stopped: Option<(Pid, u16)> = None;
        for proc in self.kernel.procs.values() {
            if proc.ppid != parent || proc.pid == parent {
                continue;
            }
            have_child = true;
            if proc.zombie {
                zombie = Some((proc.pid, proc.exit_status));
                break;
            }
            if proc.ptraced && !proc.stop_reported {
                if let Some(StopWhy::Ptrace(sig)) = proc.rep_lwp().stop_why() {
                    stopped = Some((proc.pid, Kernel::status_stopped(sig)));
                }
                // A traced child stopped on a /proc event is also made
                // visible to the ptrace parent's wait (the mechanisms
                // compete; wait sees stops).
                else if let Some(StopWhy::JobControl(sig)) = proc.rep_lwp().stop_why() {
                    stopped = Some((proc.pid, Kernel::status_stopped(sig)));
                }
            }
        }
        if let Some((pid, status)) = zombie {
            self.kernel.procs.remove(&pid.0);
            self.kernel.table_gen = self.kernel.table_gen.wrapping_add(1);
            return Ok(Some((pid, status)));
        }
        if let Some((pid, status)) = stopped {
            if let Ok(p) = self.kernel.proc_mut(pid) {
                p.stop_reported = true;
            }
            return Ok(Some((pid, status)));
        }
        if !have_child {
            return Err(Errno::ECHILD);
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // exec
    // ------------------------------------------------------------------

    /// Loads and parses the executable at `path`, caching section objects
    /// keyed by `(fs, node)` so all processes running one image share its
    /// pages.
    fn load_image(&mut self, cur: Pid, path: &str) -> SysResult<(u32, NodeId, u16, u32, u32)> {
        let (fsid, node) = self.resolve(cur, path)?;
        let System { kernel, fss, .. } = self;
        let meta = fss[fsid as usize].as_fs().getattr(kernel, node)?;
        if meta.kind != vfs::VnodeKind::Regular {
            return Err(Errno::EACCES);
        }
        let cred = kernel.proc(cur)?.cred.clone();
        if !cred.file_access(meta.mode, meta.uid, meta.gid, 1) {
            return Err(Errno::EACCES);
        }
        if !kernel.images.contains_key(&(fsid, node.0)) {
            let mut content = vec![0u8; meta.size as usize];
            let mut off = 0usize;
            while off < content.len() {
                match fss[fsid as usize].as_fs().read(
                    kernel,
                    cur,
                    node,
                    vfs::OpenToken(0),
                    off as u64,
                    &mut content[off..],
                )? {
                    IoReply::Done(0) => break,
                    IoReply::Done(n) => off += n,
                    IoReply::Block => return Err(Errno::EIO),
                }
            }
            let aout = Aout::from_bytes(&content)?;
            let text_obj = kernel.objects.alloc_file(fsid, node.0, path, &aout.text);
            let data_obj = kernel.objects.alloc_file(fsid, node.0, path, &aout.data);
            kernel.images.insert((fsid, node.0), CachedImage { aout, text_obj, data_obj });
        }
        Ok((fsid, node, meta.mode, meta.uid, meta.gid))
    }

    /// Replaces the process image — `exec(2)`.
    pub fn do_exec(&mut self, pid: Pid, path: &str, argv: &[String]) -> SysResult<()> {
        let (fsid, node, mode, file_uid, file_gid) = self.load_image(pid, path)?;
        // Resolve the libraries the image needs (loading them into the
        // cache) before touching the old address space.
        let lib_names =
            self.kernel.images[&(fsid, node.0)].aout.libs.clone();
        let mut lib_keys = Vec::new();
        for name in &lib_names {
            let lib_path = format!("/lib/{name}");
            let (lfs, lnode, _, _, _) = self.load_image(pid, &lib_path)?;
            lib_keys.push((lfs, lnode.0, name.clone()));
        }
        let Kernel { procs, objects, images, .. } = &mut self.kernel;
        let proc = procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
        // The new image needs fresh anonymous memory (bss, break, stack);
        // under injected pressure the exec fails cleanly with ENOMEM
        // while the old image is still intact.
        if !objects.mem_ok() {
            return Err(Errno::ENOMEM);
        }
        // Point of no return: tear down the old image.
        proc.aspace.clear(objects);
        let Some(img) = images.get(&(fsid, node.0)) else {
            unreachable!("exec image cached above")
        };
        let _ = &img.aout;
        let page_up = |v: u64| v.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let map_image = |aspace: &mut vm::AddressSpace,
                         objects: &mut vm::ObjectStore,
                         img: &CachedImage,
                         text_name: vm::SegName,
                         data_name: vm::SegName|
         -> SysResult<()> {
            let a = &img.aout;
            if !a.text.is_empty() {
                objects.incref(img.text_obj);
                aspace
                    .map_fixed(
                        a.text_base,
                        page_up(a.text.len() as u64),
                        vm::Prot::RX,
                        vm::MapFlags::default(),
                        img.text_obj,
                        0,
                        text_name,
                    )
                    .map_err(|_| Errno::ENOMEM)?;
            }
            if !a.data.is_empty() {
                objects.incref(img.data_obj);
                aspace
                    .map_fixed(
                        a.data_base,
                        page_up(a.data.len() as u64),
                        vm::Prot::RW,
                        vm::MapFlags::default(),
                        img.data_obj,
                        0,
                        data_name,
                    )
                    .map_err(|_| Errno::ENOMEM)?;
            }
            Ok(())
        };
        map_image(&mut proc.aspace, objects, img, vm::SegName::Text, vm::SegName::Data)?;
        // bss + break after data (or text when there is no data).
        let Some(img) = images.get(&(fsid, node.0)) else {
            unreachable!("exec image cached above")
        };
        let aout_entry = img.aout.entry;
        let data_end = if img.aout.data.is_empty() {
            img.aout.text_base + page_up(img.aout.text.len() as u64)
        } else {
            img.aout.data_base + page_up(img.aout.data.len() as u64)
        };
        let bss_len = page_up(img.aout.bss_len.max(PAGE_SIZE));
        let bss_obj = objects.alloc_anon(bss_len);
        proc.aspace
            .map_fixed(
                data_end,
                bss_len,
                vm::Prot::RW,
                vm::MapFlags::default(),
                bss_obj,
                0,
                vm::SegName::Bss,
            )
            .map_err(|_| Errno::ENOMEM)?;
        let brk_base = data_end + bss_len;
        let brk_obj = objects.alloc_anon(PAGE_SIZE);
        proc.aspace
            .map_fixed(
                brk_base,
                PAGE_SIZE,
                vm::Prot::RW,
                vm::MapFlags { is_break: true, ..Default::default() },
                brk_obj,
                0,
                vm::SegName::Break,
            )
            .map_err(|_| Errno::ENOMEM)?;
        // Libraries.
        for (lfs, lnode, name) in &lib_keys {
            let Some(limg) = images.get(&(*lfs, *lnode)) else {
                unreachable!("library image cached above")
            };
            map_image(
                &mut proc.aspace,
                objects,
                limg,
                vm::SegName::LibText(name.clone()),
                vm::SegName::LibData(name.clone()),
            )?;
        }
        // Stack, with the argument vector at the top.
        let stack_obj = objects.alloc_anon(aout::STACK_INIT);
        proc.aspace
            .map_fixed(
                aout::STACK_TOP - aout::STACK_INIT,
                aout::STACK_INIT,
                vm::Prot::RW,
                vm::MapFlags { grows_down: true, ..Default::default() },
                stack_obj,
                0,
                vm::SegName::Stack,
            )
            .map_err(|_| Errno::ENOMEM)?;
        proc.aspace.stack_limit = aout::STACK_LIMIT;
        // Argument image: strings then a pointer array.
        let mut straddr = Vec::with_capacity(argv.len());
        let strings_len: u64 = argv.iter().map(|a| a.len() as u64 + 1).sum();
        let ptrs_len = (argv.len() as u64 + 1) * 8;
        let total = (strings_len + ptrs_len + 15) & !15;
        let sp = aout::STACK_TOP - total;
        let argv_addr = sp;
        let mut cursor = sp + ptrs_len;
        let mut image = Vec::new();
        for a in argv {
            straddr.push(cursor);
            cursor += a.len() as u64 + 1;
        }
        for a in &straddr {
            image.extend_from_slice(&a.to_le_bytes());
        }
        image.extend_from_slice(&0u64.to_le_bytes());
        for a in argv {
            image.extend_from_slice(a.as_bytes());
            image.push(0);
        }
        proc.aspace.kernel_write(objects, sp, &image).map_err(|_| Errno::ENOMEM)?;
        // Reset the (single surviving) LWP.
        let keep_tid = proc.lwps[0].tid;
        let held = proc.lwps[0].held;
        proc.lwps.truncate(1);
        let lwp = &mut proc.lwps[0];
        let old_syscall = lwp.syscall.clone();
        *lwp = crate::proc::Lwp::new(keep_tid, aout_entry, sp);
        lwp.held = held;
        lwp.syscall = old_syscall;
        lwp.gregs.set_arg(0, argv.len() as u64);
        lwp.gregs.set_arg(1, argv_addr);
        proc.actions.reset_caught();
        proc.fname = path.rsplit('/').next().unwrap_or(path).to_string();
        proc.psargs = argv.join(" ");
        if proc.psargs.is_empty() {
            proc.psargs = proc.fname.clone();
        }
        // Set-id handling.
        let mut setid = false;
        if mode & vfs::node::MODE_SETUID != 0 {
            proc.cred.euid = file_uid;
            proc.cred.suid = file_uid;
            setid = true;
        }
        if mode & vfs::node::MODE_SETGID != 0 {
            proc.cred.egid = file_gid;
            proc.cred.sgid = file_gid;
            setid = true;
        }
        let writers = proc.trace.writers;
        if setid {
            proc.exec_gen += 1;
        }
        let vfork_parent = proc.vfork_parent.take();
        proc.touch();
        self.kernel.log.push(crate::event::Event::Exec {
            pid,
            path: path.to_string(),
            setid,
        });
        if setid && writers > 0 {
            // "When the set-id exec occurs, the traced process is
            // directed to stop and its run-on-last-close flag is set."
            if let Ok(p) = self.kernel.proc_mut(pid) {
                p.trace.run_on_last_close = true;
            }
            let _ = self.kernel.direct_stop(pid);
        }
        if vfork_parent.is_some() {
            self.kernel.wake_channel(WaitChannel::VforkDone(pid));
        }
        self.kernel.wake_pollers();
        Ok(())
    }

    // ------------------------------------------------------------------
    // The file layer
    // ------------------------------------------------------------------

    /// Resolves an absolute or cwd-relative path for process `cur` to a
    /// `(file system, node)` pair.
    pub fn resolve(&mut self, cur: Pid, path: &str) -> SysResult<(u32, NodeId)> {
        let abs = if path.starts_with('/') {
            path.to_string()
        } else {
            let cwd = self.kernel.proc(cur)?.cwd.clone();
            format!("{}/{}", if cwd == "/" { "" } else { &cwd }, path)
        };
        let (fsid, parts) = self.mounts.resolve(&abs).ok_or(Errno::ENOENT)?;
        let System { kernel, fss, .. } = self;
        let fs = fss[fsid as usize].as_fs();
        let mut node = fs.root();
        for part in &parts {
            node = fs.lookup(kernel, cur, node, part)?;
        }
        Ok((fsid, node))
    }

    /// Splits a path into its parent directory node and final component.
    pub(crate) fn resolve_parent(
        &mut self,
        cur: Pid,
        path: &str,
    ) -> SysResult<(u32, NodeId, String)> {
        let abs = if path.starts_with('/') {
            path.to_string()
        } else {
            let cwd = self.kernel.proc(cur)?.cwd.clone();
            format!("{}/{}", if cwd == "/" { "" } else { &cwd }, path)
        };
        let (fsid, parts) = self.mounts.resolve(&abs).ok_or(Errno::ENOENT)?;
        let Some((name, dirs)) = parts.split_last() else {
            return Err(Errno::EINVAL);
        };
        let System { kernel, fss, .. } = self;
        let fs = fss[fsid as usize].as_fs();
        let mut node = fs.root();
        for part in dirs {
            node = fs.lookup(kernel, cur, node, part)?;
        }
        Ok((fsid, node, name.clone()))
    }

    /// Opens `path` for process `cur`, honouring `creat`/`trunc`.
    pub fn open_path(&mut self, cur: Pid, path: &str, flags: OFlags) -> SysResult<usize> {
        let cred = self.kernel.proc(cur)?.cred.clone();
        let resolved = self.resolve(cur, path);
        let (fsid, node) = match resolved {
            Ok(hit) => hit,
            Err(Errno::ENOENT) if flags.creat => {
                let (fsid, dir, name) = self.resolve_parent(cur, path)?;
                let umask = self.kernel.proc(cur)?.umask;
                let System { kernel, fss, .. } = self;
                let node = fss[fsid as usize].as_fs().create(
                    kernel,
                    cur,
                    dir,
                    &name,
                    0o666 & !umask,
                    &cred,
                )?;
                (fsid, node)
            }
            Err(e) => return Err(e),
        };
        let System { kernel, fss, .. } = self;
        let token = fss[fsid as usize].as_fs().open(kernel, cur, node, flags, &cred)?;
        let fid = kernel.files.alloc(FileKind::Vnode { fs: fsid, node, token }, flags);
        let proc = kernel.proc_mut(cur)?;
        match proc.fds.alloc(fid) {
            Some(fd) => Ok(fd),
            None => {
                // Roll back.
                let dead = kernel.files.decref(fid);
                if let Some(f) = dead {
                    if let FileKind::Vnode { fs, node, token } = f.kind {
                        fss[fs as usize].as_fs().close(kernel, cur, node, token, flags);
                    }
                }
                Err(Errno::EMFILE)
            }
        }
    }

    /// Closes descriptor `fd` of process `cur`.
    pub fn close_fd(&mut self, cur: Pid, fd: usize) -> SysResult<()> {
        let fid = {
            let proc = self.kernel.proc_mut(cur)?;
            proc.fds.remove(fd).ok_or(Errno::EBADF)?
        };
        if let Some(dead) = self.kernel.files.decref(fid) {
            match dead.kind {
                FileKind::Vnode { fs, node, token } => {
                    let System { kernel, fss, .. } = self;
                    fss[fs as usize].as_fs().close(kernel, cur, node, token, dead.flags);
                }
                FileKind::PipeR(p) => {
                    self.kernel.pipes.drop_end(p, false);
                    self.kernel.wake_channel(WaitChannel::PipeW(p));
                    self.kernel.wake_pollers();
                }
                FileKind::PipeW(p) => {
                    self.kernel.pipes.drop_end(p, true);
                    self.kernel.wake_channel(WaitChannel::PipeR(p));
                    self.kernel.wake_pollers();
                }
            }
        }
        Ok(())
    }

    fn file_of(&self, cur: Pid, fd: usize) -> SysResult<FileId> {
        self.kernel.proc(cur)?.fds.get(fd).ok_or(Errno::EBADF)
    }

    /// Reads from a descriptor into a host buffer at the current offset.
    pub fn read_fd(&mut self, cur: Pid, fd: usize, buf: &mut [u8]) -> SysResult<FlIo> {
        let fid = self.file_of(cur, fd)?;
        let file = self.kernel.files.get(fid).ok_or(Errno::EBADF)?.clone();
        match file.kind {
            FileKind::Vnode { fs, node, token } => {
                if !file.flags.read {
                    return Err(Errno::EBADF);
                }
                let System { kernel, fss, .. } = self;
                match fss[fs as usize].as_fs().read(kernel, cur, node, token, file.offset, buf)? {
                    IoReply::Done(n) => {
                        if let Some(f) = self.kernel.files.get_mut(fid) {
                            f.offset += n as u64;
                        }
                        Ok(FlIo::Done(n))
                    }
                    IoReply::Block => Ok(FlIo::Block(WaitChannel::PollWait)),
                }
            }
            FileKind::PipeR(p) => {
                let pipe = self.kernel.pipes.get_mut(p).ok_or(Errno::EBADF)?;
                if pipe.buf.is_empty() {
                    if pipe.writers == 0 {
                        return Ok(FlIo::Done(0));
                    }
                    return Ok(FlIo::Block(WaitChannel::PipeR(p)));
                }
                let n = buf.len().min(pipe.buf.len());
                for b in buf.iter_mut().take(n) {
                    let Some(byte) = pipe.buf.pop_front() else { break };
                    *b = byte;
                }
                self.kernel.wake_channel(WaitChannel::PipeW(p));
                self.kernel.wake_pollers();
                Ok(FlIo::Done(n))
            }
            FileKind::PipeW(_) => Err(Errno::EBADF),
        }
    }

    /// Writes a host buffer to a descriptor at the current offset.
    pub fn write_fd(&mut self, cur: Pid, fd: usize, data: &[u8]) -> SysResult<FlIo> {
        let fid = self.file_of(cur, fd)?;
        let file = self.kernel.files.get(fid).ok_or(Errno::EBADF)?.clone();
        match file.kind {
            FileKind::Vnode { fs, node, token } => {
                if !file.flags.write {
                    return Err(Errno::EBADF);
                }
                let System { kernel, fss, .. } = self;
                match fss[fs as usize].as_fs().write(kernel, cur, node, token, file.offset, data)?
                {
                    IoReply::Done(n) => {
                        if let Some(f) = self.kernel.files.get_mut(fid) {
                            f.offset += n as u64;
                        }
                        Ok(FlIo::Done(n))
                    }
                    IoReply::Block => Ok(FlIo::Block(WaitChannel::PollWait)),
                }
            }
            FileKind::PipeW(p) => {
                let pipe = self.kernel.pipes.get_mut(p).ok_or(Errno::EBADF)?;
                if pipe.readers == 0 {
                    let _ = self.kernel.post_signal(cur, SIGPIPE);
                    return Err(Errno::EPIPE);
                }
                let space = PIPE_CAP.saturating_sub(pipe.buf.len());
                if space == 0 {
                    return Ok(FlIo::Block(WaitChannel::PipeW(p)));
                }
                let n = data.len().min(space);
                pipe.buf.extend(&data[..n]);
                self.kernel.wake_channel(WaitChannel::PipeR(p));
                self.kernel.wake_pollers();
                Ok(FlIo::Done(n))
            }
            FileKind::PipeR(_) => Err(Errno::EBADF),
        }
    }

    /// Repositions a descriptor's offset; whence 0=set, 1=cur, 2=end.
    pub fn lseek_fd(&mut self, cur: Pid, fd: usize, off: i64, whence: u32) -> SysResult<u64> {
        let fid = self.file_of(cur, fd)?;
        let file = self.kernel.files.get(fid).ok_or(Errno::EBADF)?.clone();
        let FileKind::Vnode { fs, node, .. } = file.kind else {
            return Err(Errno::ESPIPE);
        };
        let base = match whence {
            0 => 0i64,
            1 => file.offset as i64,
            2 => {
                let System { kernel, fss, .. } = self;
                fss[fs as usize].as_fs().getattr(kernel, node)?.size as i64
            }
            _ => return Err(Errno::EINVAL),
        };
        let new = base.checked_add(off).ok_or(Errno::EINVAL)?;
        if new < 0 {
            return Err(Errno::EINVAL);
        }
        if let Some(f) = self.kernel.files.get_mut(fid) {
            f.offset = new as u64;
        }
        Ok(new as u64)
    }

    /// Performs an ioctl on a descriptor.
    pub fn ioctl_fd(
        &mut self,
        cur: Pid,
        fd: usize,
        req: u32,
        arg: &[u8],
    ) -> SysResult<IoctlReply> {
        let fid = self.file_of(cur, fd)?;
        let file = self.kernel.files.get(fid).ok_or(Errno::EBADF)?.clone();
        let FileKind::Vnode { fs, node, token } = file.kind else {
            return Err(Errno::ENOTTY);
        };
        let System { kernel, fss, .. } = self;
        fss[fs as usize].as_fs().ioctl(kernel, cur, node, token, req, arg)
    }

    /// Poll status of a descriptor. Instantaneous — never blocks — but
    /// still a recorded input: a `/proc` poll over a remote mount can
    /// advance wire-session state, so replay must re-issue it.
    pub fn poll_fd(&mut self, cur: Pid, fd: usize) -> SysResult<PollStatus> {
        self.recorded(
            |s| s.poll_fd_inner(cur, fd),
            || Input::HostPollFd { pid: cur.0, fd: fd as u32 },
            |st, out| record::poll_bytes(std::slice::from_ref(st), out),
        )
    }

    fn poll_fd_inner(&mut self, cur: Pid, fd: usize) -> SysResult<PollStatus> {
        let fid = self.file_of(cur, fd)?;
        let file = self.kernel.files.get(fid).ok_or(Errno::EBADF)?.clone();
        match file.kind {
            FileKind::Vnode { fs, node, token } => {
                let System { kernel, fss, .. } = self;
                fss[fs as usize].as_fs().poll(kernel, node, token)
            }
            FileKind::PipeR(p) => {
                let pipe = self.kernel.pipes.get(p).ok_or(Errno::EBADF)?;
                Ok(PollStatus {
                    readable: !pipe.buf.is_empty() || pipe.writers == 0,
                    writable: false,
                    hangup: pipe.writers == 0,
                })
            }
            FileKind::PipeW(p) => {
                let pipe = self.kernel.pipes.get(p).ok_or(Errno::EBADF)?;
                Ok(PollStatus {
                    readable: false,
                    writable: pipe.buf.len() < PIPE_CAP && pipe.readers > 0,
                    hangup: pipe.readers == 0,
                })
            }
        }
    }

    /// Duplicates a descriptor. The new descriptor shares the open file
    /// description, so pipe end counts (which track descriptions, not
    /// descriptors) are untouched.
    pub fn dup_fd(&mut self, cur: Pid, fd: usize) -> SysResult<usize> {
        let fid = self.file_of(cur, fd)?;
        if self.kernel.files.get(fid).is_none() {
            return Err(Errno::EBADF);
        }
        self.kernel.files.incref(fid);
        let proc = self.kernel.proc_mut(cur)?;
        match proc.fds.alloc(fid) {
            Some(nfd) => Ok(nfd),
            None => {
                self.kernel.files.decref(fid);
                Err(Errno::EMFILE)
            }
        }
    }

    /// Creates a pipe; returns (read fd, write fd).
    pub fn make_pipe(&mut self, cur: Pid) -> SysResult<(usize, usize)> {
        let p = self.kernel.pipes.alloc();
        let rfid = self.kernel.files.alloc(FileKind::PipeR(p), OFlags::rdonly());
        let wfid = self.kernel.files.alloc(FileKind::PipeW(p), OFlags::wronly());
        let proc = self.kernel.proc_mut(cur)?;
        let rfd = proc.fds.alloc(rfid).ok_or(Errno::EMFILE)?;
        let wfd = match proc.fds.alloc(wfid) {
            Some(fd) => fd,
            None => {
                proc.fds.remove(rfd);
                self.kernel.files.decref(rfid);
                self.kernel.files.decref(wfid);
                self.kernel.pipes.drop_end(p, false);
                self.kernel.pipes.drop_end(p, true);
                return Err(Errno::EMFILE);
            }
        };
        Ok((rfd, wfd))
    }

    /// `stat` by path.
    pub fn stat_path(&mut self, cur: Pid, path: &str) -> SysResult<Metadata> {
        let (fsid, node) = self.resolve(cur, path)?;
        let System { kernel, fss, .. } = self;
        fss[fsid as usize].as_fs().getattr(kernel, node)
    }

    /// Directory entries of `path`.
    pub fn list_dir(&mut self, cur: Pid, path: &str) -> SysResult<Vec<DirEntry>> {
        let (fsid, node) = self.resolve(cur, path)?;
        let System { kernel, fss, .. } = self;
        fss[fsid as usize].as_fs().readdir(kernel, cur, node)
    }

    // ------------------------------------------------------------------
    // Host-level (controlling-program) API
    // ------------------------------------------------------------------

    /// Installs a kernel fault schedule: the plan itself on the kernel
    /// and, derived from the same seed, a [`vm::MemPressure`] source on
    /// the object store so vm allocation sites fail too. Passing
    /// all-zero rates installs a plan that consumes no generator state —
    /// byte-for-byte identical to no plan at all. This is the single
    /// installation site behind [`SimConfig::kernel_faults`].
    fn apply_fault_plan(&mut self, seed: u64, rates: crate::kfault::KernelFaultRates, targeted: bool) {
        self.kernel.objects.set_pressure(seed ^ 0xA5A5_5A5A_C3C3_3C3C, rates.enomem);
        let plan = crate::kfault::KernelFaultPlan::new(seed, rates);
        self.kernel.fault_plan =
            Some(if targeted { plan.with_targeted_death(true) } else { plan });
    }

    /// The injection counters (`PIOCKFAULTSTATS` answers with these),
    /// with the object store's pressure denials merged in. All zero when
    /// no plan is installed.
    pub fn kfault_stats(&self) -> crate::kfault::KFaultStats {
        let mut st =
            self.kernel.fault_plan.as_ref().map(|p| p.stats).unwrap_or_default();
        st.enomem_vm = self.kernel.objects.pressure_denials();
        st
    }

    /// Asynchronous-death injection: called at the top of every
    /// host-level controller operation, so a target can vanish *between*
    /// any two controller ops. Picks a deterministic victim among live,
    /// non-hosted, non-init simulated processes and either SIGKILLs it
    /// or makes it exit quietly.
    fn kfault_maybe_kill(&mut self) {
        let (rolled, targeted) = match self.kernel.fault_plan.as_mut() {
            Some(plan) => (plan.roll_death(), plan.targeted_death),
            None => return,
        };
        if rolled {
            self.kfault_kill_one(targeted, false);
        }
    }

    /// Mid-op death injection: called before every scheduler step taken
    /// *inside* a single blocking host op's pump loop, so a target can
    /// vanish between two steps of one `PIOCWSTOP`/`PCWSTOP`/host read —
    /// after the op has latched its target but before it completes. Off
    /// unless the plan's `mid_op` rate is set (a per-step roll compounds
    /// over hundreds of steps, so it is opt-in, not part of `uniform`).
    fn kfault_pump_tick(&mut self) {
        let (rolled, targeted) = match self.kernel.fault_plan.as_mut() {
            Some(plan) => (plan.roll_death_mid_op(), plan.targeted_death),
            None => return,
        };
        if rolled {
            self.kfault_kill_one(targeted, true);
        }
    }

    /// Picks a deterministic victim (shared by the per-op and mid-op
    /// death sites) and kills it — `SIGKILL` or a quiet exit, one
    /// generator bit deciding which.
    fn kfault_kill_one(&mut self, targeted: bool, mid_op: bool) {
        let victims: Vec<Pid> = self
            .kernel
            .procs
            .iter()
            .filter(|(id, p)| {
                **id > 1
                    && !p.hosted
                    && !p.zombie
                    && (!targeted || p.trace.writers > 0)
            })
            .map(|(id, _)| Pid(*id))
            .collect();
        if victims.is_empty() {
            return;
        }
        let Some(plan) = self.kernel.fault_plan.as_mut() else { return };
        let victim = victims[plan.pick(victims.len() as u64) as usize];
        let hard = plan.next_bit();
        if mid_op {
            plan.stats.deaths_mid_op += 1;
        } else {
            plan.stats.deaths += 1;
        }
        if hard {
            self.force_kill(victim, SIGKILL);
        } else {
            self.do_exit(victim, Kernel::status_exited(0));
        }
    }

    /// Rolls the EINTR site once (used the first time a blocking host
    /// op would actually block).
    fn kfault_roll_eintr(&mut self) -> bool {
        self.kernel.fault_plan.as_mut().map(|p| p.roll_eintr()).unwrap_or(false)
    }

    /// Pumps the scheduler until `f` produces a value, failing with
    /// `EDEADLK` if the simulation goes fully idle (nothing can ever
    /// complete the call) or the pump budget runs out.
    pub fn pump_until<T>(
        &mut self,
        mut f: impl FnMut(&mut System) -> SysResult<Option<T>>,
    ) -> SysResult<T> {
        let mut idle = 0u32;
        for _ in 0..self.pump_limit {
            if let Some(v) = f(self)? {
                return Ok(v);
            }
            self.kfault_pump_tick();
            if self.step() {
                idle = 0;
            } else {
                idle += 1;
                if idle > 2 {
                    return Err(Errno::EDEADLK);
                }
            }
        }
        Err(Errno::EDEADLK)
    }

    /// Host `open(2)`.
    pub fn host_open(&mut self, cur: Pid, path: &str, flags: OFlags) -> SysResult<usize> {
        self.recorded(
            |s| s.open_path(cur, path, flags),
            || Input::HostOpen { pid: cur.0, path: path.to_string(), flags },
            |fd, out| out.extend_from_slice(&(*fd as u64).to_le_bytes()),
        )
    }

    /// Host `close(2)`.
    pub fn host_close(&mut self, cur: Pid, fd: usize) -> SysResult<()> {
        self.recorded(
            |s| s.close_fd(cur, fd),
            || Input::HostClose { pid: cur.0, fd: fd as u32 },
            |(), _| {},
        )
    }

    /// Host `read(2)`: blocks (pumping the scheduler) until data arrives
    /// or the pump budget is exhausted.
    pub fn host_read(&mut self, cur: Pid, fd: usize, buf: &mut [u8]) -> SysResult<usize> {
        if !self.rec_active() {
            return self.host_read_inner(cur, fd, buf);
        }
        self.rec_snapshot_if_due(false);
        self.rec_suppress(true);
        let r = self.host_read_inner(cur, fd, buf);
        self.rec_suppress(false);
        let res = record::result_bytes(&r, |n, out| {
            out.extend_from_slice(&(*n as u64).to_le_bytes());
            out.extend_from_slice(&buf[..*n]);
        });
        self.rec_commit(
            Input::HostRead { pid: cur.0, fd: fd as u32, len: buf.len() as u32 },
            &res,
        );
        r
    }

    fn host_read_inner(&mut self, cur: Pid, fd: usize, buf: &mut [u8]) -> SysResult<usize> {
        self.kfault_maybe_kill();
        let mut intr_pending = true;
        for _ in 0..self.pump_limit {
            match self.read_fd(cur, fd, buf)? {
                FlIo::Done(n) => return Ok(n),
                FlIo::Block(_) => {
                    // The sleep is interruptible; the fault plan may cut
                    // it short the first time we would actually block.
                    if intr_pending {
                        intr_pending = false;
                        if self.kfault_roll_eintr() {
                            return Err(Errno::EINTR);
                        }
                    }
                    self.kfault_pump_tick();
                    if !self.step() {
                        return Err(Errno::EDEADLK);
                    }
                }
            }
        }
        Err(Errno::EDEADLK)
    }

    /// Host `write(2)`: blocks (pumping) while the file would block, up
    /// to the pump budget.
    pub fn host_write(&mut self, cur: Pid, fd: usize, data: &[u8]) -> SysResult<usize> {
        self.recorded(
            |s| s.host_write_inner(cur, fd, data),
            || Input::HostWrite { pid: cur.0, fd: fd as u32, data: data.to_vec() },
            |n, out| out.extend_from_slice(&(*n as u64).to_le_bytes()),
        )
    }

    fn host_write_inner(&mut self, cur: Pid, fd: usize, data: &[u8]) -> SysResult<usize> {
        self.kfault_maybe_kill();
        let mut written = 0;
        let mut budget = self.pump_limit;
        let mut intr_pending = true;
        while written < data.len() {
            match self.write_fd(cur, fd, &data[written..])? {
                FlIo::Done(0) => break,
                FlIo::Done(n) => written += n,
                FlIo::Block(_) => {
                    // Blocking here covers the hier face's PCWSTOP ctl
                    // batches; per POSIX, EINTR only if nothing has been
                    // written yet, else the partial count is returned.
                    if intr_pending {
                        intr_pending = false;
                        if self.kfault_roll_eintr() {
                            if written == 0 {
                                return Err(Errno::EINTR);
                            }
                            return Ok(written);
                        }
                    }
                    budget = budget.saturating_sub(1);
                    self.kfault_pump_tick();
                    if budget == 0 || !self.step() {
                        return Err(Errno::EDEADLK);
                    }
                }
            }
        }
        Ok(written)
    }

    /// Host `lseek(2)`.
    pub fn host_lseek(&mut self, cur: Pid, fd: usize, off: i64, whence: u32) -> SysResult<u64> {
        self.recorded(
            |s| {
                s.kfault_maybe_kill();
                s.lseek_fd(cur, fd, off, whence)
            },
            || Input::HostLseek { pid: cur.0, fd: fd as u32, off, whence },
            |pos, out| out.extend_from_slice(&pos.to_le_bytes()),
        )
    }

    /// Host `ioctl(2)`: blocks (pumping) while the operation would block
    /// (`PIOCWSTOP`).
    pub fn host_ioctl(&mut self, cur: Pid, fd: usize, req: u32, arg: &[u8]) -> SysResult<Vec<u8>> {
        self.recorded(
            |s| s.host_ioctl_inner(cur, fd, req, arg),
            || Input::HostIoctl {
                pid: cur.0,
                fd: fd as u32,
                req,
                arg: arg.to_vec(),
            },
            |bytes, out| {
                out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                out.extend_from_slice(bytes);
            },
        )
    }

    fn host_ioctl_inner(&mut self, cur: Pid, fd: usize, req: u32, arg: &[u8]) -> SysResult<Vec<u8>> {
        self.kfault_maybe_kill();
        let arg = arg.to_vec();
        let mut intr_pending = true;
        self.pump_until(move |s| match s.ioctl_fd(cur, fd, req, &arg)? {
            IoctlReply::Done(out) => Ok(Some(out)),
            IoctlReply::Block => {
                // First time the wait (PIOCWSTOP) actually blocks, the
                // fault plan may interrupt the sleep.
                if intr_pending {
                    intr_pending = false;
                    if s.kfault_roll_eintr() {
                        return Err(Errno::EINTR);
                    }
                }
                Ok(None)
            }
        })
    }

    /// Host `kill(2)` with permission checks.
    pub fn host_kill(&mut self, cur: Pid, target: Pid, sig: usize) -> SysResult<()> {
        self.recorded(
            |s| s.host_kill_inner(cur, target, sig),
            || Input::HostKill { pid: cur.0, target: target.0, sig: sig as u32 },
            |(), _| {},
        )
    }

    fn host_kill_inner(&mut self, cur: Pid, target: Pid, sig: usize) -> SysResult<()> {
        let sender = self.kernel.proc(cur)?.cred.clone();
        let tcred = self.kernel.proc(target)?.cred.clone();
        if !Kernel::kill_permitted(&sender, &tcred) {
            return Err(Errno::EPERM);
        }
        if sig == 0 {
            return Ok(());
        }
        self.kernel.post_signal(target, sig)
    }

    /// Host `wait(2)`: blocks until a child changes state.
    pub fn host_wait(&mut self, cur: Pid) -> SysResult<(Pid, u16)> {
        self.recorded(
            |s| s.pump_until(move |s| s.wait_check(cur)),
            || Input::HostWait { pid: cur.0 },
            |(pid, status), out| {
                out.extend_from_slice(&pid.0.to_le_bytes());
                out.extend_from_slice(&status.to_le_bytes());
            },
        )
    }

    /// Host `poll(2)` over descriptors: blocks until at least one is
    /// ready; returns per-descriptor statuses.
    pub fn host_poll(&mut self, cur: Pid, fds: &[usize]) -> SysResult<Vec<PollStatus>> {
        self.recorded(
            |s| s.host_poll_inner(cur, fds),
            || Input::HostPoll { pid: cur.0, fds: fds.iter().map(|&f| f as u32).collect() },
            |sts, out| record::poll_bytes(sts, out),
        )
    }

    fn host_poll_inner(&mut self, cur: Pid, fds: &[usize]) -> SysResult<Vec<PollStatus>> {
        let fds = fds.to_vec();
        self.pump_until(move |s| {
            let mut out = Vec::with_capacity(fds.len());
            let mut any = false;
            for &fd in &fds {
                let st = s.poll_fd(cur, fd)?;
                any |= st.readable || st.writable || st.hangup;
                out.push(st);
            }
            Ok(if any { Some(out) } else { None })
        })
    }

    /// Host `poll(2)` waiting for input-readiness only (`POLLIN |
    /// POLLHUP`): blocks until at least one descriptor has an event
    /// available or is dead, ignoring writability. `/proc` files of
    /// live processes are always writable, so this is the mode a
    /// debugger uses to wait on N traced processes with one call.
    pub fn host_poll_in(&mut self, cur: Pid, fds: &[usize]) -> SysResult<Vec<PollStatus>> {
        self.recorded(
            |s| s.host_poll_in_inner(cur, fds),
            || Input::HostPollIn { pid: cur.0, fds: fds.iter().map(|&f| f as u32).collect() },
            |sts, out| record::poll_bytes(sts, out),
        )
    }

    fn host_poll_in_inner(&mut self, cur: Pid, fds: &[usize]) -> SysResult<Vec<PollStatus>> {
        self.kfault_maybe_kill();
        if let Some(plan) = self.kernel.fault_plan.as_mut() {
            if plan.roll_eintr() {
                return Err(Errno::EINTR);
            }
            if plan.roll_spurious_wakeup() {
                // Return the instantaneous statuses without waiting:
                // possibly nothing is ready, as after a signal-restarted
                // poll. Callers must re-poll, not trust the wakeup.
                let mut out = Vec::with_capacity(fds.len());
                for &fd in fds {
                    out.push(self.poll_fd(cur, fd)?);
                }
                return Ok(out);
            }
        }
        let fds = fds.to_vec();
        self.pump_until(move |s| {
            let mut out = Vec::with_capacity(fds.len());
            let mut any = false;
            for &fd in &fds {
                let st = s.poll_fd(cur, fd)?;
                any |= st.ready();
                out.push(st);
            }
            Ok(if any { Some(out) } else { None })
        })
    }
}

/// The parallel half of a gang round: runs one eligible LWP for up to
/// `batch` instructions against a frozen store view on whichever host
/// thread owns its shard. Eligibility guarantees the issig() gate would
/// answer `Run` without mutating anything, so the user-return latch is
/// cleared here, and every mutation the slice makes — registers,
/// private overlay pages, per-LWP caches, instruction counts — is
/// process-local. The slice's kernel effect (its [`RunExit`]) is
/// returned for the serial commit phase to apply.
fn spec_slice(
    proc: &mut crate::proc::Proc,
    tid: Tid,
    objs: &vm::ObjectStore,
    batch: u64,
) -> Option<(u64, RunExit)> {
    proc.touch();
    let crate::proc::Proc { aspace, lwps, cpu_time, .. } = proc;
    let lwp = lwps.iter_mut().find(|l| l.tid == tid)?;
    lwp.user_return_pending = false;
    let crate::proc::Lwp { gregs, fpregs, icache, sblocks, insns, .. } = lwp;
    let mut bus = ProcBus { asp: aspace, store: StoreRef::Frozen(objs), icache, sblocks };
    let mut cpu = Cpu::new();
    let (n, exit) = cpu.run(gregs, fpregs, &mut bus, batch.max(1));
    *cpu_time += n;
    *insns += n;
    Some((n, exit))
}

/// The commit permutation for one gang round: a Fisher–Yates shuffle
/// driven by an xorshift64 stream seeded from `(seed, round)`. Pure —
/// the interleaving schedule is a function of the recorded config and
/// the round counter, which is what makes it replayable and identical
/// at every shard count.
fn commit_order(len: usize, seed: u64, round: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut s = seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    if s == 0 {
        s = 0x2545_F491_4F6C_DD1D;
    }
    for i in (1..len).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    order
}

/// The object store as a bus sees it: the legacy engine and the serial
/// commit phase hold it mutably (COW materialisation, stack growth and
/// shared writes all work in place), while speculative gang-round slices
/// hold a frozen shared view — any access that would have to mutate the
/// store aborts the slice with [`BusFaultKind::Frozen`] instead.
enum StoreRef<'a> {
    /// Full mutable access (serial execution).
    Full(&'a mut vm::ObjectStore),
    /// Frozen view (speculative execution); store-mutating accesses abort.
    Frozen(&'a vm::ObjectStore),
}

impl StoreRef<'_> {
    fn shared(&self) -> &vm::ObjectStore {
        match self {
            StoreRef::Full(s) => s,
            StoreRef::Frozen(s) => s,
        }
    }
}

/// The CPU's view of a process address space: protections, copy-on-write,
/// transparent stack growth and watchpoint screening all live behind this
/// bus.
struct ProcBus<'a> {
    asp: &'a mut vm::AddressSpace,
    store: StoreRef<'a>,
    icache: &'a mut isa::InsnCache,
    sblocks: &'a mut isa::SBlockCache,
}

impl ProcBus<'_> {
    fn denied_to_fault(d: vm::AccessDenied, access: Access) -> BusFault {
        let kind = match d {
            vm::AccessDenied::Unmapped { .. } => BusFaultKind::Unmapped,
            vm::AccessDenied::Protection { .. } => BusFaultKind::Protection,
            vm::AccessDenied::Watch { .. } => BusFaultKind::Watch,
            // A user-mode access the kernel cannot back with a frame dies
            // as a bounds fault — the CPU has no out-of-memory fault.
            vm::AccessDenied::NoMemory { .. } => BusFaultKind::Unmapped,
            // Only the frozen path produces this; mapped here defensively.
            vm::AccessDenied::NeedStore { .. } => BusFaultKind::Frozen,
        };
        BusFault { addr: d.addr(), access, kind }
    }

    /// Fault classification for a speculative (frozen-store) access.
    /// Protection and watch verdicts are pure — re-running the access
    /// with the full store reproduces them exactly — so they surface as
    /// themselves. Everything else (stack growth, COW materialisation,
    /// pressure accounting) might be cured by mutating the store, so the
    /// slice aborts with `Frozen` and the commit phase retries serially.
    fn frozen_fault(d: vm::AccessDenied, access: Access) -> BusFault {
        let kind = match d {
            vm::AccessDenied::Protection { .. } => BusFaultKind::Protection,
            vm::AccessDenied::Watch { .. } => BusFaultKind::Watch,
            vm::AccessDenied::Unmapped { .. }
            | vm::AccessDenied::NoMemory { .. }
            | vm::AccessDenied::NeedStore { .. } => BusFaultKind::Frozen,
        };
        BusFault { addr: d.addr(), access, kind }
    }

    /// Decodes the instruction at `pc` for the block builder. Probes the
    /// icache first (with the usual hit/stale/miss accounting), then
    /// falls back to a `kernel_read` of the bytes. Building must be free
    /// of user-visible side effects — a predicted-but-never-executed pc
    /// must not grow the stack or consume watchpoint state — so this
    /// never goes through `Bus::fetch`. Block-eligible pages
    /// (`sblock_slot`) are mapped, unwatched text, so for reachable pcs
    /// the read cannot fail; any failure simply ends the trace.
    fn decode_for_block(&mut self, pc: u64) -> Option<isa::Insn> {
        if let Some(s) = self.icache.probe(pc) {
            if s.as_gen == self.asp.generation()
                && self.asp.page_epoch_at(s.map_idx as usize, pc) == Some(s.epoch)
                && self.store.shared().content_gen == s.content_gen
            {
                let insn = s.insn;
                self.icache.note_hit();
                return Some(insn);
            }
            self.icache.note_stale();
        }
        let mut raw = [0u8; isa::INSN_LEN as usize];
        self.asp.kernel_read(self.store.shared(), pc, &mut raw).ok()?;
        let insn = isa::Insn::decode(&raw)?;
        self.icache.note_miss();
        if let Some((map_idx, epoch)) = self.asp.exec_slot(pc, isa::INSN_LEN) {
            self.icache.insert(isa::InsnSlot {
                pc,
                as_gen: self.asp.generation(),
                map_idx: map_idx as u32,
                epoch,
                content_gen: self.store.shared().content_gen,
                insn,
            });
        }
        Some(insn)
    }

    /// The statically predicted successor of `i` at `pc`, or `None` when
    /// the trace must end (indirect or trapping control flow). Backward
    /// conditional branches are predicted taken — the hot-loop case,
    /// which lets a small loop unroll to fill the block. Predictions are
    /// checked per slot at dispatch, so a wrong one costs a side exit,
    /// never correctness.
    fn static_next(i: isa::Insn, pc: u64) -> Option<u64> {
        use isa::Opcode::*;
        match i.op {
            Syscall | Bpt | Halt | Priv | Jmpr | Callr => None,
            Jmp | Call => Some(pc.wrapping_add(i.imm as i64 as u64)),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                if i.imm < 0 {
                    Some(pc.wrapping_add(i.imm as i64 as u64))
                } else {
                    Some(pc.wrapping_add(isa::INSN_LEN))
                }
            }
            _ => Some(pc.wrapping_add(isa::INSN_LEN)),
        }
    }

    /// Traces and installs a superblock rooted at `start`, filling `out`
    /// for immediate dispatch. Returns 0 when `start` is not
    /// block-eligible (writable/shared/watched text, unmapped, or an
    /// undecodable first instruction).
    fn build_block(&mut self, start: u64, out: &mut [isa::BlockSlot; isa::SBLOCK_CAP]) -> usize {
        let Some((map_idx, epoch)) = self.asp.sblock_slot(start, isa::INSN_LEN) else {
            return 0;
        };
        let page = start / vm::PAGE_SIZE;
        let mut slots: Vec<isa::BlockSlot> = Vec::with_capacity(isa::SBLOCK_CAP);
        let mut pc = start;
        while slots.len() < isa::SBLOCK_CAP {
            // The whole trace stays on the root page: one epoch stamp
            // covers every slot, and crossing into a page with different
            // eligibility or epoch state would need its own validation.
            if pc / vm::PAGE_SIZE != page
                || (pc + (isa::INSN_LEN - 1)) / vm::PAGE_SIZE != page
            {
                break;
            }
            let Some(insn) = self.decode_for_block(pc) else { break };
            slots.push(isa::BlockSlot { pc, insn });
            match Self::static_next(insn, pc) {
                Some(next) => pc = next,
                None => break,
            }
        }
        if slots.is_empty() {
            return 0;
        }
        let n = slots.len();
        out[..n].copy_from_slice(&slots);
        self.sblocks.insert(isa::SuperBlock {
            start_pc: start,
            as_gen: self.asp.generation(),
            map_idx: map_idx as u32,
            epoch,
            content_gen: self.store.shared().content_gen,
            slots,
        });
        self.sblocks.note_dispatch();
        n
    }
}

impl Bus for ProcBus<'_> {
    fn fetch_insn(&mut self, addr: u64) -> Result<Option<isa::Insn>, BusFault> {
        // Fast path: serve a decoded instruction when all three stamps
        // still hold. Watched or multi-mapping pages are never inserted
        // (see `AddressSpace::exec_slot`), so slow-path side effects —
        // watchpoint accounting, COW, stack growth — cannot be skipped.
        if self.asp.fast_path_enabled() {
            if let Some(s) = self.icache.probe(addr) {
                if s.as_gen == self.asp.generation()
                    && self.asp.page_epoch_at(s.map_idx as usize, addr) == Some(s.epoch)
                    && self.store.shared().content_gen == s.content_gen
                {
                    let insn = s.insn;
                    self.icache.note_hit();
                    return Ok(Some(insn));
                }
                self.icache.note_stale();
            }
        }
        let mut raw = [0u8; isa::INSN_LEN as usize];
        self.fetch(addr, &mut raw)?;
        let insn = isa::Insn::decode(&raw);
        if self.asp.fast_path_enabled() {
            self.icache.note_miss();
            if let Some(i) = insn {
                if let Some((map_idx, epoch)) = self.asp.exec_slot(addr, isa::INSN_LEN) {
                    self.icache.insert(isa::InsnSlot {
                        pc: addr,
                        as_gen: self.asp.generation(),
                        map_idx: map_idx as u32,
                        epoch,
                        content_gen: self.store.shared().content_gen,
                        insn: i,
                    });
                }
            }
        }
        Ok(insn)
    }

    fn fetch_block(
        &mut self,
        pc: u64,
        out: &mut [isa::BlockSlot; isa::SBLOCK_CAP],
    ) -> usize {
        if !self.asp.fast_path_enabled() {
            return 0;
        }
        if let Some(b) = self.sblocks.probe(pc) {
            if b.as_gen == self.asp.generation()
                && self.asp.page_epoch_at(b.map_idx as usize, pc) == Some(b.epoch)
                && self.store.shared().content_gen == b.content_gen
            {
                let n = b.slots.len().min(isa::SBLOCK_CAP);
                out[..n].copy_from_slice(&b.slots[..n]);
                self.sblocks.note_dispatch();
                return n;
            }
            self.sblocks.note_stale();
        }
        self.build_block(pc, out)
    }

    fn note_block_exit(&mut self, exit: isa::BlockExit, retired: u64) {
        self.sblocks.note_exit(exit, retired);
    }

    fn fetch(&mut self, addr: u64, buf: &mut [u8; 8]) -> Result<(), BusFault> {
        let first = self.asp.fetch_user(self.store.shared(), addr, buf);
        let d = match first {
            Ok(()) => return Ok(()),
            Err(d) => d,
        };
        match &mut self.store {
            StoreRef::Frozen(_) => Err(Self::frozen_fault(d, Access::Exec)),
            StoreRef::Full(objs) => {
                let grown = matches!(&d, vm::AccessDenied::Unmapped { addr }
                    if self.asp.as_fault(objs, *addr));
                if grown {
                    self.asp
                        .fetch_user(objs, addr, buf)
                        .map_err(|d| Self::denied_to_fault(d, Access::Exec))
                } else {
                    Err(Self::denied_to_fault(d, Access::Exec))
                }
            }
        }
    }

    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), BusFault> {
        let first = self.asp.read_user(self.store.shared(), addr, buf);
        let d = match first {
            Ok(()) => return Ok(()),
            Err(d) => d,
        };
        match &mut self.store {
            StoreRef::Frozen(_) => Err(Self::frozen_fault(d, Access::Read)),
            StoreRef::Full(objs) => {
                let grown = matches!(&d, vm::AccessDenied::Unmapped { addr }
                    if self.asp.as_fault(objs, *addr));
                if grown {
                    self.asp
                        .read_user(objs, addr, buf)
                        .map_err(|d| Self::denied_to_fault(d, Access::Read))
                } else {
                    Err(Self::denied_to_fault(d, Access::Read))
                }
            }
        }
    }

    fn store(&mut self, addr: u64, data: &[u8]) -> Result<(), BusFault> {
        match &mut self.store {
            // Speculative write: only the TLB-hit, already-materialised
            // private-overlay-page case commits in place (it touches
            // nothing shared); everything else aborts the slice.
            StoreRef::Frozen(_) => self
                .asp
                .write_user_frozen(addr, data)
                .map_err(|d| Self::frozen_fault(d, Access::Write)),
            StoreRef::Full(objs) => match self.asp.write_user(objs, addr, data) {
                Ok(()) => Ok(()),
                Err(d) => {
                    let grown = matches!(&d, vm::AccessDenied::Unmapped { addr }
                        if self.asp.as_fault(objs, *addr));
                    if grown {
                        self.asp
                            .write_user(objs, addr, data)
                            .map_err(|d| Self::denied_to_fault(d, Access::Write))
                    } else {
                        Err(Self::denied_to_fault(d, Access::Write))
                    }
                }
            },
        }
    }
}
