//! The simulated SVR4 kernel.
//!
//! This crate is the substrate the paper's `/proc` sits on: a complete,
//! deterministic, single-threaded simulation of the UNIX System V
//! process model —
//!
//! * processes with one or more LWPs (threads of control), credentials,
//!   address spaces ([`vm`]), descriptor tables and signal state;
//! * the [`sched`] module's faithful `issig()`/`psig()` (the paper's
//!   Figure 4), including signalled stops, job-control stops, ptrace
//!   stops and requested stops, and their precedence interactions;
//! * a system-call layer (entry/exit stop points — Figure 3), pipes with
//!   real interruptible sleeps, fork/vfork/exec/exit/wait, mmap/brk,
//!   signals, LWP creation;
//! * old-style [`ptrace`] as the competing control mechanism and
//!   baseline;
//! * the [`system::System`] orchestrator that owns the kernel plus the
//!   mounted file systems (memfs, `/proc`) and runs the scheduler.
//!
//! Simulated programs execute on the [`isa`] virtual CPU; *hosted*
//! processes (controlling programs such as a debugger, `ps` or `truss`)
//! occupy a pid, credentials and a descriptor table inside the simulation
//! but run their logic as Rust code against [`system::System`]'s
//! host-level system-call API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The kernel runs under every guest instruction — the scheduler loop,
// the syscall layer and the execution engine's bus all sit below the
// fast path. Fallible cases surface typed results (`Errno`,
// `AccessDenied`, `Option`), never a panic; invariant violations use an
// explicit `panic!`/`unreachable!` with a message naming the broken
// invariant. Test modules opt back in with a local `allow`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod aout;
pub mod bitset;
mod bytes;
pub mod ckpt;
pub mod config;
pub mod corefile;
pub mod deadline;
pub mod event;
pub mod fault;
pub mod fd;
pub mod kernel;
pub mod kfault;
pub mod migrate;
pub mod proc;
pub mod ptrace;
pub mod recfile;
pub mod record;
pub mod sched;
pub mod signal;
pub mod syscall;
pub mod sysno;
pub mod system;

pub use aout::Aout;
pub use event::{Event, EventLog};
pub use fault::{FltSet, Fault};
pub use kernel::{Kernel, RunOpts, HZ};
pub use config::{KernelFaultSpec, MountPlan, SimConfig};
pub use kfault::{KFaultStats, KernelFaultPlan, KernelFaultRates};
pub use migrate::{MigReply, MigStats, MigrateError};
pub use recfile::{RecFile, RecfileError};
pub use record::{Input, RecStats, Record, Recorder, Recording, ReplayDivergence};
pub use proc::{Lwp, LwpState, Proc, StopWhy, SysPhase, SyscallCtx, Tid, TraceState, WaitChannel};
pub use sched::{Issig, Psig, SleepSig};
pub use signal::{SigAction, SigSet};
pub use sysno::SysSet;
pub use system::{FsSlot, StepOutcome, System};
pub use vfs::{Cred, Errno, Pid, SysResult};
