//! Fixed-width bit sets for events of interest.
//!
//! "Events of interest are specified through the /proc interface using
//! sets of flags. Signals are specified using the POSIX signal set type,
//! sigset_t. Machine faults and system calls are specified using
//! analogous set types fltset_t and sysset_t. Like signals, faults and
//! system calls are enumerated from 1; there is no fault number 0 or
//! system call number 0. The SVR4 implementation provides for up to 128
//! signals, 128 faults and 512 system calls."

/// A set of small integers in `1..=W*64`, stored as `W` 64-bit words.
/// Member 0 does not exist; inserting it is ignored and querying it is
/// always false.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitSet<const W: usize> {
    words: [u64; W],
}

impl<const W: usize> Default for BitSet<W> {
    fn default() -> Self {
        BitSet { words: [0; W] }
    }
}

impl<const W: usize> BitSet<W> {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The full set (`1..=capacity`).
    pub fn full() -> Self {
        let mut s = Self { words: [!0u64; W] };
        s.words[0] &= !1; // Member 0 does not exist.
        s
    }

    /// Number of representable members.
    pub const fn capacity() -> usize {
        W * 64
    }

    /// True if `n` is in the set.
    #[inline]
    pub fn has(&self, n: usize) -> bool {
        if n == 0 || n >= Self::capacity() {
            return false;
        }
        self.words[n / 64] & (1 << (n % 64)) != 0
    }

    /// Inserts `n`; out-of-range members are ignored.
    #[inline]
    pub fn add(&mut self, n: usize) {
        if n != 0 && n < Self::capacity() {
            self.words[n / 64] |= 1 << (n % 64);
        }
    }

    /// Removes `n`.
    #[inline]
    pub fn del(&mut self, n: usize) {
        if n != 0 && n < Self::capacity() {
            self.words[n / 64] &= !(1 << (n % 64));
        }
    }

    /// True if no members are present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Union in place.
    pub fn union_with(&mut self, other: &Self) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Difference in place (removes `other`'s members).
    pub fn subtract(&mut self, other: &Self) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (1..Self::capacity()).filter(move |&n| self.has(n))
    }

    /// The lowest member, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// The lowest member also absent from `mask` and `mask2` (promotion
    /// helper: pending & !held & !ignored).
    pub fn first_not_in(&self, mask: &Self, mask2: &Self) -> Option<usize> {
        (1..Self::capacity()).find(|&n| self.has(n) && !mask.has(n) && !mask2.has(n))
    }

    /// Serialises to `W*8` little-endian bytes — the `/proc` wire image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(W * 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Byte length of the wire image.
    pub const WIRE_LEN: usize = W * 8;

    /// Deserialises from the wire image; `None` if too short. Bit 0 is
    /// cleared (member 0 does not exist).
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < W * 8 {
            return None;
        }
        let mut s = Self::default();
        for (i, chunk) in b.chunks_exact(8).take(W).enumerate() {
            s.words[i] = crate::bytes::le_u64(chunk);
        }
        s.words[0] &= !1;
        Some(s)
    }
}

impl<const W: usize> std::fmt::Debug for BitSet<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    type S2 = BitSet<2>;
    type S8 = BitSet<8>;

    #[test]
    fn basic_membership() {
        let mut s = S2::empty();
        assert!(s.is_empty());
        s.add(1);
        s.add(64);
        s.add(127);
        assert!(s.has(1) && s.has(64) && s.has(127));
        assert!(!s.has(2));
        s.del(64);
        assert!(!s.has(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 127]);
    }

    #[test]
    fn member_zero_does_not_exist() {
        let mut s = S2::empty();
        s.add(0);
        assert!(!s.has(0));
        assert!(s.is_empty());
        assert!(!S2::full().has(0));
    }

    #[test]
    fn out_of_range_ignored() {
        let mut s = S2::empty();
        s.add(128);
        s.add(100_000);
        assert!(s.is_empty());
        assert!(!s.has(128));
    }

    #[test]
    fn full_has_all_members() {
        let s = S8::full();
        assert!(s.has(1));
        assert!(s.has(511));
        assert!(!s.has(512));
        assert_eq!(s.iter().count(), 511);
    }

    #[test]
    fn promotion_helper() {
        let mut pending = S2::empty();
        pending.add(2);
        pending.add(9);
        let mut held = S2::empty();
        held.add(2);
        let ignored = S2::empty();
        assert_eq!(pending.first_not_in(&held, &ignored), Some(9));
        held.add(9);
        assert_eq!(pending.first_not_in(&held, &ignored), None);
    }

    #[test]
    fn set_algebra() {
        let mut a = S2::empty();
        a.add(1);
        a.add(2);
        let mut b = S2::empty();
        b.add(2);
        b.add(3);
        let mut u = a;
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut d = u;
        d.subtract(&a);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn roundtrip_bytes() {
        // Deterministic xorshift64* driving random member sets.
        let mut rng = 0xB175E7_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..256 {
            let count = (next() % 64) as usize;
            let members: std::collections::BTreeSet<usize> =
                (0..count).map(|_| 1 + (next() as usize % 511)).collect();
            let mut s = S8::empty();
            for &m in &members {
                s.add(m);
            }
            let decoded = S8::from_bytes(&s.to_bytes()).expect("roundtrip");
            assert_eq!(decoded, s);
            assert_eq!(
                decoded.iter().collect::<Vec<_>>(),
                members.into_iter().collect::<Vec<_>>()
            );
        }
    }
}
