//! Unified construction-time configuration for a simulated system.
//!
//! PRs 2–7 accreted one-off `System` knobs — `set_fast_path`,
//! `set_coarse_epochs`, the kernel and wire `FaultPlan` installers,
//! `with_queue_caps` — each set imperatively at a different point in a
//! test's setup. [`SimConfig`] collapses them into one declarative value
//! consumed once at construction ([`crate::System::with_config`]), which
//! is also exactly what the record/replay subsystem needs: the config is
//! recorded verbatim at the head of a [`crate::record::Recording`], so
//! replaying a run starts from a byte-identical machine.

use crate::kfault::KernelFaultRates;
use vfs::remote::{WireConfig, WireError, WireReader};

/// A kernel fault schedule: seed + per-site rates, and whether death
/// injection targets only processes a controller holds a writable
/// `/proc` descriptor on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelFaultSpec {
    /// Generator seed; one seed fixes the whole schedule.
    pub seed: u64,
    /// Per-site injection rates in permille.
    pub rates: KernelFaultRates,
    /// Concentrate death injection on controller-held targets.
    pub targeted: bool,
}

/// What to mount at a path: interpreted by the `procfs` crate's
/// `build_sim` (ksim itself only records the plan — mounting needs the
/// `/proc` implementations, which live a layer up).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MountPlan {
    /// The flat, ioctl-driven `/proc` of the paper's shipped design.
    ProcFlat,
    /// The hierarchical, file-per-datum `/proc` of the paper's proposal.
    ProcHier,
    /// A flat `/proc` served across the simulated wire under this
    /// configuration.
    RemoteProc(WireConfig),
}

impl MountPlan {
    fn tag(&self) -> u8 {
        match self {
            MountPlan::ProcFlat => 0,
            MountPlan::ProcHier => 1,
            MountPlan::RemoteProc(_) => 2,
        }
    }
}

/// Construction-time configuration of a [`crate::System`]: scheduler
/// parameters, execution-engine switches, the kernel fault plan, the
/// mount plan, and whether the run is recorded.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Instructions per scheduling quantum.
    pub quantum: u64,
    /// Idle-step limit for hosted blocking calls before `EDEADLK`.
    pub pump_limit: u64,
    /// Execution fast path (software TLB + decoded-instruction cache +
    /// superblocks) for every process.
    pub fast_path: bool,
    /// Bench-only: PR 5's whole-mapping invalidation policy instead of
    /// per-page text epochs.
    pub coarse_epochs: bool,
    /// Kernel fault schedule; `None` consumes no generator state.
    pub kernel_faults: Option<KernelFaultSpec>,
    /// Record every nondeterministic input for replay.
    pub record: bool,
    /// Take a copy-on-write snapshot every this many recorded inputs
    /// (only meaningful with `record`; 0 means never snapshot).
    pub snapshot_every: usize,
    /// Mounts to establish at construction, in order.
    pub mounts: Vec<(String, MountPlan)>,
    /// Scheduler shards. 0 (the default) keeps the legacy one-LWP-per-
    /// step loop; `n >= 1` switches `System::step` to the gang-round
    /// engine, whose speculative user slices run on up to `n` host
    /// worker threads. The *logical* schedule depends only on
    /// `interleave_seed`, never on `n`: any two shard counts produce
    /// byte-identical transcripts for the same seed.
    pub shards: u32,
    /// Seed for the round engine's commit-order permutation. Part of the
    /// recorded config: a replay at a different shard count but the same
    /// seed replays the same interleaving.
    pub interleave_seed: u64,
    /// Scheduling quanta per speculative slice in one round (round
    /// engine only). Larger batches amortise the per-round thread fork;
    /// the value changes the schedule (slice length) but, like
    /// `quantum`, not its shard-count independence.
    pub shard_batch: u32,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            quantum: 256,
            pump_limit: 1_000_000,
            fast_path: true,
            coarse_epochs: false,
            kernel_faults: None,
            record: false,
            snapshot_every: 64,
            mounts: Vec::new(),
            shards: 0,
            interleave_seed: 0,
            shard_batch: 4,
        }
    }
}

impl SimConfig {
    /// The default configuration: no mounts, no faults, no recording.
    pub fn new() -> SimConfig {
        SimConfig::default()
    }

    /// The standard two-face layout: flat `/proc` plus hierarchical
    /// `/proc2`, sharing one snapshot cache.
    pub fn standard() -> SimConfig {
        SimConfig::new()
            .mount("/proc", MountPlan::ProcFlat)
            .mount("/proc2", MountPlan::ProcHier)
    }

    /// Adds a mount.
    pub fn mount(mut self, path: &str, plan: MountPlan) -> SimConfig {
        self.mounts.push((path.to_string(), plan));
        self
    }

    /// Sets the scheduling quantum.
    pub fn quantum(mut self, quantum: u64) -> SimConfig {
        self.quantum = quantum;
        self
    }

    /// Sets the pump budget for blocking host calls.
    pub fn pump_limit(mut self, limit: u64) -> SimConfig {
        self.pump_limit = limit;
        self
    }

    /// Turns the execution fast path on or off.
    pub fn fast_path(mut self, on: bool) -> SimConfig {
        self.fast_path = on;
        self
    }

    /// Selects the coarse (whole-mapping) invalidation policy.
    pub fn coarse_epochs(mut self, on: bool) -> SimConfig {
        self.coarse_epochs = on;
        self
    }

    /// Installs a kernel fault schedule.
    pub fn kernel_faults(mut self, seed: u64, rates: KernelFaultRates) -> SimConfig {
        self.kernel_faults = Some(KernelFaultSpec { seed, rates, targeted: false });
        self
    }

    /// Installs a kernel fault schedule whose death injection only
    /// considers controller-held targets.
    pub fn targeted_kernel_faults(mut self, seed: u64, rates: KernelFaultRates) -> SimConfig {
        self.kernel_faults = Some(KernelFaultSpec { seed, rates, targeted: true });
        self
    }

    /// Turns input recording on.
    pub fn record(mut self, on: bool) -> SimConfig {
        self.record = on;
        self
    }

    /// Sets the snapshot interval, in recorded inputs.
    pub fn snapshot_every(mut self, every: usize) -> SimConfig {
        self.snapshot_every = every;
        self
    }

    /// Selects the sharded round engine with `n` worker shards (`0`
    /// keeps the legacy loop). The schedule is shard-count independent:
    /// `shards(1)` and `shards(8)` replay byte-identically for the same
    /// [`SimConfig::interleave_seed`].
    pub fn shards(mut self, n: u32) -> SimConfig {
        self.shards = n;
        self
    }

    /// Seeds the round engine's deterministic commit-order permutation.
    pub fn interleave_seed(mut self, seed: u64) -> SimConfig {
        self.interleave_seed = seed;
        self
    }

    /// Sets how many quanta one speculative slice runs per round.
    pub fn shard_batch(mut self, quanta: u32) -> SimConfig {
        self.shard_batch = quanta.max(1);
        self
    }

    /// Folds every field into a stable little-endian byte encoding; the
    /// recording digests cover this, so replaying under a different
    /// construction config is detected as a divergence at tick 0.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.quantum.to_le_bytes());
        out.extend_from_slice(&self.pump_limit.to_le_bytes());
        out.push(self.fast_path as u8);
        out.push(self.coarse_epochs as u8);
        match &self.kernel_faults {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                out.extend_from_slice(&f.seed.to_le_bytes());
                let r = f.rates;
                for v in [
                    r.enomem,
                    r.eagain,
                    r.eintr,
                    r.wakeup,
                    r.death,
                    r.mid_op,
                    r.controller_death,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.push(f.targeted as u8);
            }
        }
        out.extend_from_slice(&(self.snapshot_every as u64).to_le_bytes());
        out.extend_from_slice(&(self.mounts.len() as u64).to_le_bytes());
        for (path, plan) in &self.mounts {
            out.extend_from_slice(&(path.len() as u64).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            out.push(plan.tag());
            if let MountPlan::RemoteProc(w) = plan {
                w.encode(out);
            }
        }
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.extend_from_slice(&self.interleave_seed.to_le_bytes());
        out.extend_from_slice(&self.shard_batch.to_le_bytes());
    }

    /// Parses the [`SimConfig::encode`] byte layout back into a config,
    /// advancing `r` past it. The `record` flag is not encoded (a loaded
    /// recording is always replayed with recording on), so it comes back
    /// `false`; callers turn it on themselves. Any truncation or
    /// malformed tag is a typed [`WireError`], never a panic.
    pub fn decode(r: &mut WireReader<'_>) -> Result<SimConfig, WireError> {
        let quantum = r.u64()?;
        let pump_limit = r.u64()?;
        let flag = |r: &mut WireReader<'_>| -> Result<bool, WireError> {
            match r.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(WireError::Malformed),
            }
        };
        let fast_path = flag(r)?;
        let coarse_epochs = flag(r)?;
        let kernel_faults = if flag(r)? {
            let seed = r.u64()?;
            let rates = KernelFaultRates {
                enomem: r.u16()?,
                eagain: r.u16()?,
                eintr: r.u16()?,
                wakeup: r.u16()?,
                death: r.u16()?,
                mid_op: r.u16()?,
                controller_death: r.u16()?,
            };
            let targeted = flag(r)?;
            Some(KernelFaultSpec { seed, rates, targeted })
        } else {
            None
        };
        let snapshot_every = r.u64()? as usize;
        let nmounts = r.u64()?;
        if nmounts > 64 {
            return Err(WireError::Malformed);
        }
        let mut mounts = Vec::with_capacity(nmounts as usize);
        for _ in 0..nmounts {
            let plen = r.u64()? as usize;
            let path = String::from_utf8_lossy(r.take(plen)?).into_owned();
            let plan = match r.u8()? {
                0 => MountPlan::ProcFlat,
                1 => MountPlan::ProcHier,
                2 => MountPlan::RemoteProc(WireConfig::decode(r)?),
                _ => return Err(WireError::Malformed),
            };
            mounts.push((path, plan));
        }
        let shards = r.u32()?;
        let interleave_seed = r.u64()?;
        let shard_batch = r.u32()?;
        Ok(SimConfig {
            quantum,
            pump_limit,
            fast_path,
            coarse_epochs,
            kernel_faults,
            record: false,
            snapshot_every,
            mounts,
            shards,
            interleave_seed,
            shard_batch,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = SimConfig::standard()
            .quantum(128)
            .fast_path(false)
            .kernel_faults(7, KernelFaultRates::uniform(5))
            .record(true)
            .snapshot_every(16);
        assert_eq!(cfg.quantum, 128);
        assert!(!cfg.fast_path);
        assert_eq!(cfg.mounts.len(), 2);
        assert!(cfg.record);
        assert_eq!(cfg.kernel_faults.unwrap().seed, 7);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cfg = SimConfig::standard()
            .quantum(96)
            .pump_limit(4096)
            .fast_path(false)
            .targeted_kernel_faults(0xDEAD, KernelFaultRates::uniform(9))
            .snapshot_every(24)
            .mount("/procr", MountPlan::RemoteProc(WireConfig::faulty(7, Default::default())))
            .shards(4)
            .interleave_seed(0xBEEF)
            .shard_batch(8);
        let mut bytes = Vec::new();
        cfg.encode(&mut bytes);
        let mut r = WireReader::new(&bytes);
        let back = SimConfig::decode(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0, "decode consumed exactly the encoding");
        // `record` is deliberately not carried.
        assert_eq!(back, SimConfig { record: false, ..cfg });
        // Every truncation point is a typed error, never a panic.
        for keep in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..keep]);
            assert!(SimConfig::decode(&mut r).is_err(), "cut at {keep} parsed");
        }
    }

    #[test]
    fn encoding_distinguishes_configs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        SimConfig::standard().encode(&mut a);
        SimConfig::standard().quantum(128).encode(&mut b);
        assert_ne!(a, b);
        let mut c = Vec::new();
        SimConfig::standard().encode(&mut c);
        assert_eq!(a, c);
        let mut d = Vec::new();
        SimConfig::standard().shards(2).interleave_seed(5).encode(&mut d);
        assert_ne!(a, d, "shard dimension is part of the recorded config");
    }
}
