//! Old-style `ptrace(2)` — the mechanism `/proc` makes obsolete.
//!
//! "ptrace is made obsolete by /proc but is still required by the System
//! V Interface Definition." It is implemented here both as the paper's
//! *competing mechanism* (its interactions with `/proc` stops inside
//! `issig()` are part of the reproduction) and as the performance
//! baseline for experiments E1/E2: the word-at-a-time PEEK/POKE interface
//! is exactly why the paper counts "system calls routinely made by a
//! debugger".
//!
//! Requests follow the classic numbering; GETREGS/SETREGS extensions
//! (present in many ptrace implementations) are included so the baseline
//! debugger is not absurdly handicapped.

use crate::kernel::Kernel;
use crate::proc::{LwpState, StopWhy, Tid};
use crate::system::System;
use isa::GregSet;
use vfs::{Errno, Pid, SysResult};

/// This process requests tracing by its parent.
pub const PT_TRACE_ME: u64 = 0;
/// Read a word of the child's text.
pub const PT_PEEKTEXT: u64 = 1;
/// Read a word of the child's data.
pub const PT_PEEKDATA: u64 = 2;
/// Write a word of the child's text.
pub const PT_POKETEXT: u64 = 4;
/// Write a word of the child's data.
pub const PT_POKEDATA: u64 = 5;
/// Continue the stopped child, optionally delivering a signal.
pub const PT_CONT: u64 = 7;
/// Kill the child.
pub const PT_KILL: u64 = 8;
/// Single-step the child.
pub const PT_STEP: u64 = 9;
/// Read the child's general registers (extension).
pub const PT_GETREGS: u64 = 12;
/// Write the child's general registers (extension).
pub const PT_SETREGS: u64 = 13;

impl System {
    /// The `ptrace` system call for simulated callers. `args` are
    /// `[request, pid, addr, data, regbuf_ptr, _]`.
    pub(crate) fn sys_ptrace(&mut self, caller: Pid, _tid: Tid, args: [u64; 6]) -> SysResult<u64> {
        let req = args[0];
        if req == PT_TRACE_ME {
            let proc = self.kernel.proc_mut(caller)?;
            proc.ptraced = true;
            return Ok(0);
        }
        let target = Pid(args[1] as u32);
        match req {
            PT_PEEKTEXT | PT_PEEKDATA => {
                let mut word = [0u8; 8];
                self.ptrace_target(caller, target)?;
                let proc = self.kernel.proc(target)?;
                proc.aspace
                    .kernel_read(&self.kernel.objects, args[2], &mut word)
                    .map_err(|_| Errno::EIO)?;
                Ok(u64::from_le_bytes(word))
            }
            PT_POKETEXT | PT_POKEDATA => {
                self.ptrace_target(caller, target)?;
                let Kernel { procs, objects, .. } = &mut self.kernel;
                let proc = procs.get_mut(&target.0).ok_or(Errno::ESRCH)?;
                proc.aspace
                    .kernel_write(objects, args[2], &args[3].to_le_bytes())
                    .map_err(|_| Errno::EIO)?;
                proc.touch();
                Ok(0)
            }
            PT_GETREGS => {
                self.ptrace_target(caller, target)?;
                let image = self.kernel.proc(target)?.rep_lwp().gregs.to_bytes();
                // For a simulated caller, addr is the destination buffer.
                self.copyout(caller, args[2], &image)?;
                Ok(0)
            }
            PT_SETREGS => {
                self.ptrace_target(caller, target)?;
                let image = self.copyin(caller, args[2], GregSet::WIRE_LEN)?;
                let regs = GregSet::from_bytes(&image).ok_or(Errno::EINVAL)?;
                let proc = self.kernel.proc_mut(target)?;
                proc.rep_lwp_mut().gregs = regs;
                proc.touch();
                Ok(0)
            }
            PT_CONT | PT_STEP => {
                self.ptrace_target(caller, target)?;
                self.ptrace_cont(target, args[2], args[3] as usize, req == PT_STEP)
            }
            PT_KILL => {
                self.ptrace_target(caller, target)?;
                self.force_kill(target, crate::signal::SIGKILL);
                Ok(0)
            }
            _ => Err(Errno::EIO),
        }
    }

    /// Host-level ptrace for baseline tooling: same semantics as the
    /// simulated call, with host buffers for the register image.
    pub fn host_ptrace(
        &mut self,
        caller: Pid,
        req: u64,
        target: Pid,
        addr: u64,
        data: u64,
    ) -> SysResult<u64> {
        match req {
            PT_PEEKTEXT | PT_PEEKDATA => {
                self.ptrace_target(caller, target)?;
                let mut word = [0u8; 8];
                let proc = self.kernel.proc(target)?;
                proc.aspace
                    .kernel_read(&self.kernel.objects, addr, &mut word)
                    .map_err(|_| Errno::EIO)?;
                Ok(u64::from_le_bytes(word))
            }
            PT_POKETEXT | PT_POKEDATA => {
                self.ptrace_target(caller, target)?;
                let Kernel { procs, objects, .. } = &mut self.kernel;
                let proc = procs.get_mut(&target.0).ok_or(Errno::ESRCH)?;
                proc.aspace
                    .kernel_write(objects, addr, &data.to_le_bytes())
                    .map_err(|_| Errno::EIO)?;
                proc.touch();
                Ok(0)
            }
            PT_CONT | PT_STEP => {
                self.ptrace_target(caller, target)?;
                self.ptrace_cont(target, addr, data as usize, req == PT_STEP)
            }
            PT_KILL => {
                self.ptrace_target(caller, target)?;
                self.force_kill(target, crate::signal::SIGKILL);
                Ok(0)
            }
            _ => Err(Errno::EIO),
        }
    }

    /// Host-level register fetch over ptrace (the GETREGS extension).
    pub fn host_ptrace_getregs(&mut self, caller: Pid, target: Pid) -> SysResult<GregSet> {
        self.ptrace_target(caller, target)?;
        Ok(self.kernel.proc(target)?.rep_lwp().gregs.clone())
    }

    /// Host-level register install over ptrace.
    pub fn host_ptrace_setregs(
        &mut self,
        caller: Pid,
        target: Pid,
        regs: GregSet,
    ) -> SysResult<()> {
        self.ptrace_target(caller, target)?;
        let proc = self.kernel.proc_mut(target)?;
        let mut regs = regs;
        regs.normalize();
        proc.rep_lwp_mut().gregs = regs;
        proc.touch();
        Ok(())
    }

    /// Marks a child as ptrace-traced (the host-level analogue of the
    /// child calling `PT_TRACE_ME` before exec).
    pub fn host_ptrace_traceme(&mut self, child: Pid) -> SysResult<()> {
        let proc = self.kernel.proc_mut(child)?;
        proc.ptraced = true;
        proc.touch();
        Ok(())
    }

    /// Validates the classic access rule: the target must be a
    /// ptrace-traced child of the caller, stopped.
    fn ptrace_target(&self, caller: Pid, target: Pid) -> SysResult<()> {
        let proc = self.kernel.proc(target)?;
        if !proc.ptraced || proc.ppid != caller {
            return Err(Errno::ESRCH);
        }
        if !proc.rep_lwp().is_stopped() {
            return Err(Errno::ESRCH);
        }
        Ok(())
    }

    /// Continues a ptrace-stopped child: optionally rewrites the resume
    /// PC, replaces or clears the current signal, optionally
    /// single-steps.
    fn ptrace_cont(&mut self, target: Pid, addr: u64, sig: usize, step: bool) -> SysResult<u64> {
        let proc = self.kernel.proc_mut(target)?;
        proc.touch();
        let lwp = proc.rep_lwp_mut();
        let tid = lwp.tid;
        if !matches!(lwp.state, LwpState::Stopped(StopWhy::Ptrace(_))) {
            // ptrace may also restart a child it sees stopped on
            // job-control (classic overlap); anything else is not
            // ptrace's stop to undo.
            if !matches!(lwp.state, LwpState::Stopped(StopWhy::JobControl(_))) {
                return Err(Errno::ESRCH);
            }
        }
        if addr != 1 {
            lwp.gregs.pc = addr;
        }
        if sig == 0 {
            lwp.cursig = None;
        } else {
            lwp.cursig = Some(sig);
            // The replaced signal proceeds to delivery without
            // re-stopping.
            lwp.sig_stop_taken = true;
            lwp.ptrace_stop_taken = true;
        }
        lwp.single_step = step;
        lwp.state = LwpState::Runnable;
        lwp.user_return_pending = true;
        self.kernel.log.push(crate::event::Event::Run { pid: target, tid });
        Ok(0)
    }
}

/// Decodes a classic wait-status word (tests and tools).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitStatus {
    /// Normal exit with this code.
    Exited(u8),
    /// Killed by this signal (bool: core dumped).
    Signalled(usize, bool),
    /// Stopped with this signal (ptrace/job control).
    Stopped(usize),
}

/// Parses the status word written by `wait`.
pub fn decode_status(status: u16) -> WaitStatus {
    if status & 0xFF == 0x7F {
        WaitStatus::Stopped((status >> 8) as usize)
    } else if status & 0x7F != 0 {
        WaitStatus::Signalled((status & 0x7F) as usize, status & 0x80 != 0)
    } else {
        WaitStatus::Exited((status >> 8) as u8)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn status_decoding() {
        assert_eq!(decode_status(Kernel::status_exited(0)), WaitStatus::Exited(0));
        assert_eq!(decode_status(Kernel::status_exited(3)), WaitStatus::Exited(3));
        assert_eq!(decode_status(Kernel::status_signalled(9, false)), WaitStatus::Signalled(9, false));
        assert_eq!(decode_status(Kernel::status_signalled(11, true)), WaitStatus::Signalled(11, true));
        assert_eq!(decode_status(Kernel::status_stopped(5)), WaitStatus::Stopped(5));
    }
}
