//! The simulated a.out executable format and address-space layout.
//!
//! An a.out carries text, initialized data, a bss size, an entry point, a
//! list of needed shared libraries, and a symbol table (so debuggers can
//! resolve names after finding the file via `PIOCOPENM`). "Within this
//! model a 'text' segment is nothing more than a private executable
//! mapping to the code portion of an executable file ... Shared libraries
//! are implemented by mapping the code and data of a shared library
//! executable file into the address space of a process."

use vfs::{Errno, SysResult};

/// Default text base of an ordinary a.out.
pub const TEXT_BASE: u64 = isa::asm::DEFAULT_TEXT_BASE;

/// Top of the initial stack mapping (exclusive).
pub const STACK_TOP: u64 = 0x7FFF_F000;

/// Initial stack size in bytes (grows down automatically).
pub const STACK_INIT: u64 = 4 * vm::PAGE_SIZE;

/// Lowest address automatic stack growth may reach.
pub const STACK_LIMIT: u64 = 0x7000_0000;

/// Base address of shared library slot `i` (chosen at library assembly
/// time; the loader maps each library at its link base).
pub fn lib_base(i: usize) -> u64 {
    0x4000_0000 + (i as u64) * 0x0100_0000
}

/// Region searched by `mmap` when the caller does not fix an address.
pub const MMAP_LO: u64 = 0x2000_0000;
/// Upper bound of the `mmap` search region.
pub const MMAP_HI: u64 = 0x3000_0000;

/// The magic kernel return address installed in `ra` when a signal
/// handler is entered. Fetching from it traps to the kernel, which
/// performs `sigreturn`.
pub const SIGRETURN_ADDR: u64 = 0xFFFF_F000;

/// Default bss length granted to every image (also the initial heap seed;
/// the break segment follows it).
pub const DEFAULT_BSS: u64 = 4 * vm::PAGE_SIZE;

const MAGIC: &[u8; 8] = b"PSAOUT\x01\0";

/// A parsed (or to-be-serialised) executable image.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Aout {
    /// Initial program counter.
    pub entry: u64,
    /// Base virtual address of the text.
    pub text_base: u64,
    /// Text bytes.
    pub text: Vec<u8>,
    /// Base virtual address of the data.
    pub data_base: u64,
    /// Initialized data bytes.
    pub data: Vec<u8>,
    /// Zero-fill bytes mapped after the data.
    pub bss_len: u64,
    /// Names of needed shared libraries (installed as `/lib/<name>`).
    pub libs: Vec<String>,
    /// Symbol table: name to virtual address.
    pub symbols: Vec<(String, u64)>,
}

impl Aout {
    /// Builds an image from assembler output.
    pub fn from_assembly(asm: &isa::Assembly) -> Aout {
        Aout {
            entry: asm.entry,
            text_base: asm.text_base,
            text: asm.text.clone(),
            data_base: asm.data_base,
            data: asm.data.clone(),
            bss_len: DEFAULT_BSS,
            libs: Vec::new(),
            symbols: asm.symbols.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }

    /// Adds needed shared libraries.
    pub fn with_libs(mut self, libs: &[&str]) -> Aout {
        self.libs = libs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Looks up a symbol's address.
    pub fn sym(&self, name: &str) -> Option<u64> {
        self.symbols.iter().find(|(n, _)| n == name).map(|(_, a)| *a)
    }

    /// The symbol at exactly `addr`, if any.
    pub fn sym_at(&self, addr: u64) -> Option<&str> {
        self.symbols.iter().find(|(_, a)| *a == addr).map(|(n, _)| n.as_str())
    }

    /// Serialises the image to bytes (the file content stored in memfs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let put_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        let put_str = |out: &mut Vec<u8>, s: &str| {
            put_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        };
        put_u64(&mut out, self.entry);
        put_u64(&mut out, self.text_base);
        put_u64(&mut out, self.text.len() as u64);
        put_u64(&mut out, self.data_base);
        put_u64(&mut out, self.data.len() as u64);
        put_u64(&mut out, self.bss_len);
        put_u64(&mut out, self.libs.len() as u64);
        for l in &self.libs {
            put_str(&mut out, l);
        }
        put_u64(&mut out, self.symbols.len() as u64);
        for (name, addr) in &self.symbols {
            put_str(&mut out, name);
            put_u64(&mut out, *addr);
        }
        out.extend_from_slice(&self.text);
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses an image; `ENOEXEC` on any malformation.
    pub fn from_bytes(b: &[u8]) -> SysResult<Aout> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> SysResult<&[u8]> {
            if *pos + n > b.len() {
                return Err(Errno::ENOEXEC);
            }
            let s = &b[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != MAGIC {
            return Err(Errno::ENOEXEC);
        }
        let get_u64 = |pos: &mut usize| -> SysResult<u64> {
            Ok(crate::bytes::le_u64(take(pos, 8)?))
        };
        let entry = get_u64(&mut pos)?;
        let text_base = get_u64(&mut pos)?;
        let text_len = get_u64(&mut pos)? as usize;
        let data_base = get_u64(&mut pos)?;
        let data_len = get_u64(&mut pos)? as usize;
        let bss_len = get_u64(&mut pos)?;
        if text_len > b.len() || data_len > b.len() {
            return Err(Errno::ENOEXEC);
        }
        let nlibs = get_u64(&mut pos)? as usize;
        if nlibs > 64 {
            return Err(Errno::ENOEXEC);
        }
        let mut libs = Vec::with_capacity(nlibs);
        for _ in 0..nlibs {
            let n = get_u64(&mut pos)? as usize;
            let raw = take(&mut pos, n)?;
            libs.push(String::from_utf8_lossy(raw).into_owned());
        }
        let nsyms = get_u64(&mut pos)? as usize;
        if nsyms > 1 << 20 {
            return Err(Errno::ENOEXEC);
        }
        let mut symbols = Vec::with_capacity(nsyms);
        for _ in 0..nsyms {
            let n = get_u64(&mut pos)? as usize;
            let raw = take(&mut pos, n)?.to_vec();
            let addr = get_u64(&mut pos)?;
            symbols.push((String::from_utf8_lossy(&raw).into_owned(), addr));
        }
        let text = take(&mut pos, text_len)?.to_vec();
        let data = take(&mut pos, data_len)?.to_vec();
        Ok(Aout { entry, text_base, text, data_base, data, bss_len, libs, symbols })
    }
}

/// Assembles `src` and packages it as an a.out.
pub fn build_aout(src: &str) -> Result<Aout, isa::AsmError> {
    Ok(Aout::from_assembly(&isa::assemble(src)?))
}

/// Assembles a shared library at library slot `i`.
pub fn build_lib(src: &str, slot: usize) -> Result<Aout, isa::AsmError> {
    Ok(Aout::from_assembly(&isa::asm::assemble_at(src, lib_base(slot))?))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = build_aout("_start: movi a0, 1\nsyscall\n.data\nmsg: .asciz \"hi\"")
            .expect("assembles")
            .with_libs(&["libdemo"]);
        let b = a.to_bytes();
        let back = Aout::from_bytes(&b).expect("parses");
        assert_eq!(back, a);
        assert!(back.sym("_start").is_some());
        assert!(back.sym("msg").is_some());
        assert_eq!(back.libs, vec!["libdemo"]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Aout::from_bytes(b"garbage"), Err(Errno::ENOEXEC));
        assert_eq!(Aout::from_bytes(&[]), Err(Errno::ENOEXEC));
    }

    #[test]
    fn truncated_rejected() {
        let a = build_aout("_start: syscall").expect("assembles");
        let b = a.to_bytes();
        for cut in [9, 20, b.len() - 1] {
            assert_eq!(Aout::from_bytes(&b[..cut]), Err(Errno::ENOEXEC), "cut at {cut}");
        }
    }

    #[test]
    fn sym_lookup() {
        let a = build_aout("_start: nop\nfoo: syscall").expect("assembles");
        let foo = a.sym("foo").expect("foo");
        assert_eq!(foo, a.sym("_start").expect("_start") + 8);
        assert_eq!(a.sym_at(foo), Some("foo"));
        assert_eq!(a.sym("bar"), None);
    }

    #[test]
    fn lib_bases_are_distinct() {
        assert_ne!(lib_base(0), lib_base(1));
        assert!(lib_base(0) > TEXT_BASE);
        assert!(lib_base(8) < STACK_LIMIT);
    }
}
