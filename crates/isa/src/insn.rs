//! Instruction encoding and decoding.
//!
//! Every instruction is exactly [`INSN_LEN`] (8) bytes:
//!
//! ```text
//! byte 0    byte 1   byte 2   byte 3   bytes 4..8
//! opcode    rd       rs1      rs2      imm (i32, little-endian)
//! ```
//!
//! The fixed width keeps breakpoint arithmetic trivial (the paper's
//! variable-length concerns are documented in DESIGN.md, not modelled):
//! a debugger overwrites the 8 bytes at the breakpoint address with the
//! encoding of [`Opcode::Bpt`] and restores them later.
//!
//! Opcode byte `0x00` deliberately does not decode: execution that falls
//! into zero-filled memory raises an illegal-instruction fault rather than
//! sliding silently.

/// Length in bytes of every instruction.
pub const INSN_LEN: u64 = 8;

/// Machine opcodes.
///
/// Register operands index the general register file except for the `F*`
/// group, where `rd`/`rs1`/`rs2` index the floating register file (and
/// `CvtIF`/`CvtFI` mix the two as documented on the variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0x01,
    /// Halt the machine. Privileged: raises `FLTPRIV` from user mode.
    Halt = 0x02,
    /// Trap into the kernel for a system call. The call number is in `rv`,
    /// arguments in `a0..a5`. The program counter is advanced past the
    /// instruction before the trap is reported.
    Syscall = 0x03,
    /// The approved breakpoint instruction. Raises a breakpoint trap with
    /// the program counter left at the breakpoint address.
    Bpt = 0x04,
    /// A privileged operation; always raises `FLTPRIV` from user mode.
    Priv = 0x05,

    /// `rd = rs1 + rs2`
    Add = 0x10,
    /// `rd = rs1 - rs2`
    Sub = 0x11,
    /// `rd = rs1 * rs2` (wrapping)
    Mul = 0x12,
    /// `rd = rs1 / rs2` (signed); division by zero raises an integer
    /// zero-divide fault.
    Div = 0x13,
    /// `rd = rs1 % rs2` (signed); division by zero raises an integer
    /// zero-divide fault.
    Rem = 0x14,
    /// `rd = rs1 & rs2`
    And = 0x15,
    /// `rd = rs1 | rs2`
    Or = 0x16,
    /// `rd = rs1 ^ rs2`
    Xor = 0x17,
    /// `rd = rs1 << (rs2 & 63)`
    Shl = 0x18,
    /// `rd = rs1 >> (rs2 & 63)` (logical)
    Shr = 0x19,
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic)
    Sar = 0x1A,
    /// `rd = (rs1 < rs2)` signed compare, 0 or 1
    Slt = 0x1B,
    /// `rd = (rs1 < rs2)` unsigned compare, 0 or 1
    Sltu = 0x1C,

    /// `rd = rs1 + imm`
    Addi = 0x20,
    /// `rd = rs1 * imm` (wrapping)
    Muli = 0x21,
    /// `rd = rs1 & imm` (imm sign-extended)
    Andi = 0x22,
    /// `rd = rs1 | imm`
    Ori = 0x23,
    /// `rd = rs1 ^ imm`
    Xori = 0x24,
    /// `rd = rs1 << (imm & 63)`
    Shli = 0x25,
    /// `rd = rs1 >> (imm & 63)` (logical)
    Shri = 0x26,
    /// `rd = (rs1 < imm)` signed compare, 0 or 1
    Slti = 0x27,
    /// `rd = imm` (sign-extended to 64 bits)
    Movi = 0x28,
    /// `rd = (rd & 0xFFFF_FFFF) | (imm as u32 as u64) << 32` — installs the
    /// upper half of a 64-bit constant.
    Moviu = 0x29,

    /// `rd = *(u64*)(rs1 + imm)`
    Ld = 0x30,
    /// `*(u64*)(rs1 + imm) = rd`
    St = 0x31,
    /// `rd = *(u8*)(rs1 + imm)` zero-extended
    Ldb = 0x32,
    /// `*(u8*)(rs1 + imm) = rd as u8`
    Stb = 0x33,
    /// `rd = *(u32*)(rs1 + imm)` zero-extended
    Ldw = 0x34,
    /// `*(u32*)(rs1 + imm) = rd as u32`
    Stw = 0x35,

    /// `pc += imm` (imm relative to this instruction's address)
    Jmp = 0x40,
    /// `pc = rs1`
    Jmpr = 0x41,
    /// `if rs1 == rs2 { pc += imm }`
    Beq = 0x42,
    /// `if rs1 != rs2 { pc += imm }`
    Bne = 0x43,
    /// `if rs1 < rs2 (signed) { pc += imm }`
    Blt = 0x44,
    /// `if rs1 >= rs2 (signed) { pc += imm }`
    Bge = 0x45,
    /// `if rs1 < rs2 (unsigned) { pc += imm }`
    Bltu = 0x46,
    /// `if rs1 >= rs2 (unsigned) { pc += imm }`
    Bgeu = 0x47,
    /// `ra = pc + 8; pc += imm`
    Call = 0x48,
    /// `ra = pc + 8; pc = rs1`
    Callr = 0x49,

    /// `fd = fs1 + fs2`
    Fadd = 0x50,
    /// `fd = fs1 - fs2`
    Fsub = 0x51,
    /// `fd = fs1 * fs2`
    Fmul = 0x52,
    /// `fd = fs1 / fs2`; division by zero raises a floating-point fault.
    Fdiv = 0x53,
    /// `fd = *(f64*)(rs1 + imm)` — `rd` names a floating register, `rs1` a
    /// general register.
    Fld = 0x54,
    /// `*(f64*)(rs1 + imm) = fd`
    Fst = 0x55,
    /// `fd = rs1 as i64 as f64` — integer to float.
    CvtIF = 0x56,
    /// `rd = fs1 as i64` — float to integer (toward zero).
    CvtFI = 0x57,
    /// `fd = imm as f64`
    Fmovi = 0x58,
}

impl Opcode {
    /// Decodes an opcode byte; `None` means illegal instruction.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x01 => Nop,
            0x02 => Halt,
            0x03 => Syscall,
            0x04 => Bpt,
            0x05 => Priv,
            0x10 => Add,
            0x11 => Sub,
            0x12 => Mul,
            0x13 => Div,
            0x14 => Rem,
            0x15 => And,
            0x16 => Or,
            0x17 => Xor,
            0x18 => Shl,
            0x19 => Shr,
            0x1A => Sar,
            0x1B => Slt,
            0x1C => Sltu,
            0x20 => Addi,
            0x21 => Muli,
            0x22 => Andi,
            0x23 => Ori,
            0x24 => Xori,
            0x25 => Shli,
            0x26 => Shri,
            0x27 => Slti,
            0x28 => Movi,
            0x29 => Moviu,
            0x30 => Ld,
            0x31 => St,
            0x32 => Ldb,
            0x33 => Stb,
            0x34 => Ldw,
            0x35 => Stw,
            0x40 => Jmp,
            0x41 => Jmpr,
            0x42 => Beq,
            0x43 => Bne,
            0x44 => Blt,
            0x45 => Bge,
            0x46 => Bltu,
            0x47 => Bgeu,
            0x48 => Call,
            0x49 => Callr,
            0x50 => Fadd,
            0x51 => Fsub,
            0x52 => Fmul,
            0x53 => Fdiv,
            0x54 => Fld,
            0x55 => Fst,
            0x56 => CvtIF,
            0x57 => CvtFI,
            0x58 => Fmovi,
            _ => return None,
        })
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Nop => "nop",
            Halt => "halt",
            Syscall => "syscall",
            Bpt => "bpt",
            Priv => "priv",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Sar => "sar",
            Slt => "slt",
            Sltu => "sltu",
            Addi => "addi",
            Muli => "muli",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Shli => "shli",
            Shri => "shri",
            Slti => "slti",
            Movi => "movi",
            Moviu => "moviu",
            Ld => "ld",
            St => "st",
            Ldb => "ldb",
            Stb => "stb",
            Ldw => "ldw",
            Stw => "stw",
            Jmp => "jmp",
            Jmpr => "jmpr",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Call => "call",
            Callr => "callr",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fld => "fld",
            Fst => "fst",
            CvtIF => "cvtif",
            CvtFI => "cvtfi",
            Fmovi => "fmovi",
        }
    }

    /// All defined opcodes, for exhaustive tests.
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Nop, Halt, Syscall, Bpt, Priv, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Sar,
            Slt, Sltu, Addi, Muli, Andi, Ori, Xori, Shli, Shri, Slti, Movi, Moviu, Ld, St, Ldb,
            Stb, Ldw, Stw, Jmp, Jmpr, Beq, Bne, Blt, Bge, Bltu, Bgeu, Call, Callr, Fadd, Fsub,
            Fmul, Fdiv, Fld, Fst, CvtIF, CvtFI, Fmovi,
        ]
    }
}

/// A decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Insn {
    /// Operation.
    pub op: Opcode,
    /// Destination register field.
    pub rd: u8,
    /// First source register field.
    pub rs1: u8,
    /// Second source register field.
    pub rs2: u8,
    /// Immediate operand (sign-extended to 64 bits where used as a value;
    /// byte displacement relative to the instruction address in branches).
    pub imm: i32,
}

impl Insn {
    /// Builds a register-form instruction.
    pub fn rform(op: Opcode, rd: usize, rs1: usize, rs2: usize) -> Insn {
        Insn { op, rd: rd as u8, rs1: rs1 as u8, rs2: rs2 as u8, imm: 0 }
    }

    /// Builds an immediate-form instruction.
    pub fn iform(op: Opcode, rd: usize, rs1: usize, imm: i32) -> Insn {
        Insn { op, rd: rd as u8, rs1: rs1 as u8, rs2: 0, imm }
    }

    /// Builds a no-operand instruction.
    pub fn bare(op: Opcode) -> Insn {
        Insn { op, rd: 0, rs1: 0, rs2: 0, imm: 0 }
    }

    /// Encodes into the 8-byte wire format.
    pub fn encode(&self) -> [u8; INSN_LEN as usize] {
        let mut b = [0u8; INSN_LEN as usize];
        b[0] = self.op as u8;
        b[1] = self.rd;
        b[2] = self.rs1;
        b[3] = self.rs2;
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }

    /// Decodes from the 8-byte wire format. `None` means the bytes are not
    /// a legal instruction (undefined opcode or out-of-range register
    /// field) and execution of them raises an illegal-instruction fault.
    pub fn decode(b: &[u8; INSN_LEN as usize]) -> Option<Insn> {
        let op = Opcode::from_byte(b[0])?;
        let (rd, rs1, rs2) = (b[1], b[2], b[3]);
        let regs_ok = match op {
            // Floating ops index the 16-entry floating file; CvtIF takes an
            // integer source, CvtFI an integer destination.
            Opcode::Fadd | Opcode::Fsub | Opcode::Fmul | Opcode::Fdiv => {
                rd < 16 && rs1 < 16 && rs2 < 16
            }
            Opcode::Fld | Opcode::Fst => rd < 16 && rs1 < 32,
            Opcode::CvtIF => rd < 16 && rs1 < 32,
            Opcode::CvtFI => rd < 32 && rs1 < 16,
            Opcode::Fmovi => rd < 16,
            _ => rd < 32 && rs1 < 32 && rs2 < 32,
        };
        if !regs_ok {
            return None;
        }
        let mut w = [0u8; 4];
        w.copy_from_slice(&b[4..8]);
        let imm = i32::from_le_bytes(w);
        Some(Insn { op, rd, rs1, rs2, imm })
    }
}

/// The canonical encoding of the approved breakpoint instruction.
pub fn breakpoint_bytes() -> [u8; INSN_LEN as usize] {
    Insn::bare(Opcode::Bpt).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_opcodes_roundtrip_byte() {
        for &op in Opcode::all() {
            assert_eq!(Opcode::from_byte(op as u8), Some(op));
        }
    }

    #[test]
    fn zero_bytes_do_not_decode() {
        assert!(Insn::decode(&[0u8; 8]).is_none());
    }

    #[test]
    fn out_of_range_register_does_not_decode() {
        let mut b = Insn::rform(Opcode::Add, 1, 2, 3).encode();
        b[1] = 32;
        assert!(Insn::decode(&b).is_none());
        let mut b = Insn::rform(Opcode::Fadd, 1, 2, 3).encode();
        b[3] = 16;
        assert!(Insn::decode(&b).is_none());
    }

    #[test]
    fn encode_decode_examples() {
        let i = Insn::iform(Opcode::Addi, 3, 4, -12);
        assert_eq!(Insn::decode(&i.encode()), Some(i));
        let i = Insn::bare(Opcode::Syscall);
        assert_eq!(Insn::decode(&i.encode()), Some(i));
    }

    #[test]
    fn breakpoint_is_bpt() {
        let b = breakpoint_bytes();
        assert_eq!(Insn::decode(&b).map(|i| i.op), Some(Opcode::Bpt));
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
        }
    }

    /// Minimal deterministic xorshift64* generator for randomized tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn decode_never_panics() {
        let mut rng = 0x1157_u64;
        for _ in 0..4096 {
            let bytes = xorshift(&mut rng).to_le_bytes();
            let _ = Insn::decode(&bytes);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = 0xDEC0DE_u64;
        for _ in 0..4096 {
            let op = Opcode::all()[xorshift(&mut rng) as usize % Opcode::all().len()];
            let i = Insn {
                op,
                rd: (xorshift(&mut rng) % 16) as u8,
                rs1: (xorshift(&mut rng) % 16) as u8,
                rs2: (xorshift(&mut rng) % 16) as u8,
                imm: xorshift(&mut rng) as i32,
            };
            assert_eq!(Insn::decode(&i.encode()), Some(i));
        }
    }
}
