//! Per-LWP superblock cache: traced straight-line runs of decoded
//! instructions.
//!
//! The decoded-instruction cache ([`crate::icache`]) removes the decode
//! cost but still pays one bus round trip per instruction. A superblock
//! removes the round trip too: a trace of up to [`SBLOCK_CAP`] decoded
//! instructions, pre-validated against one text page, that the CPU
//! executes in a single dispatch. Traces follow statically predictable
//! control flow — fall-through, direct jumps and calls, and backward
//! conditional branches predicted taken (the hot-loop case, which lets a
//! small loop unroll to fill the block) — and end at indirect or
//! trapping instructions, the page boundary, or capacity.
//!
//! Correctness never rests on the prediction: every slot carries its pc,
//! and the CPU compares it against the live pc before executing, side-
//! exiting the block on the first mismatch. Validity rests on three
//! stamps checked before dispatch, exactly the icache discipline:
//!
//! * the address-space generation (`as_gen`) — any structural change or
//!   watchpoint add/remove moves it;
//! * the *page* content epoch of the block's text page — a breakpoint
//!   plant or other write into that page moves it (writes to other
//!   pages of the same mapping do not: the dense-breakpoint case);
//! * the object store's content generation — shared-object writes from
//!   other processes move it.
//!
//! Like the icache, this cache is policy-free: the kernel's bus decides
//! what is traceable (see `sblock_slot` in the VM layer) and validates
//! stamps; the cache stores and serves.

use crate::cpu::BlockExit;
use crate::insn::{Insn, Opcode};

/// Number of sets (power of two). Keyed by entry pc; sized to hold the
/// block heads of several pages of straight-line code at once (a full
/// trace covers `SBLOCK_CAP * 8` bytes, so one page holds 16 heads).
const SBLOCK_SETS: usize = 128;

/// Ways per set. Two-way associativity with most-recently-used
/// protection stops the ping-pong eviction a direct-mapped cache
/// suffers when two live heads alias (a quantum-boundary resume pc
/// landing mid-trace of a loop body is the common case).
const SBLOCK_ASSOC: usize = 2;

/// Maximum instructions a single block dispatch executes. Bounds the
/// latency between quantum checks, so block execution can honour the
/// same budget the per-instruction loop does.
pub const SBLOCK_CAP: usize = 32;

/// One traced instruction: the decoded form plus the pc it must execute
/// at. The pc doubles as the side-exit check during dispatch.
#[derive(Clone, Copy, Debug)]
pub struct BlockSlot {
    /// Program counter this instruction executes at.
    pub pc: u64,
    /// The decoded instruction.
    pub insn: Insn,
}

impl Default for BlockSlot {
    fn default() -> BlockSlot {
        BlockSlot { pc: 0, insn: Insn::bare(Opcode::Nop) }
    }
}

/// A validated trace rooted at `start_pc`, wholly inside one text page.
#[derive(Clone, Debug)]
pub struct SuperBlock {
    /// Entry pc (the probe key).
    pub start_pc: u64,
    /// Address-space generation at build time (0 = empty way; address
    /// spaces never use generation 0).
    pub as_gen: u64,
    /// Index of the backing mapping at build time (meaningful only
    /// while `as_gen` is current).
    pub map_idx: u32,
    /// Content epoch of the block's text page at build time.
    pub epoch: u64,
    /// Object-store content generation at build time.
    pub content_gen: u64,
    /// The traced instructions, in predicted execution order.
    pub slots: Vec<BlockSlot>,
}

/// Superblock counters; `PIOCXSTATS` reports the per-process sum over
/// all LWPs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SBlockStats {
    /// Blocks traced and installed.
    pub built: u64,
    /// Block dispatches (a fresh build dispatches immediately too).
    pub dispatched: u64,
    /// Instructions retired inside block dispatches.
    pub insns: u64,
    /// Dispatches that ran the whole trace.
    pub exit_end: u64,
    /// Dispatches that side-exited on a pc mismatch (untaken
    /// prediction).
    pub exit_side: u64,
    /// Dispatches ended by a trapping instruction (syscall, breakpoint,
    /// fault).
    pub exit_trap: u64,
    /// Dispatches cut short by the quantum budget.
    pub exit_budget: u64,
    /// Probes that matched on pc but failed stamp validation (the
    /// page-epoch / generation invalidation count).
    pub stale: u64,
}

/// A per-LWP two-way set-associative superblock cache. `Clone` because
/// LWPs are cloned wholesale in places; fork/exec paths construct fresh
/// LWPs, so children start cold.
#[derive(Clone, Debug)]
pub struct SBlockCache {
    /// `SBLOCK_SETS * SBLOCK_ASSOC` entries, set-major.
    ways: Vec<SuperBlock>,
    /// Per-set index of the most recently probed-or-inserted way.
    mru: Vec<u8>,
    stats: SBlockStats,
}

impl Default for SBlockCache {
    fn default() -> SBlockCache {
        SBlockCache::new()
    }
}

impl SBlockCache {
    /// An empty cache.
    pub fn new() -> SBlockCache {
        let empty = SuperBlock {
            start_pc: 0,
            as_gen: 0,
            map_idx: 0,
            epoch: 0,
            content_gen: 0,
            slots: Vec::new(),
        };
        SBlockCache {
            ways: vec![empty; SBLOCK_SETS * SBLOCK_ASSOC],
            mru: vec![0; SBLOCK_SETS],
            stats: SBlockStats::default(),
        }
    }

    /// Set selector. Straight-line code produces block heads exactly
    /// `SBLOCK_CAP * 8` (= 256) bytes apart; using the instruction index
    /// alone would alias them all onto a handful of sets, so the
    /// block-grain bits (`pc >> 8`) are folded in. The fold is a
    /// bijection over any 128-head run at either stride (8-byte loop
    /// heads or 256-byte trace heads), so sequential code fills the
    /// cache instead of fighting over two sets.
    #[inline]
    fn index(pc: u64) -> usize {
        (((pc >> 3) ^ (pc >> 8)) as usize) & (SBLOCK_SETS - 1)
    }

    /// Returns the block rooted at exactly `pc`, if one is installed,
    /// and marks its way most-recently-used. The caller must still
    /// validate the stamps; call [`SBlockCache::note_stale`] when they
    /// have moved.
    #[inline]
    pub fn probe(&mut self, pc: u64) -> Option<&SuperBlock> {
        let set = Self::index(pc);
        for way in 0..SBLOCK_ASSOC {
            let b = &self.ways[set * SBLOCK_ASSOC + way];
            if b.as_gen != 0 && b.start_pc == pc {
                self.mru[set] = way as u8;
                return Some(&self.ways[set * SBLOCK_ASSOC + way]);
            }
        }
        None
    }

    /// Installs (or replaces) the block rooted at its `start_pc`. An
    /// existing block with the same head is replaced in place; otherwise
    /// an empty way, then the least-recently-used way, takes it.
    pub fn insert(&mut self, block: SuperBlock) {
        self.stats.built += 1;
        let set = Self::index(block.start_pc);
        let slot = |way: usize| set * SBLOCK_ASSOC + way;
        let way = (0..SBLOCK_ASSOC)
            .find(|&w| {
                let b = &self.ways[slot(w)];
                b.as_gen != 0 && b.start_pc == block.start_pc
            })
            .or_else(|| (0..SBLOCK_ASSOC).find(|&w| self.ways[slot(w)].as_gen == 0))
            .unwrap_or_else(|| (self.mru[set] as usize + 1) % SBLOCK_ASSOC);
        self.ways[slot(way)] = block;
        self.mru[set] = way as u8;
    }

    /// Records a block dispatch.
    #[inline]
    pub fn note_dispatch(&mut self) {
        self.stats.dispatched += 1;
    }

    /// Records how a dispatch ended and how many instructions it
    /// retired.
    pub fn note_exit(&mut self, exit: BlockExit, retired: u64) {
        self.stats.insns += retired;
        match exit {
            BlockExit::End => self.stats.exit_end += 1,
            BlockExit::Side => self.stats.exit_side += 1,
            BlockExit::Trap => self.stats.exit_trap += 1,
            BlockExit::Budget => self.stats.exit_budget += 1,
        }
    }

    /// Records a probe that matched on pc but failed stamp validation.
    #[inline]
    pub fn note_stale(&mut self) {
        self.stats.stale += 1;
    }

    /// Drops every block (exec within the same LWP identity).
    pub fn clear(&mut self) {
        for b in &mut self.ways {
            b.as_gen = 0;
            b.slots.clear();
        }
    }

    /// The superblock counters.
    pub fn stats(&self) -> SBlockStats {
        self.stats
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn block(pc: u64, as_gen: u64, n: usize) -> SuperBlock {
        let slots = (0..n)
            .map(|i| BlockSlot { pc: pc + 8 * i as u64, insn: Insn::bare(Opcode::Nop) })
            .collect();
        SuperBlock { start_pc: pc, as_gen, map_idx: 0, epoch: 0, content_gen: 0, slots }
    }

    #[test]
    fn probe_misses_empty_and_hits_after_insert() {
        let mut c = SBlockCache::new();
        assert!(c.probe(0x1000).is_none());
        c.insert(block(0x1000, 1, 3));
        assert_eq!(c.probe(0x1000).expect("installed").slots.len(), 3);
        assert_eq!(c.stats().built, 1);
        // A pc that was never inserted misses on the key.
        assert!(c.probe(0x1000 + (SBLOCK_SETS as u64) * 8).is_none());
    }

    #[test]
    fn exit_counters_split_by_reason() {
        let mut c = SBlockCache::new();
        c.note_exit(BlockExit::End, 5);
        c.note_exit(BlockExit::Side, 2);
        c.note_exit(BlockExit::Trap, 1);
        c.note_exit(BlockExit::Budget, 7);
        let st = c.stats();
        assert_eq!(st.insns, 15);
        assert_eq!((st.exit_end, st.exit_side, st.exit_trap, st.exit_budget), (1, 1, 1, 1));
    }

    #[test]
    fn clear_empties_every_way() {
        let mut c = SBlockCache::new();
        c.insert(block(0x2000, 4, 2));
        c.clear();
        assert!(c.probe(0x2000).is_none());
    }
}
