//! A two-pass assembler for the procsim machine.
//!
//! The simulated userland (the programs that `ps`, `truss` and the
//! debugger operate on) is written in this assembly dialect rather than as
//! hand-encoded byte arrays. The dialect is deliberately small:
//!
//! ```text
//! ; comment        # comment
//! .text                    ; switch to the text section (default)
//! .data                    ; switch to the data section
//! .word  <imm|label>       ; emit 8 bytes
//! .byte  <imm>             ; emit 1 byte
//! .asciz "string"          ; emit bytes + NUL
//! .space <n>               ; emit n zero bytes
//! .align <n>               ; pad to an n-byte boundary
//!
//! _start:                  ; entry point if present
//!     movi  a0, 42
//!     la    a1, msg        ; pseudo: address of a label
//!     li    a2, 0x12345678 ; pseudo: load a (possibly 64-bit) constant
//!     mov   a3, a0         ; pseudo: add a3, a0, zero
//!     push  a0             ; pseudo: addi sp, sp, -8; st a0, [sp]
//!     pop   a0             ; pseudo: ld a0, [sp]; addi sp, sp, 8
//!     ld    a0, [sp+16]
//!     st    a0, [a1]
//!     beq   a0, zero, done
//!     jmp   loop
//!     call  func
//!     ret                  ; pseudo: jmpr ra
//!     syscall
//! ```
//!
//! Text is placed at a configurable base (default [`DEFAULT_TEXT_BASE`]);
//! the data section follows at the next page boundary. Branch, `jmp` and
//! `call` label operands become displacements relative to the instruction.

use crate::insn::{Insn, Opcode, INSN_LEN};
use crate::reg::{parse_freg, parse_reg, REG_RA, REG_SP};
use std::collections::BTreeMap;
use std::fmt;

/// Default base virtual address of the text section of an ordinary a.out.
pub const DEFAULT_TEXT_BASE: u64 = 0x0100_0000;

/// Page granularity used when placing the data section after the text.
const SECTION_ALIGN: u64 = 4096;

/// Assembler output: raw sections plus the symbol table.
#[derive(Clone, Debug, Default)]
pub struct Assembly {
    /// Encoded text (instruction) section.
    pub text: Vec<u8>,
    /// Base virtual address of the text section.
    pub text_base: u64,
    /// Raw data section.
    pub data: Vec<u8>,
    /// Base virtual address of the data section.
    pub data_base: u64,
    /// Label name to virtual address.
    pub symbols: BTreeMap<String, u64>,
    /// Entry point: address of `_start` if defined, else `text_base`.
    pub entry: u64,
}

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Assembles `src` with the default text base. See the module docs for the
/// dialect.
pub fn assemble(src: &str) -> Result<Assembly, AsmError> {
    assemble_at(src, DEFAULT_TEXT_BASE)
}

/// Assembles `src` with an explicit text base (shared libraries are
/// assembled at their link base).
pub fn assemble_at(src: &str, text_base: u64) -> Result<Assembly, AsmError> {
    let items = parse(src)?;

    // Pass 1: size sections, then place labels.
    let mut text_len = 0u64;
    let mut data_len = 0u64;
    for item in &items {
        let len = item.kind.size(item.line)?;
        match item.section {
            Section::Text => text_len += len,
            Section::Data => data_len += len,
        }
    }
    let _ = data_len;
    let data_base = align_up(text_base + text_len, SECTION_ALIGN).max(text_base + SECTION_ALIGN);

    let mut symbols = BTreeMap::new();
    let mut tpos = text_base;
    let mut dpos = data_base;
    for item in &items {
        let pos = match item.section {
            Section::Text => &mut tpos,
            Section::Data => &mut dpos,
        };
        if let ItemKind::Label(name) = &item.kind {
            if symbols.insert(name.clone(), *pos).is_some() {
                return Err(err(item.line, format!("duplicate label `{name}`")));
            }
        }
        // `.align` padding depends on the current position, so re-derive
        // sizes here identically to the sizing pass.
        *pos += item.kind.size_at(*pos, item.line)?;
    }

    // Pass 2: encode.
    let mut asmout = Assembly {
        text_base,
        data_base,
        symbols,
        entry: 0,
        ..Default::default()
    };
    let mut tpos = text_base;
    let mut dpos = data_base;
    for item in &items {
        let (pos, out) = match item.section {
            Section::Text => (&mut tpos, &mut asmout.text),
            Section::Data => (&mut dpos, &mut asmout.data),
        };
        let here = *pos;
        *pos += item.kind.size_at(here, item.line)?;
        item.kind.emit(here, &asmout.symbols, out, item.line)?;
    }
    asmout.entry = *asmout.symbols.get("_start").unwrap_or(&text_base);
    Ok(asmout)
}

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError { line, msg: msg.into() }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Clone, Debug)]
struct Item {
    line: usize,
    section: Section,
    kind: ItemKind,
}

/// Operand for an immediate slot: literal or label reference.
#[derive(Clone, Debug)]
enum ImmRef {
    Lit(i64),
    Label(String),
}

impl ImmRef {
    /// Resolves to an absolute value.
    fn resolve(&self, symbols: &BTreeMap<String, u64>, line: usize) -> Result<i64, AsmError> {
        match self {
            ImmRef::Lit(v) => Ok(*v),
            ImmRef::Label(name) => symbols
                .get(name)
                .map(|&a| a as i64)
                .ok_or_else(|| err(line, format!("undefined label `{name}`"))),
        }
    }

    /// Resolves for a branch slot: labels become displacements from `pc`,
    /// literals are used verbatim.
    fn resolve_rel(
        &self,
        pc: u64,
        symbols: &BTreeMap<String, u64>,
        line: usize,
    ) -> Result<i64, AsmError> {
        match self {
            ImmRef::Lit(v) => Ok(*v),
            ImmRef::Label(_) => Ok(self.resolve(symbols, line)? - pc as i64),
        }
    }
}

#[derive(Clone, Debug)]
enum ItemKind {
    Label(String),
    /// One machine instruction; the `bool` marks branch-relative immediate
    /// resolution.
    Insn {
        op: Opcode,
        rd: u8,
        rs1: u8,
        rs2: u8,
        imm: ImmRef,
        rel: bool,
    },
    /// `li rd, imm` — expands to `movi` or `movi`+`moviu`.
    Li { rd: u8, value: i64 },
    /// `push rs`
    Push { rs: u8 },
    /// `pop rd`
    Pop { rd: u8 },
    Word(ImmRef),
    Byte(i64),
    Asciz(String),
    Space(u64),
    Align(u64),
}

impl ItemKind {
    /// Size, independent of position (errors on impossible directives).
    fn size(&self, line: usize) -> Result<u64, AsmError> {
        Ok(match self {
            ItemKind::Label(_) => 0,
            ItemKind::Insn { .. } => INSN_LEN,
            ItemKind::Li { value, .. } => {
                if li_needs_upper(*value) {
                    2 * INSN_LEN
                } else {
                    INSN_LEN
                }
            }
            ItemKind::Push { .. } | ItemKind::Pop { .. } => 2 * INSN_LEN,
            ItemKind::Word(_) => 8,
            ItemKind::Byte(_) => 1,
            ItemKind::Asciz(s) => s.len() as u64 + 1,
            ItemKind::Space(n) => *n,
            ItemKind::Align(n) => {
                if !n.is_power_of_two() {
                    return Err(err(line, ".align requires a power of two"));
                }
                // Worst case; position-dependent size handled in size_at.
                0
            }
        })
    }

    /// Size given the current position (needed for `.align`).
    fn size_at(&self, pos: u64, line: usize) -> Result<u64, AsmError> {
        match self {
            ItemKind::Align(n) => {
                if !n.is_power_of_two() {
                    return Err(err(line, ".align requires a power of two"));
                }
                Ok(align_up(pos, *n) - pos)
            }
            _ => self.size(line),
        }
    }

    fn emit(
        &self,
        here: u64,
        symbols: &BTreeMap<String, u64>,
        out: &mut Vec<u8>,
        line: usize,
    ) -> Result<(), AsmError> {
        match self {
            ItemKind::Label(_) => {}
            ItemKind::Insn { op, rd, rs1, rs2, imm, rel } => {
                let v = if *rel {
                    imm.resolve_rel(here, symbols, line)?
                } else {
                    imm.resolve(symbols, line)?
                };
                let imm32 = i32::try_from(v)
                    .map_err(|_| err(line, format!("immediate {v} does not fit in 32 bits")))?;
                out.extend_from_slice(
                    &Insn { op: *op, rd: *rd, rs1: *rs1, rs2: *rs2, imm: imm32 }.encode(),
                );
            }
            ItemKind::Li { rd, value } => {
                let lo = *value as u32 as i32;
                out.extend_from_slice(
                    &Insn { op: Opcode::Movi, rd: *rd, rs1: 0, rs2: 0, imm: lo }.encode(),
                );
                if li_needs_upper(*value) {
                    let hi = (*value as u64 >> 32) as u32 as i32;
                    out.extend_from_slice(
                        &Insn { op: Opcode::Moviu, rd: *rd, rs1: 0, rs2: 0, imm: hi }.encode(),
                    );
                }
            }
            ItemKind::Push { rs } => {
                out.extend_from_slice(
                    &Insn::iform(Opcode::Addi, REG_SP, REG_SP, -8).encode(),
                );
                out.extend_from_slice(
                    &Insn { op: Opcode::St, rd: *rs, rs1: REG_SP as u8, rs2: 0, imm: 0 }.encode(),
                );
            }
            ItemKind::Pop { rd } => {
                out.extend_from_slice(
                    &Insn { op: Opcode::Ld, rd: *rd, rs1: REG_SP as u8, rs2: 0, imm: 0 }.encode(),
                );
                out.extend_from_slice(
                    &Insn::iform(Opcode::Addi, REG_SP, REG_SP, 8).encode(),
                );
            }
            ItemKind::Word(imm) => {
                let v = imm.resolve(symbols, line)?;
                out.extend_from_slice(&(v as u64).to_le_bytes());
            }
            ItemKind::Byte(v) => out.push(*v as u8),
            ItemKind::Asciz(s) => {
                out.extend_from_slice(s.as_bytes());
                out.push(0);
            }
            ItemKind::Space(n) => out.extend(std::iter::repeat_n(0u8, *n as usize)),
            ItemKind::Align(n) => {
                let pad = align_up(here, *n) - here;
                out.extend(std::iter::repeat_n(0u8, pad as usize));
            }
        }
        Ok(())
    }
}

/// `li` needs a `moviu` when the sign-extended low half does not already
/// reproduce the full value.
fn li_needs_upper(v: i64) -> bool {
    (v as u32 as i32 as i64) != v
}

fn parse(src: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    let mut section = Section::Text;
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let code = strip_comment(raw);
        let mut rest = code.trim();
        // Leading labels (allow several on one line).
        while let Some(colon) = find_label(rest) {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if !is_ident(name) {
                return Err(err(line, format!("bad label `{name}`")));
            }
            items.push(Item { line, section, kind: ItemKind::Label(name.to_string()) });
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(dir) = rest.strip_prefix('.') {
            let (name, args) = split_word(dir);
            match name {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "word" => {
                    let arg = args.trim();
                    let imm = parse_immref(arg, line)?;
                    items.push(Item { line, section, kind: ItemKind::Word(imm) });
                }
                "byte" => {
                    let v = parse_int(args.trim(), line)?;
                    items.push(Item { line, section, kind: ItemKind::Byte(v) });
                }
                "asciz" => {
                    let s = parse_string(args.trim(), line)?;
                    items.push(Item { line, section, kind: ItemKind::Asciz(s) });
                }
                "space" => {
                    let v = parse_int(args.trim(), line)?;
                    if v < 0 {
                        return Err(err(line, ".space requires a non-negative size"));
                    }
                    items.push(Item { line, section, kind: ItemKind::Space(v as u64) });
                }
                "align" => {
                    let v = parse_int(args.trim(), line)?;
                    if v <= 0 {
                        return Err(err(line, ".align requires a positive power of two"));
                    }
                    items.push(Item { line, section, kind: ItemKind::Align(v as u64) });
                }
                other => return Err(err(line, format!("unknown directive .{other}"))),
            }
            continue;
        }
        items.push(parse_insn(rest, line, section)?);
    }
    Ok(items)
}

/// Finds the colon ending a leading label, ignoring colons inside quotes
/// (none can occur before an instruction anyway) and requiring the label
/// text to be a plain identifier.
fn find_label(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    if is_ident(s[..colon].trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn strip_comment(s: &str) -> &str {
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &s[..i],
            _ => {}
        }
    }
    s
}

fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    if let Some(ch) = s.strip_prefix('\'') {
        let mut chars = ch.chars();
        if let (Some(c), Some('\'')) = (chars.next(), chars.next()) {
            return Ok(c as i64);
        }
        return Err(err(line, format!("bad character literal {s}")));
    }
    let cleaned: String = s.chars().filter(|&c| c != '_').collect();
    let s = cleaned.as_str();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
            .or_else(|_| u64::from_str_radix(hex, 16).map(|v| v as i64))
            .map_err(|_| err(line, format!("bad integer `{s}`")))?
    } else {
        body.parse::<i64>().map_err(|_| err(line, format!("bad integer `{s}`")))?
    };
    Ok(if neg { -v } else { v })
}

fn parse_immref(s: &str, line: usize) -> Result<ImmRef, AsmError> {
    let s = s.trim();
    if is_ident(s) && parse_reg(s).is_none() {
        Ok(ImmRef::Label(s.to_string()))
    } else {
        Ok(ImmRef::Lit(parse_int(s, line)?))
    }
}

fn parse_string(s: &str, line: usize) -> Result<String, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(line, "expected quoted string"))?;
    // Minimal escapes.
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => return Err(err(line, format!("bad escape \\{other:?}"))),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Parses a `[reg]`, `[reg+imm]` or `[reg-imm]` memory operand.
fn parse_memop(s: &str, line: usize) -> Result<(u8, i64), AsmError> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected memory operand `[reg+imm]`, got `{s}`")))?
        .trim();
    let (reg_s, off) = if let Some(plus) = inner.find('+') {
        (&inner[..plus], parse_int(&inner[plus + 1..], line)?)
    } else if let Some(minus) = inner[1..].find('-') {
        let minus = minus + 1;
        (&inner[..minus], -parse_int(&inner[minus + 1..], line)?)
    } else {
        (inner, 0)
    };
    let r = parse_reg(reg_s.trim())
        .ok_or_else(|| err(line, format!("bad base register `{}`", reg_s.trim())))?;
    Ok((r as u8, off))
}

fn operands(s: &str) -> Vec<&str> {
    s.split(',').map(str::trim).filter(|t| !t.is_empty()).collect()
}

fn want_reg(s: &str, line: usize) -> Result<u8, AsmError> {
    parse_reg(s)
        .map(|r| r as u8)
        .ok_or_else(|| err(line, format!("expected register, got `{s}`")))
}

fn want_freg(s: &str, line: usize) -> Result<u8, AsmError> {
    parse_freg(s)
        .map(|r| r as u8)
        .ok_or_else(|| err(line, format!("expected floating register, got `{s}`")))
}

fn parse_insn(s: &str, line: usize, section: Section) -> Result<Item, AsmError> {
    use Opcode::*;
    let (mn, rest) = split_word(s);
    let ops = operands(rest);
    let mk = |op, rd, rs1, rs2, imm, rel| Item {
        line,
        section,
        kind: ItemKind::Insn { op, rd, rs1, rs2, imm, rel },
    };
    let lit0 = ImmRef::Lit(0);

    let item = match mn {
        "nop" | "halt" | "syscall" | "bpt" | "priv" => {
            let op = match mn {
                "nop" => Nop,
                "halt" => Halt,
                "syscall" => Syscall,
                "bpt" => Bpt,
                _ => Priv,
            };
            if !ops.is_empty() {
                return Err(err(line, format!("{mn} takes no operands")));
            }
            mk(op, 0, 0, 0, lit0, false)
        }
        "add" | "sub" | "mul" | "div" | "rem" | "and" | "or" | "xor" | "shl" | "shr" | "sar"
        | "slt" | "sltu" => {
            let op = match mn {
                "add" => Add,
                "sub" => Sub,
                "mul" => Mul,
                "div" => Div,
                "rem" => Rem,
                "and" => And,
                "or" => Or,
                "xor" => Xor,
                "shl" => Shl,
                "shr" => Shr,
                "sar" => Sar,
                "slt" => Slt,
                _ => Sltu,
            };
            if ops.len() != 3 {
                return Err(err(line, format!("{mn} rd, rs1, rs2")));
            }
            mk(
                op,
                want_reg(ops[0], line)?,
                want_reg(ops[1], line)?,
                want_reg(ops[2], line)?,
                lit0,
                false,
            )
        }
        "addi" | "muli" | "andi" | "ori" | "xori" | "shli" | "shri" | "slti" => {
            let op = match mn {
                "addi" => Addi,
                "muli" => Muli,
                "andi" => Andi,
                "ori" => Ori,
                "xori" => Xori,
                "shli" => Shli,
                "shri" => Shri,
                _ => Slti,
            };
            if ops.len() != 3 {
                return Err(err(line, format!("{mn} rd, rs1, imm")));
            }
            mk(
                op,
                want_reg(ops[0], line)?,
                want_reg(ops[1], line)?,
                0,
                ImmRef::Lit(parse_int(ops[2], line)?),
                false,
            )
        }
        "movi" | "la" => {
            if ops.len() != 2 {
                return Err(err(line, format!("{mn} rd, imm|label")));
            }
            mk(Movi, want_reg(ops[0], line)?, 0, 0, parse_immref(ops[1], line)?, false)
        }
        "moviu" => {
            if ops.len() != 2 {
                return Err(err(line, "moviu rd, imm".to_string()));
            }
            mk(Moviu, want_reg(ops[0], line)?, 0, 0, ImmRef::Lit(parse_int(ops[1], line)?), false)
        }
        "li" => {
            if ops.len() != 2 {
                return Err(err(line, "li rd, imm".to_string()));
            }
            Item {
                line,
                section,
                kind: ItemKind::Li { rd: want_reg(ops[0], line)?, value: parse_int(ops[1], line)? },
            }
        }
        "mov" => {
            if ops.len() != 2 {
                return Err(err(line, "mov rd, rs".to_string()));
            }
            mk(Add, want_reg(ops[0], line)?, want_reg(ops[1], line)?, 0, lit0, false)
        }
        "push" => {
            if ops.len() != 1 {
                return Err(err(line, "push rs".to_string()));
            }
            Item { line, section, kind: ItemKind::Push { rs: want_reg(ops[0], line)? } }
        }
        "pop" => {
            if ops.len() != 1 {
                return Err(err(line, "pop rd".to_string()));
            }
            Item { line, section, kind: ItemKind::Pop { rd: want_reg(ops[0], line)? } }
        }
        "ld" | "ldb" | "ldw" | "st" | "stb" | "stw" => {
            let op = match mn {
                "ld" => Ld,
                "ldb" => Ldb,
                "ldw" => Ldw,
                "st" => St,
                "stb" => Stb,
                _ => Stw,
            };
            if ops.len() != 2 {
                return Err(err(line, format!("{mn} r, [base+imm]")));
            }
            let (base, off) = parse_memop(ops[1], line)?;
            let offi = i32::try_from(off).map_err(|_| err(line, "offset too large"))?;
            mk(op, want_reg(ops[0], line)?, base, 0, ImmRef::Lit(offi as i64), false)
        }
        "fld" | "fst" => {
            let op = if mn == "fld" { Fld } else { Fst };
            if ops.len() != 2 {
                return Err(err(line, format!("{mn} f, [base+imm]")));
            }
            let (base, off) = parse_memop(ops[1], line)?;
            mk(op, want_freg(ops[0], line)?, base, 0, ImmRef::Lit(off), false)
        }
        "fadd" | "fsub" | "fmul" | "fdiv" => {
            let op = match mn {
                "fadd" => Fadd,
                "fsub" => Fsub,
                "fmul" => Fmul,
                _ => Fdiv,
            };
            if ops.len() != 3 {
                return Err(err(line, format!("{mn} fd, fs1, fs2")));
            }
            mk(
                op,
                want_freg(ops[0], line)?,
                want_freg(ops[1], line)?,
                want_freg(ops[2], line)?,
                lit0,
                false,
            )
        }
        "fmovi" => {
            if ops.len() != 2 {
                return Err(err(line, "fmovi fd, imm".to_string()));
            }
            mk(Fmovi, want_freg(ops[0], line)?, 0, 0, ImmRef::Lit(parse_int(ops[1], line)?), false)
        }
        "cvtif" => {
            if ops.len() != 2 {
                return Err(err(line, "cvtif fd, rs".to_string()));
            }
            mk(CvtIF, want_freg(ops[0], line)?, want_reg(ops[1], line)?, 0, lit0, false)
        }
        "cvtfi" => {
            if ops.len() != 2 {
                return Err(err(line, "cvtfi rd, fs".to_string()));
            }
            mk(CvtFI, want_reg(ops[0], line)?, want_freg(ops[1], line)?, 0, lit0, false)
        }
        "jmp" => {
            if ops.len() != 1 {
                return Err(err(line, "jmp label|imm".to_string()));
            }
            mk(Jmp, 0, 0, 0, parse_immref(ops[0], line)?, true)
        }
        "jmpr" => {
            if ops.len() != 1 {
                return Err(err(line, "jmpr rs".to_string()));
            }
            mk(Jmpr, 0, want_reg(ops[0], line)?, 0, lit0, false)
        }
        "call" => {
            if ops.len() != 1 {
                return Err(err(line, "call label|imm".to_string()));
            }
            mk(Call, 0, 0, 0, parse_immref(ops[0], line)?, true)
        }
        "callr" => {
            if ops.len() != 1 {
                return Err(err(line, "callr rs".to_string()));
            }
            mk(Callr, 0, want_reg(ops[0], line)?, 0, lit0, false)
        }
        "ret" => {
            if !ops.is_empty() {
                return Err(err(line, "ret takes no operands".to_string()));
            }
            mk(Jmpr, 0, REG_RA as u8, 0, lit0, false)
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            let op = match mn {
                "beq" => Beq,
                "bne" => Bne,
                "blt" => Blt,
                "bge" => Bge,
                "bltu" => Bltu,
                _ => Bgeu,
            };
            if ops.len() != 3 {
                return Err(err(line, format!("{mn} rs1, rs2, label|imm")));
            }
            mk(
                op,
                0,
                want_reg(ops[0], line)?,
                want_reg(ops[1], line)?,
                parse_immref(ops[2], line)?,
                true,
            )
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    };
    Ok(item)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::cpu::{Bus, BusFault, Cpu, RunExit, StepEvent};
    use crate::reg::{FpregSet, GregSet};
    use std::collections::HashMap;

    struct Flat(HashMap<u64, u8>);

    impl Flat {
        fn from_assembly(a: &Assembly) -> Flat {
            let mut m = HashMap::new();
            for (i, b) in a.text.iter().enumerate() {
                m.insert(a.text_base + i as u64, *b);
            }
            for (i, b) in a.data.iter().enumerate() {
                m.insert(a.data_base + i as u64, *b);
            }
            Flat(m)
        }
    }

    impl Bus for Flat {
        fn fetch(&mut self, addr: u64, buf: &mut [u8; 8]) -> Result<(), BusFault> {
            self.load(addr, buf)
        }
        fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), BusFault> {
            for (i, out) in buf.iter_mut().enumerate() {
                *out = *self.0.get(&(addr + i as u64)).unwrap_or(&0);
            }
            Ok(())
        }
        fn store(&mut self, addr: u64, data: &[u8]) -> Result<(), BusFault> {
            for (i, b) in data.iter().enumerate() {
                self.0.insert(addr + i as u64, *b);
            }
            Ok(())
        }
    }

    fn run(src: &str) -> (GregSet, StepEvent) {
        let a = assemble(src).expect("assembles");
        let mut mem = Flat::from_assembly(&a);
        let mut g = GregSet::at(a.entry);
        g.set_sp(0x0090_0000);
        let mut f = FpregSet::default();
        match Cpu::new().run(&mut g, &mut f, &mut mem, 1_000_000) {
            (_, RunExit::Event(ev)) => (g, ev),
            (_, RunExit::Quantum) => panic!("did not trap"),
        }
    }

    #[test]
    fn factorial_program() {
        let (g, ev) = run(r#"
            ; compute 6! in a0
            _start:
                movi a0, 1
                movi a1, 6
            loop:
                beq  a1, zero, done
                mul  a0, a0, a1
                addi a1, a1, -1
                jmp  loop
            done:
                syscall
        "#);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.arg(0), 720);
    }

    #[test]
    fn data_section_and_la() {
        let (g, ev) = run(r#"
            _start:
                la   a0, msg
                ldb  a1, [a0]       ; 'h'
                ldb  a2, [a0+1]     ; 'i'
                la   a3, val
                ld   a4, [a3]
                syscall
            .data
            msg: .asciz "hi"
            .align 8
            val: .word 4242
        "#);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.arg(1), 'h' as u64);
        assert_eq!(g.arg(2), 'i' as u64);
        assert_eq!(g.arg(4), 4242);
    }

    #[test]
    fn word_of_label_stores_address() {
        let a = assemble(".data\nptr: .word target\ntarget: .word 1").expect("assembles");
        let ptr = a.symbols["ptr"];
        let target = a.symbols["target"];
        let off = (ptr - a.data_base) as usize;
        let stored = u64::from_le_bytes(a.data[off..off + 8].try_into().expect("8 bytes"));
        assert_eq!(stored, target);
    }

    #[test]
    fn push_pop_li_mov() {
        let (g, ev) = run(r#"
            _start:
                li   a0, 0x1_0000_0001  ; needs moviu
                mov  a1, a0
                push a1
                movi a1, 0
                pop  a2
                syscall
        "#);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.arg(0), 0x1_0000_0001);
        assert_eq!(g.arg(2), 0x1_0000_0001);
        assert_eq!(g.sp(), 0x0090_0000, "stack is balanced");
    }

    #[test]
    fn call_ret() {
        let (g, ev) = run(r#"
            _start:
                movi a0, 5
                call double
                syscall
            double:
                add  a0, a0, a0
                ret
        "#);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.arg(0), 10);
    }

    #[test]
    fn negative_memop_offset() {
        let (g, ev) = run(r#"
            _start:
                movi a0, 77
                st   a0, [sp-8]
                ld   a1, [sp-8]
                syscall
        "#);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.arg(1), 77);
    }

    #[test]
    fn entry_defaults_to_text_base() {
        let a = assemble("nop\nsyscall").expect("assembles");
        assert_eq!(a.entry, a.text_base);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x:\nx:\n").expect_err("duplicate");
        assert!(e.msg.contains("duplicate"), "{e}");
    }

    #[test]
    fn undefined_label_rejected() {
        let e = assemble("jmp nowhere").expect_err("undefined");
        assert!(e.msg.contains("undefined"), "{e}");
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("frobnicate a0").expect_err("unknown");
        assert!(e.msg.contains("unknown mnemonic"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines() {
        let a = assemble("# leading\n  ; also\n nop ; trailing\n\n").expect("assembles");
        assert_eq!(a.text.len(), 8);
    }

    #[test]
    fn hex_char_and_negative_ints() {
        let (g, ev) = run("_start: movi a0, 0x10\nmovi a1, 'A'\nmovi a2, -3\nsyscall");
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.arg(0), 16);
        assert_eq!(g.arg(1), 65);
        assert_eq!(g.arg(2) as i64, -3);
    }

    #[test]
    fn custom_text_base() {
        let a = assemble_at("_start: jmp _start", 0x4000_0000).expect("assembles");
        assert_eq!(a.text_base, 0x4000_0000);
        assert_eq!(a.entry, 0x4000_0000);
        assert!(a.data_base > a.text_base);
    }

    #[test]
    fn branch_numeric_offset_is_relative_verbatim() {
        // jmp 0 is a self-loop; run for a bounded quantum.
        let a = assemble("_start: jmp 0").expect("assembles");
        let mut mem = Flat::from_assembly(&a);
        let mut g = GregSet::at(a.entry);
        let mut f = FpregSet::default();
        let (n, exit) = Cpu::new().run(&mut g, &mut f, &mut mem, 10);
        assert_eq!(exit, RunExit::Quantum);
        assert_eq!(n, 10);
        assert_eq!(g.pc, a.entry);
    }
}
