//! The execution engine: fetch/decode/execute with the SVR4 trap model.
//!
//! The CPU owns no memory; it is driven against a [`Bus`] implemented by
//! the kernel as a view of the current process's address space. Every
//! memory reference (including instruction fetch) goes through the bus,
//! which is where page protections, copy-on-write, stack growth and
//! watchpoint areas are enforced — the CPU only sees success or a
//! [`BusFault`].
//!
//! Trap conventions, chosen to match the paper's preferences:
//!
//! * `SYSCALL` reports with the program counter already advanced past the
//!   instruction, so the kernel may rewind by one instruction to restart
//!   the call.
//! * `BPT` (and every other faulting instruction) reports with the program
//!   counter *at* the faulting instruction — "the execution of the
//!   breakpoint instruction should leave the program counter with a known
//!   value relative to the breakpoint address in all cases, preferably the
//!   breakpoint address itself".
//! * When the [`PSR_TRACE`] bit is set, a trace trap is reported after one
//!   instruction completes (with the program counter after it), unless the
//!   instruction itself trapped.

use crate::insn::{Insn, Opcode, INSN_LEN};
use crate::reg::{FpregSet, GregSet, PSR_TRACE, REG_RA};
use crate::sblock::{BlockSlot, SBLOCK_CAP};

/// The kind of memory access being attempted, carried in fault reports so
/// the kernel can classify the machine fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// Why a bus access failed; determined by the kernel's address-space view
/// and reported back through the CPU unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusFaultKind {
    /// No mapping covers the address.
    Unmapped,
    /// A mapping covers the address but forbids this access.
    Protection,
    /// The access hit a watched area (the paper's proposed watchpoint
    /// facility); the kernel turns this into `FLTWATCH`.
    Watch,
    /// Kernel-internal: the access needs to mutate shared backing store
    /// while the bus is running against a frozen (shared, read-only)
    /// store view. Never surfaces as a guest fault — the scheduler
    /// aborts the speculative slice and re-runs it with full store
    /// access. Faults leave the program counter at the instruction and
    /// do not retire it, so the retry is exact.
    Frozen,
}

/// A failed bus access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusFault {
    /// The faulting virtual address.
    pub addr: u64,
    /// The attempted access mode.
    pub access: Access,
    /// Classification from the address-space view.
    pub kind: BusFaultKind,
}

/// Memory system interface supplied by the kernel.
///
/// Implementations are expected to perform copy-on-write, transparent
/// stack growth, and watchpoint screening internally, failing with a
/// [`BusFault`] only when the access cannot (or, for watchpoints, must
/// not) be transparently satisfied.
pub trait Bus {
    /// Fetches one instruction's bytes at `addr`.
    fn fetch(&mut self, addr: u64, buf: &mut [u8; INSN_LEN as usize]) -> Result<(), BusFault>;
    /// Loads `buf.len()` bytes from `addr`.
    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), BusFault>;
    /// Stores `data` at `addr`.
    fn store(&mut self, addr: u64, data: &[u8]) -> Result<(), BusFault>;
    /// Fetches and decodes the instruction at `addr`. `Ok(None)` means
    /// the bytes were fetched but do not decode (an illegal
    /// instruction). The default implementation fetches and decodes
    /// fresh every time; bus implementations with a decoded-instruction
    /// cache override this.
    fn fetch_insn(&mut self, addr: u64) -> Result<Option<Insn>, BusFault> {
        let mut raw = [0u8; INSN_LEN as usize];
        self.fetch(addr, &mut raw)?;
        Ok(Insn::decode(&raw))
    }
    /// Fetches a validated superblock rooted at `pc` into `out`,
    /// returning the number of slots filled. Zero means "no block" and
    /// the CPU falls back to [`Bus::fetch_insn`] for one instruction.
    /// The default implementation never produces a block; bus
    /// implementations with a superblock cache override this.
    fn fetch_block(&mut self, _pc: u64, _out: &mut [BlockSlot; SBLOCK_CAP]) -> usize {
        0
    }
    /// Reports the outcome of executing a block previously returned by
    /// [`Bus::fetch_block`]: the exit reason and how many of its
    /// instructions retired.
    fn note_block_exit(&mut self, _exit: BlockExit, _retired: u64) {}
}

/// Why a superblock dispatch stopped; reported through
/// [`Bus::note_block_exit`] for the per-LWP statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockExit {
    /// Every instruction in the block executed.
    End,
    /// Control flow left the traced path (pc mismatch before a slot).
    Side,
    /// An instruction trapped (syscall, breakpoint, fault, ...).
    Trap,
    /// The quantum budget ran out mid-block.
    Budget,
}

/// What stopped the CPU. Variants map one-to-one onto kernel entry
/// reasons: the system-call handler, the user trap handler (machine
/// faults), or the single-step machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// `SYSCALL` executed; the program counter is past the instruction.
    Syscall,
    /// `BPT` executed; the program counter is at the instruction.
    Breakpoint,
    /// Undecodable instruction; the program counter is at it.
    IllegalInsn,
    /// Privileged instruction from user mode; the program counter is at it.
    PrivInsn,
    /// Integer divide by zero; the program counter is at the instruction.
    DivZero,
    /// Floating-point exception; the program counter is at the instruction.
    FpErr,
    /// A data access or instruction fetch failed.
    MemFault(BusFault),
    /// One instruction completed with the trace bit set; the program
    /// counter is after it.
    TraceTrap,
}

/// Outcome of [`Cpu::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunExit {
    /// The instruction budget was exhausted without a trap.
    Quantum,
    /// A trap occurred.
    Event(StepEvent),
}

/// The execution engine. Stateless apart from statistics; all machine
/// state lives in the register sets and the bus.
#[derive(Default, Debug)]
pub struct Cpu {
    /// Total instructions retired through this engine (including the
    /// instruction that raised a trace trap, excluding faulted ones).
    pub retired: u64,
}

impl Cpu {
    /// Creates an engine.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Executes instructions until a trap or until `budget` instructions
    /// have retired. Returns the number retired in this call and the exit
    /// condition.
    ///
    /// When the bus serves superblocks ([`Bus::fetch_block`]), whole
    /// validated traces execute without per-instruction fetches. The
    /// retirement stream is identical to the stepped path: every slot's
    /// pc is checked against the live pc before executing (a mismatch
    /// side-exits and re-dispatches), the budget is enforced per
    /// instruction, and the trapping-instruction accounting (syscalls
    /// retire, faults do not) matches [`Cpu::step`]. Single-stepping
    /// (trace bit) bypasses blocks entirely so the one-instruction trap
    /// contract holds.
    pub fn run(
        &mut self,
        g: &mut GregSet,
        f: &mut FpregSet,
        bus: &mut impl Bus,
        budget: u64,
    ) -> (u64, RunExit) {
        let mut done = 0;
        let mut blk: [BlockSlot; SBLOCK_CAP] = [BlockSlot::default(); SBLOCK_CAP];
        while done < budget {
            if g.psr & PSR_TRACE == 0 {
                let n = bus.fetch_block(g.pc, &mut blk);
                if n > 0 {
                    let mut in_block = 0u64;
                    let mut exited = false;
                    for slot in blk.iter().take(n) {
                        if done >= budget {
                            bus.note_block_exit(BlockExit::Budget, in_block);
                            exited = true;
                            break;
                        }
                        if slot.pc != g.pc {
                            // The trace predicted a branch the machine
                            // did not take.
                            bus.note_block_exit(BlockExit::Side, in_block);
                            exited = true;
                            break;
                        }
                        match self.exec(slot.insn, slot.pc, g, f, bus) {
                            Exec::Trap(ev) => {
                                if matches!(ev, StepEvent::Syscall) {
                                    done += 1;
                                    in_block += 1;
                                }
                                bus.note_block_exit(BlockExit::Trap, in_block);
                                self.retired += done;
                                return (done, RunExit::Event(ev));
                            }
                            Exec::Done => {
                                done += 1;
                                in_block += 1;
                            }
                        }
                    }
                    if !exited {
                        bus.note_block_exit(BlockExit::End, in_block);
                    }
                    continue;
                }
            }
            match self.step(g, f, bus) {
                None => done += 1,
                Some(ev) => {
                    // The trapping instruction retired for Syscall and
                    // TraceTrap; faults leave the PC at the instruction and
                    // do not count it.
                    if matches!(ev, StepEvent::Syscall | StepEvent::TraceTrap) {
                        done += 1;
                    }
                    self.retired += done;
                    return (done, RunExit::Event(ev));
                }
            }
        }
        self.retired += done;
        (done, RunExit::Quantum)
    }

    /// Executes a single instruction. Returns `None` if execution should
    /// continue, or the trap that ended it.
    pub fn step(
        &mut self,
        g: &mut GregSet,
        f: &mut FpregSet,
        bus: &mut impl Bus,
    ) -> Option<StepEvent> {
        let trace = g.psr & PSR_TRACE != 0;
        let pc = g.pc;
        let insn = match bus.fetch_insn(pc) {
            Err(fault) => return Some(StepEvent::MemFault(fault)),
            Ok(None) => return Some(StepEvent::IllegalInsn),
            Ok(Some(i)) => i,
        };
        match self.exec(insn, pc, g, f, bus) {
            Exec::Trap(ev) => Some(ev),
            Exec::Done => {
                if trace {
                    Some(StepEvent::TraceTrap)
                } else {
                    None
                }
            }
        }
    }

    fn exec(
        &mut self,
        i: Insn,
        pc: u64,
        g: &mut GregSet,
        f: &mut FpregSet,
        bus: &mut impl Bus,
    ) -> Exec {
        use Opcode::*;
        let rd = i.rd as usize;
        let rs1 = i.rs1 as usize;
        let rs2 = i.rs2 as usize;
        let imm = i.imm as i64;
        let next = pc.wrapping_add(INSN_LEN);
        // Helper closures for the common "advance and continue" pattern.
        macro_rules! alu {
            ($v:expr) => {{
                g.set_r(rd, $v);
                g.pc = next;
                Exec::Done
            }};
        }
        match i.op {
            Nop => {
                g.pc = next;
                Exec::Done
            }
            Halt | Priv => Exec::Trap(StepEvent::PrivInsn),
            Syscall => {
                g.pc = next;
                Exec::Trap(StepEvent::Syscall)
            }
            Bpt => Exec::Trap(StepEvent::Breakpoint),

            Add => alu!(g.get(rs1).wrapping_add(g.get(rs2))),
            Sub => alu!(g.get(rs1).wrapping_sub(g.get(rs2))),
            Mul => alu!(g.get(rs1).wrapping_mul(g.get(rs2))),
            Div => {
                let d = g.get(rs2) as i64;
                if d == 0 {
                    return Exec::Trap(StepEvent::DivZero);
                }
                alu!((g.get(rs1) as i64).wrapping_div(d) as u64)
            }
            Rem => {
                let d = g.get(rs2) as i64;
                if d == 0 {
                    return Exec::Trap(StepEvent::DivZero);
                }
                alu!((g.get(rs1) as i64).wrapping_rem(d) as u64)
            }
            And => alu!(g.get(rs1) & g.get(rs2)),
            Or => alu!(g.get(rs1) | g.get(rs2)),
            Xor => alu!(g.get(rs1) ^ g.get(rs2)),
            Shl => alu!(g.get(rs1) << (g.get(rs2) & 63)),
            Shr => alu!(g.get(rs1) >> (g.get(rs2) & 63)),
            Sar => alu!(((g.get(rs1) as i64) >> (g.get(rs2) & 63)) as u64),
            Slt => alu!(((g.get(rs1) as i64) < (g.get(rs2) as i64)) as u64),
            Sltu => alu!((g.get(rs1) < g.get(rs2)) as u64),

            Addi => alu!(g.get(rs1).wrapping_add(imm as u64)),
            Muli => alu!(g.get(rs1).wrapping_mul(imm as u64)),
            Andi => alu!(g.get(rs1) & imm as u64),
            Ori => alu!(g.get(rs1) | imm as u64),
            Xori => alu!(g.get(rs1) ^ imm as u64),
            Shli => alu!(g.get(rs1) << (imm as u64 & 63)),
            Shri => alu!(g.get(rs1) >> (imm as u64 & 63)),
            Slti => alu!(((g.get(rs1) as i64) < imm) as u64),
            Movi => alu!(imm as u64),
            Moviu => alu!((g.get(rd) & 0xFFFF_FFFF) | ((i.imm as u32 as u64) << 32)),

            Ld => {
                let addr = g.get(rs1).wrapping_add(imm as u64);
                let mut b = [0u8; 8];
                if let Err(fault) = bus.load(addr, &mut b) {
                    return Exec::Trap(StepEvent::MemFault(fault));
                }
                alu!(u64::from_le_bytes(b))
            }
            Ldw => {
                let addr = g.get(rs1).wrapping_add(imm as u64);
                let mut b = [0u8; 4];
                if let Err(fault) = bus.load(addr, &mut b) {
                    return Exec::Trap(StepEvent::MemFault(fault));
                }
                alu!(u32::from_le_bytes(b) as u64)
            }
            Ldb => {
                let addr = g.get(rs1).wrapping_add(imm as u64);
                let mut b = [0u8; 1];
                if let Err(fault) = bus.load(addr, &mut b) {
                    return Exec::Trap(StepEvent::MemFault(fault));
                }
                alu!(b[0] as u64)
            }
            St => {
                let addr = g.get(rs1).wrapping_add(imm as u64);
                if let Err(fault) = bus.store(addr, &g.get(rd).to_le_bytes()) {
                    return Exec::Trap(StepEvent::MemFault(fault));
                }
                g.pc = next;
                Exec::Done
            }
            Stw => {
                let addr = g.get(rs1).wrapping_add(imm as u64);
                if let Err(fault) = bus.store(addr, &(g.get(rd) as u32).to_le_bytes()) {
                    return Exec::Trap(StepEvent::MemFault(fault));
                }
                g.pc = next;
                Exec::Done
            }
            Stb => {
                let addr = g.get(rs1).wrapping_add(imm as u64);
                if let Err(fault) = bus.store(addr, &[g.get(rd) as u8]) {
                    return Exec::Trap(StepEvent::MemFault(fault));
                }
                g.pc = next;
                Exec::Done
            }

            Jmp => {
                g.pc = pc.wrapping_add(imm as u64);
                Exec::Done
            }
            Jmpr => {
                g.pc = g.get(rs1);
                Exec::Done
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let (a, b) = (g.get(rs1), g.get(rs2));
                let taken = match i.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i64) < (b as i64),
                    Bge => (a as i64) >= (b as i64),
                    Bltu => a < b,
                    Bgeu => a >= b,
                    _ => unreachable!(),
                };
                g.pc = if taken { pc.wrapping_add(imm as u64) } else { next };
                Exec::Done
            }
            Call => {
                g.set_r(REG_RA, next);
                g.pc = pc.wrapping_add(imm as u64);
                Exec::Done
            }
            Callr => {
                let target = g.get(rs1);
                g.set_r(REG_RA, next);
                g.pc = target;
                Exec::Done
            }

            Fadd => {
                f.f[rd] = f.f[rs1] + f.f[rs2];
                g.pc = next;
                Exec::Done
            }
            Fsub => {
                f.f[rd] = f.f[rs1] - f.f[rs2];
                g.pc = next;
                Exec::Done
            }
            Fmul => {
                f.f[rd] = f.f[rs1] * f.f[rs2];
                g.pc = next;
                Exec::Done
            }
            Fdiv => {
                if f.f[rs2] == 0.0 {
                    f.fsr |= 1; // Sticky divide-by-zero flag.
                    return Exec::Trap(StepEvent::FpErr);
                }
                f.f[rd] = f.f[rs1] / f.f[rs2];
                g.pc = next;
                Exec::Done
            }
            Fld => {
                let addr = g.get(rs1).wrapping_add(imm as u64);
                let mut b = [0u8; 8];
                if let Err(fault) = bus.load(addr, &mut b) {
                    return Exec::Trap(StepEvent::MemFault(fault));
                }
                f.f[rd] = f64::from_bits(u64::from_le_bytes(b));
                g.pc = next;
                Exec::Done
            }
            Fst => {
                let addr = g.get(rs1).wrapping_add(imm as u64);
                if let Err(fault) = bus.store(addr, &f.f[rd].to_bits().to_le_bytes()) {
                    return Exec::Trap(StepEvent::MemFault(fault));
                }
                g.pc = next;
                Exec::Done
            }
            CvtIF => {
                f.f[rd] = g.get(rs1) as i64 as f64;
                g.pc = next;
                Exec::Done
            }
            CvtFI => {
                g.set_r(rd, f.f[rs1] as i64 as u64);
                g.pc = next;
                Exec::Done
            }
            Fmovi => {
                f.f[rd] = i.imm as f64;
                g.pc = next;
                Exec::Done
            }
        }
    }
}

enum Exec {
    Done,
    Trap(StepEvent),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;
    use crate::reg::PSR_TRACE;
    use std::collections::HashMap;

    /// A flat test memory: every address is mapped and writable.
    #[derive(Default)]
    struct FlatMem {
        bytes: HashMap<u64, u8>,
    }

    impl FlatMem {
        fn install(&mut self, base: u64, insns: &[Insn]) {
            let mut addr = base;
            for i in insns {
                for b in i.encode() {
                    self.bytes.insert(addr, b);
                    addr += 1;
                }
            }
        }
    }

    impl Bus for FlatMem {
        fn fetch(&mut self, addr: u64, buf: &mut [u8; 8]) -> Result<(), BusFault> {
            self.load(addr, buf)
        }
        fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), BusFault> {
            for (i, out) in buf.iter_mut().enumerate() {
                *out = *self.bytes.get(&(addr + i as u64)).unwrap_or(&0);
            }
            // 0 bytes decode as illegal, which is what we want for holes.
            Ok(())
        }
        fn store(&mut self, addr: u64, data: &[u8]) -> Result<(), BusFault> {
            for (i, b) in data.iter().enumerate() {
                self.bytes.insert(addr + i as u64, *b);
            }
            Ok(())
        }
    }

    fn run_insns(insns: &[Insn]) -> (GregSet, FpregSet, StepEvent) {
        let mut mem = FlatMem::default();
        mem.install(0x1000, insns);
        let mut g = GregSet::at(0x1000);
        let mut f = FpregSet::default();
        let mut cpu = Cpu::new();
        let (_, exit) = cpu.run(&mut g, &mut f, &mut mem, 10_000);
        match exit {
            RunExit::Event(ev) => (g, f, ev),
            RunExit::Quantum => panic!("program did not trap"),
        }
    }

    #[test]
    fn arithmetic_and_syscall() {
        use Opcode::*;
        let (g, _, ev) = run_insns(&[
            Insn::iform(Movi, 2, 0, 20),
            Insn::iform(Movi, 3, 0, 22),
            Insn::rform(Add, 4, 2, 3),
            Insn::bare(Syscall),
        ]);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.get(4), 42);
        // PC is past the SYSCALL instruction.
        assert_eq!(g.pc, 0x1000 + 4 * 8);
    }

    #[test]
    fn breakpoint_leaves_pc_at_bpt() {
        use Opcode::*;
        let (g, _, ev) = run_insns(&[Insn::bare(Nop), Insn::bare(Bpt)]);
        assert_eq!(ev, StepEvent::Breakpoint);
        assert_eq!(g.pc, 0x1000 + 8, "PC must be left at the breakpoint address");
    }

    #[test]
    fn divide_by_zero_faults_at_insn() {
        use Opcode::*;
        let (g, _, ev) = run_insns(&[
            Insn::iform(Movi, 2, 0, 7),
            Insn::rform(Div, 3, 2, 0), // r0 == 0
        ]);
        assert_eq!(ev, StepEvent::DivZero);
        assert_eq!(g.pc, 0x1000 + 8);
    }

    #[test]
    fn privileged_instruction_faults() {
        let (_, _, ev) = run_insns(&[Insn::bare(Opcode::Halt)]);
        assert_eq!(ev, StepEvent::PrivInsn);
        let (_, _, ev) = run_insns(&[Insn::bare(Opcode::Priv)]);
        assert_eq!(ev, StepEvent::PrivInsn);
    }

    #[test]
    fn illegal_instruction_faults() {
        // Zero-filled memory does not decode.
        let (g, _, ev) = run_insns(&[Insn::bare(Opcode::Nop)]);
        assert_eq!(ev, StepEvent::IllegalInsn);
        assert_eq!(g.pc, 0x1000 + 8);
    }

    #[test]
    fn trace_bit_traps_after_one_insn() {
        use Opcode::*;
        let mut mem = FlatMem::default();
        mem.install(0x1000, &[Insn::iform(Movi, 2, 0, 5), Insn::iform(Movi, 3, 0, 6)]);
        let mut g = GregSet::at(0x1000);
        g.psr |= PSR_TRACE;
        let mut f = FpregSet::default();
        let mut cpu = Cpu::new();
        let ev = cpu.step(&mut g, &mut f, &mut mem);
        assert_eq!(ev, Some(StepEvent::TraceTrap));
        assert_eq!(g.get(2), 5, "traced instruction must have executed");
        assert_eq!(g.pc, 0x1008, "PC is after the traced instruction");
        assert_eq!(g.get(3), 0, "only one instruction may execute");
    }

    #[test]
    fn trace_bit_does_not_mask_other_traps() {
        use Opcode::*;
        let mut mem = FlatMem::default();
        mem.install(0x1000, &[Insn::bare(Bpt)]);
        let mut g = GregSet::at(0x1000);
        g.psr |= PSR_TRACE;
        let mut f = FpregSet::default();
        let ev = Cpu::new().step(&mut g, &mut f, &mut mem);
        assert_eq!(ev, Some(StepEvent::Breakpoint));
    }

    #[test]
    fn loop_with_branches() {
        use Opcode::*;
        // Sum 1..=10 then SYSCALL.
        let insns = [
            Insn::iform(Movi, 2, 0, 0),  // acc
            Insn::iform(Movi, 3, 0, 1),  // i
            Insn::iform(Movi, 4, 0, 10), // limit
            // loop:
            Insn::rform(Add, 2, 2, 3),
            Insn::iform(Addi, 3, 3, 1),
            Insn { op: Bge, rd: 0, rs1: 4, rs2: 3, imm: -16 }, // while limit >= i
            Insn::bare(Syscall),
        ];
        let (g, _, ev) = run_insns(&insns);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.get(2), 55);
    }

    #[test]
    fn call_and_return() {
        use Opcode::*;
        let insns = [
            Insn::iform(Call, 0, 0, 24), // call +24 (3 insns ahead)
            Insn::bare(Syscall),         // return target
            Insn::bare(Nop),
            // func:
            Insn::iform(Movi, 5, 0, 99),
            Insn::rform(Jmpr, 0, REG_RA, 0), // ret
        ];
        let (g, _, ev) = run_insns(&insns);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.get(5), 99);
    }

    #[test]
    fn memory_ops_roundtrip() {
        use Opcode::*;
        let insns = [
            Insn::iform(Movi, 2, 0, 0x5000),  // base
            Insn::iform(Movi, 3, 0, -2),      // value
            Insn::iform(St, 3, 2, 8),         // [base+8] = r3
            Insn::iform(Ld, 4, 2, 8),         // r4 = [base+8]
            Insn::iform(Stb, 3, 2, 32),       // [base+32] = 0xFE
            Insn::iform(Ldb, 5, 2, 32),       // r5 = 0xFE (zero-extended)
            Insn::iform(Stw, 3, 2, 40),       // [base+40] = 0xFFFFFFFE
            Insn::iform(Ldw, 6, 2, 40),       // r6 = 0xFFFFFFFE
            Insn::bare(Syscall),
        ];
        let (g, _, ev) = run_insns(&insns);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(g.get(4) as i64, -2);
        assert_eq!(g.get(5), 0xFE);
        assert_eq!(g.get(6), 0xFFFF_FFFE);
    }

    #[test]
    fn float_ops() {
        use Opcode::*;
        let insns = [
            Insn::iform(Fmovi, 0, 0, 3),     // f0 = 3.0
            Insn::iform(Fmovi, 1, 0, 4),     // f1 = 4.0
            Insn::rform(Fmul, 2, 0, 1),      // f2 = 12.0
            Insn::rform(CvtFI, 7, 2, 0),     // r7 = 12
            Insn::bare(Syscall),
        ];
        let (g, f, ev) = run_insns(&insns);
        assert_eq!(ev, StepEvent::Syscall);
        assert_eq!(f.f[2], 12.0);
        assert_eq!(g.get(7), 12);
    }

    #[test]
    fn float_divide_by_zero_faults() {
        use Opcode::*;
        let insns = [
            Insn::iform(Fmovi, 0, 0, 3),
            Insn::rform(Fdiv, 2, 0, 1), // f1 == 0.0
        ];
        let (_, f, ev) = run_insns(&insns);
        assert_eq!(ev, StepEvent::FpErr);
        assert_eq!(f.fsr & 1, 1, "sticky flag set");
    }

    #[test]
    fn quantum_exhaustion() {
        use Opcode::*;
        let mut mem = FlatMem::default();
        // Infinite loop: jmp .
        mem.install(0x1000, &[Insn::iform(Jmp, 0, 0, 0)]);
        let mut g = GregSet::at(0x1000);
        let mut f = FpregSet::default();
        let mut cpu = Cpu::new();
        let (n, exit) = cpu.run(&mut g, &mut f, &mut mem, 100);
        assert_eq!(exit, RunExit::Quantum);
        assert_eq!(n, 100);
        assert_eq!(cpu.retired, 100);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::insn::{Insn, Opcode};

    /// Minimal deterministic xorshift64* generator for randomized tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Reference semantics for the register-form ALU group.
    fn alu_ref(op: Opcode, a: u64, b: u64) -> Option<u64> {
        use Opcode::*;
        Some(match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    return None;
                }
                (a as i64).wrapping_div(b as i64) as u64
            }
            Rem => {
                if b == 0 {
                    return None;
                }
                (a as i64).wrapping_rem(b as i64) as u64
            }
            And => a & b,
            Or => a | b,
            Xor => a ^ b,
            Shl => a << (b & 63),
            Shr => a >> (b & 63),
            Sar => ((a as i64) >> (b & 63)) as u64,
            Slt => ((a as i64) < (b as i64)) as u64,
            Sltu => (a < b) as u64,
            _ => unreachable!(),
        })
    }

    /// A trivially mapped bus for single-instruction execution.
    struct OnePage([u8; 4096]);
    impl Bus for OnePage {
        fn fetch(&mut self, addr: u64, buf: &mut [u8; 8]) -> Result<(), BusFault> {
            buf.copy_from_slice(&self.0[addr as usize..addr as usize + 8]);
            Ok(())
        }
        fn load(&mut self, _a: u64, _b: &mut [u8]) -> Result<(), BusFault> {
            unreachable!("ALU ops touch no memory")
        }
        fn store(&mut self, _a: u64, _d: &[u8]) -> Result<(), BusFault> {
            unreachable!("ALU ops touch no memory")
        }
    }

    /// Every register-form ALU instruction matches the reference
    /// semantics, including the zero-register rules and divide traps.
    #[test]
    fn alu_differential() {
        use Opcode::*;
        let ops = [Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Sar, Slt, Sltu];
        let mut rng = 0xA1C0_u64;
        for case in 0..2048 {
            let op = ops[case % ops.len()];
            let a = xorshift(&mut rng);
            // Mix in small operands so divide-by-zero and equal-operand
            // paths are exercised, not just full-range values.
            let b = if case % 5 == 0 { xorshift(&mut rng) % 3 } else { xorshift(&mut rng) };
            let rd = (xorshift(&mut rng) % 8) as usize;
            let mut mem = OnePage([0; 4096]);
            mem.0[0..8].copy_from_slice(&Insn::rform(op, rd, 1, 2).encode());
            let mut g = GregSet::at(0);
            g.set_r(1, a);
            g.set_r(2, b);
            let mut f = FpregSet::default();
            let ev = Cpu::new().step(&mut g, &mut f, &mut mem);
            match alu_ref(op, a, b) {
                None => assert_eq!(ev, Some(StepEvent::DivZero)),
                Some(expect) => {
                    assert_eq!(ev, None);
                    if rd == 0 {
                        assert_eq!(g.get(0), 0, "zero register stays zero");
                    } else {
                        assert_eq!(g.get(rd), expect);
                    }
                    assert_eq!(g.pc, 8);
                }
            }
        }
    }

    /// Branch instructions take or fall through exactly per the
    /// comparison semantics.
    #[test]
    fn branch_differential() {
        use Opcode::*;
        let ops = [Beq, Bne, Blt, Bge, Bltu, Bgeu];
        let mut rng = 0xB4A7C4_u64;
        for case in 0..2048 {
            let op = ops[case % ops.len()];
            let a = xorshift(&mut rng);
            let b = if case % 4 == 0 { a } else { xorshift(&mut rng) };
            let disp = ((xorshift(&mut rng) % 1024) as i32 - 512) & !7; // keep PC sane
            let taken = match op {
                Beq => a == b,
                Bne => a != b,
                Blt => (a as i64) < (b as i64),
                Bge => (a as i64) >= (b as i64),
                Bltu => a < b,
                Bgeu => a >= b,
                _ => unreachable!(),
            };
            let mut mem = OnePage([0; 4096]);
            let pc0 = 1024u64;
            mem.0[pc0 as usize..pc0 as usize + 8]
                .copy_from_slice(&Insn { op, rd: 0, rs1: 1, rs2: 2, imm: disp }.encode());
            let mut g = GregSet::at(pc0);
            g.set_r(1, a);
            g.set_r(2, b);
            let mut f = FpregSet::default();
            let ev = Cpu::new().step(&mut g, &mut f, &mut mem);
            assert_eq!(ev, None);
            let expect = if taken { pc0.wrapping_add(disp as i64 as u64) } else { pc0 + 8 };
            assert_eq!(g.pc, expect);
        }
    }
}
