//! Register files: the general register set and floating-point register set.
//!
//! These are exactly the structures a controlling process obtains through
//! `PIOCGREG`/`PIOCGFPREG` and installs through `PIOCSREG`/`PIOCSFPREG`
//! (`gregset_t` and `fpregset_t` in the paper). They are plain data and are
//! serialised byte-for-byte by the `/proc` layer.

/// Number of general registers.
pub const NGREG: usize = 32;

/// Number of floating-point registers.
pub const NFPREG: usize = 16;

/// Register holding the system call number on entry and the return value on
/// exit (`rv`, alias of `r1`). On error the kernel stores the negated errno,
/// mirroring the historical carry-flag convention in two's-complement form.
pub const REG_RV: usize = 1;

/// First argument register (`a0`, alias of `r2`); arguments occupy
/// `a0..=a5` (`r2..=r7`).
pub const REG_A0: usize = 2;

/// Stack pointer (`sp`, alias of `r29`).
pub const REG_SP: usize = 29;

/// Frame pointer (`fp`, alias of `r30`).
pub const REG_FP: usize = 30;

/// Return-address (link) register (`ra`, alias of `r31`).
pub const REG_RA: usize = 31;

/// Processor-status bit: single-step trace. When set, the CPU raises a
/// trace trap (`FLTTRACE` to the kernel) after executing one instruction.
pub const PSR_TRACE: u64 = 1 << 0;

/// Processor-status bit: last system call failed. Informational; user code
/// conventionally tests the sign of `rv` instead.
pub const PSR_ERR: u64 = 1 << 1;

/// General register set — the `gregset_t` of this machine.
///
/// `r[0]` is architecturally zero: reads through [`GregSet::r`] yield the
/// stored array (kept zero by [`GregSet::set_r`]), and writes to register 0
/// are discarded. A controlling process writing the structure wholesale via
/// `PIOCSREG` cannot violate this either; the kernel re-zeroes `r[0]` on
/// installation.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GregSet {
    /// General registers `r0..r31`; `r0` reads as zero.
    pub r: [u64; NGREG],
    /// Program counter (byte address of the next instruction to execute).
    pub pc: u64,
    /// Processor status register; see [`PSR_TRACE`] and [`PSR_ERR`].
    pub psr: u64,
}

impl GregSet {
    /// Creates a zeroed register set with the given program counter.
    pub fn at(pc: u64) -> Self {
        GregSet { pc, ..Default::default() }
    }

    /// Reads general register `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= NGREG`; the decoder never produces such an index.
    #[inline]
    pub fn get(&self, n: usize) -> u64 {
        self.r[n]
    }

    /// Writes general register `n`, discarding writes to the hardwired
    /// zero register.
    #[inline]
    pub fn set_r(&mut self, n: usize, v: u64) {
        if n != 0 {
            self.r[n] = v;
        }
    }

    /// Normalises the set after wholesale installation from bytes:
    /// re-zeroes the hardwired zero register.
    pub fn normalize(&mut self) {
        self.r[0] = 0;
    }

    /// The stack pointer.
    #[inline]
    pub fn sp(&self) -> u64 {
        self.r[REG_SP]
    }

    /// Sets the stack pointer.
    #[inline]
    pub fn set_sp(&mut self, v: u64) {
        self.r[REG_SP] = v;
    }

    /// The syscall-number / return-value register.
    #[inline]
    pub fn rv(&self) -> u64 {
        self.r[REG_RV]
    }

    /// Sets the return-value register.
    #[inline]
    pub fn set_rv(&mut self, v: u64) {
        self.r[REG_RV] = v;
    }

    /// Returns syscall argument `i` (0-based, `i < 6`).
    #[inline]
    pub fn arg(&self, i: usize) -> u64 {
        debug_assert!(i < 6);
        self.r[REG_A0 + i]
    }

    /// Sets syscall argument `i` (0-based, `i < 6`).
    #[inline]
    pub fn set_arg(&mut self, i: usize, v: u64) {
        debug_assert!(i < 6);
        self.r[REG_A0 + i] = v;
    }

    /// Serialises the register set to its byte image (little-endian), as
    /// transferred by `PIOCGREG`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((NGREG + 2) * 8);
        for v in &self.r {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.pc.to_le_bytes());
        out.extend_from_slice(&self.psr.to_le_bytes());
        out
    }

    /// Byte length of the serialised image.
    pub const WIRE_LEN: usize = (NGREG + 2) * 8;

    /// Deserialises a register set from its byte image, normalising the
    /// zero register. Returns `None` if `b` is too short.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let mut g = GregSet::default();
        for (i, w) in b.chunks_exact(8).take(NGREG).enumerate() {
            g.r[i] = u64_at(w, 0);
        }
        let off = NGREG * 8;
        g.pc = u64_at(b, off);
        g.psr = u64_at(b, off + 8);
        g.normalize();
        Some(g)
    }
}

/// Reads a little-endian u64 at `off`; the caller guarantees bounds.
#[inline]
fn u64_at(b: &[u8], off: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(w)
}

/// Floating-point register set — the `fpregset_t` of this machine.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FpregSet {
    /// Floating registers `f0..f15`.
    pub f: [f64; NFPREG],
    /// Floating-point status register (sticky exception flags).
    pub fsr: u64,
}

impl FpregSet {
    /// Byte length of the serialised image.
    pub const WIRE_LEN: usize = (NFPREG + 1) * 8;

    /// Serialises to the byte image transferred by `PIOCGFPREG`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_LEN);
        for v in &self.f {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.fsr.to_le_bytes());
        out
    }

    /// Deserialises from the byte image; `None` if `b` is too short.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let mut s = FpregSet::default();
        for (i, w) in b.chunks_exact(8).take(NFPREG).enumerate() {
            s.f[i] = f64::from_bits(u64_at(w, 0));
        }
        let off = NFPREG * 8;
        s.fsr = u64_at(b, off);
        Some(s)
    }
}

/// Returns the conventional assembly name for general register `n`
/// (e.g. `zero`, `rv`, `a0`, `sp`), or `rN` for unnamed ones.
pub fn reg_name(n: usize) -> String {
    match n {
        0 => "zero".to_string(),
        1 => "rv".to_string(),
        2..=7 => format!("a{}", n - 2),
        29 => "sp".to_string(),
        30 => "fp".to_string(),
        31 => "ra".to_string(),
        _ => format!("r{n}"),
    }
}

/// Parses a register name as accepted by the assembler. Returns the
/// register index, or `None` if the name is not a register.
pub fn parse_reg(s: &str) -> Option<usize> {
    match s {
        "zero" => return Some(0),
        "rv" => return Some(1),
        "sp" => return Some(REG_SP),
        "fp" => return Some(REG_FP),
        "ra" => return Some(REG_RA),
        _ => {}
    }
    if let Some(num) = s.strip_prefix('a') {
        if let Ok(i) = num.parse::<usize>() {
            if i < 6 {
                return Some(REG_A0 + i);
            }
        }
    }
    if let Some(num) = s.strip_prefix('r') {
        if let Ok(i) = num.parse::<usize>() {
            if i < NGREG && !num.starts_with('+') {
                return Some(i);
            }
        }
    }
    None
}

/// Parses a floating register name (`f0`..`f15`).
pub fn parse_freg(s: &str) -> Option<usize> {
    let num = s.strip_prefix('f')?;
    let i = num.parse::<usize>().ok()?;
    if i < NFPREG && !num.starts_with('+') {
        Some(i)
    } else {
        None
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_hardwired() {
        let mut g = GregSet::default();
        g.set_r(0, 42);
        assert_eq!(g.get(0), 0);
        g.set_r(5, 42);
        assert_eq!(g.get(5), 42);
    }

    #[test]
    fn greg_roundtrip() {
        let mut g = GregSet::at(0x0100_0000);
        for i in 1..NGREG {
            g.set_r(i, (i as u64) * 0x1111);
        }
        g.psr = PSR_TRACE;
        let b = g.to_bytes();
        assert_eq!(b.len(), GregSet::WIRE_LEN);
        let g2 = GregSet::from_bytes(&b).expect("roundtrip");
        assert_eq!(g, g2);
    }

    #[test]
    fn greg_from_bytes_rejects_short_input() {
        assert!(GregSet::from_bytes(&[0u8; 8]).is_none());
    }

    #[test]
    fn greg_from_bytes_normalizes_zero_reg() {
        let mut g = GregSet::default();
        g.r[0] = 99; // Bypass set_r to simulate a hostile byte image.
        let g2 = GregSet::from_bytes(&g.to_bytes()).expect("roundtrip");
        assert_eq!(g2.get(0), 0);
    }

    #[test]
    fn fpreg_roundtrip() {
        let mut f = FpregSet::default();
        f.f[3] = 2.5;
        f.f[15] = -1.0e300;
        f.fsr = 7;
        let b = f.to_bytes();
        assert_eq!(b.len(), FpregSet::WIRE_LEN);
        assert_eq!(FpregSet::from_bytes(&b).expect("roundtrip"), f);
    }

    #[test]
    fn register_names_parse_back() {
        for n in 0..NGREG {
            let name = reg_name(n);
            assert_eq!(parse_reg(&name), Some(n), "register {name}");
        }
        assert_eq!(parse_reg("r29"), Some(REG_SP));
        assert_eq!(parse_reg("x5"), None);
        assert_eq!(parse_reg("r32"), None);
        assert_eq!(parse_reg("a6"), None);
    }

    #[test]
    fn freg_names_parse() {
        assert_eq!(parse_freg("f0"), Some(0));
        assert_eq!(parse_freg("f15"), Some(15));
        assert_eq!(parse_freg("f16"), None);
        assert_eq!(parse_freg("r1"), None);
    }

    #[test]
    fn syscall_arg_accessors() {
        let mut g = GregSet::default();
        g.set_arg(0, 10);
        g.set_arg(5, 60);
        assert_eq!(g.arg(0), 10);
        assert_eq!(g.arg(5), 60);
        assert_eq!(g.get(REG_A0), 10);
        assert_eq!(g.get(REG_A0 + 5), 60);
    }
}
