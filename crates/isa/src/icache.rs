//! Per-LWP decoded-instruction cache.
//!
//! Hot loops re-execute the same few instructions; without a cache every
//! step pays an address-space walk plus a fresh [`Insn::decode`]. This
//! direct-mapped cache keeps decoded instructions keyed by program
//! counter and validates each entry against three generation stamps
//! before serving it:
//!
//! * the address-space generation (`as_gen`) — any structural change
//!   (map/unmap/protect/growth/exec/watchpoint add-remove) moves it;
//! * the content epoch of the backing *page* — any write landing in
//!   that page (user stores, `/proc` breakpoint plants, COW
//!   materialisation) moves it, while writes to other pages of the
//!   same mapping leave it alone;
//! * the object store's content generation — shared-object writes from
//!   *other* processes move it.
//!
//! The cache itself is policy-free: it stores whatever the bus
//! implementation inserts and hands back entries whose `pc` matches.
//! Deciding whether the stamps still hold requires the address space, so
//! validation lives with the bus (see the kernel's `ProcBus`).

use crate::insn::Insn;

/// Number of direct-mapped entries (power of two). 256 entries cover a
/// 2 KiB straight-line window — comfortably larger than the hot loops
/// the experiments execute, small enough to clone cheaply on LWP copies.
const ICACHE_WAYS: usize = 256;

/// One cache slot: a decoded instruction plus the stamps that were
/// current when it was filled.
#[derive(Clone, Copy, Debug)]
pub struct InsnSlot {
    /// Program counter this slot decodes.
    pub pc: u64,
    /// Address-space generation at fill time (0 = empty slot; address
    /// spaces never use generation 0).
    pub as_gen: u64,
    /// Index of the backing mapping at fill time (meaningful only while
    /// `as_gen` is current).
    pub map_idx: u32,
    /// Content epoch of the instruction's page at fill time.
    pub epoch: u64,
    /// Object-store content generation at fill time.
    pub content_gen: u64,
    /// The decoded instruction.
    pub insn: Insn,
}

/// Hit/miss/invalidation counters; `PIOCXSTATS` reports the per-process
/// sum over all LWPs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsnCacheStats {
    /// Fetches served from a validated slot.
    pub hits: u64,
    /// Fetches that decoded fresh (including fills).
    pub misses: u64,
    /// Probes that found a matching pc whose stamps had moved (the
    /// stale-entry replacement count).
    pub invalidations: u64,
}

/// A per-LWP direct-mapped decoded-instruction cache. `Clone` because
/// LWPs are cloned wholesale in places; fork/exec paths construct fresh
/// LWPs, so children start cold.
#[derive(Clone, Debug)]
pub struct InsnCache {
    slots: Vec<InsnSlot>,
    stats: InsnCacheStats,
}

impl Default for InsnCache {
    fn default() -> InsnCache {
        InsnCache::new()
    }
}

impl InsnCache {
    /// An empty cache.
    pub fn new() -> InsnCache {
        let empty = InsnSlot {
            pc: 0,
            as_gen: 0,
            map_idx: 0,
            epoch: 0,
            content_gen: 0,
            insn: Insn::bare(crate::insn::Opcode::Nop),
        };
        InsnCache { slots: vec![empty; ICACHE_WAYS], stats: InsnCacheStats::default() }
    }

    #[inline]
    fn index(pc: u64) -> usize {
        ((pc >> 3) as usize) & (ICACHE_WAYS - 1)
    }

    /// Returns the slot for `pc` if one is filled and keyed by exactly
    /// that pc. The caller must still validate the stamps; call
    /// [`InsnCache::note_hit`] or [`InsnCache::note_stale`] accordingly.
    #[inline]
    pub fn probe(&self, pc: u64) -> Option<&InsnSlot> {
        let s = &self.slots[Self::index(pc)];
        if s.as_gen != 0 && s.pc == pc {
            Some(s)
        } else {
            None
        }
    }

    /// Installs (or replaces) the slot for `pc`.
    #[inline]
    pub fn insert(&mut self, slot: InsnSlot) {
        self.slots[Self::index(slot.pc)] = slot;
    }

    /// Records a validated hit.
    #[inline]
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Records a fetch that had to decode fresh.
    #[inline]
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Records a probe that matched on pc but failed stamp validation.
    #[inline]
    pub fn note_stale(&mut self) {
        self.stats.invalidations += 1;
    }

    /// Drops every slot (exec within the same LWP identity).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.as_gen = 0;
        }
    }

    /// The hit/miss/invalidation counters.
    pub fn stats(&self) -> InsnCacheStats {
        self.stats
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::insn::Opcode;

    fn slot(pc: u64, as_gen: u64) -> InsnSlot {
        InsnSlot {
            pc,
            as_gen,
            map_idx: 0,
            epoch: 0,
            content_gen: 0,
            insn: Insn::bare(Opcode::Nop),
        }
    }

    #[test]
    fn probe_misses_empty_and_hits_after_insert() {
        let mut c = InsnCache::new();
        assert!(c.probe(0x1000).is_none());
        c.insert(slot(0x1000, 1));
        assert_eq!(c.probe(0x1000).expect("filled").pc, 0x1000);
        // A different pc mapping to the same way misses on the pc key.
        assert!(c.probe(0x1000 + (ICACHE_WAYS as u64) * 8).is_none());
    }

    #[test]
    fn insert_replaces_conflicting_way() {
        let mut c = InsnCache::new();
        let other = 0x1000 + (ICACHE_WAYS as u64) * 8;
        c.insert(slot(0x1000, 1));
        c.insert(slot(other, 1));
        assert!(c.probe(0x1000).is_none());
        assert!(c.probe(other).is_some());
    }

    #[test]
    fn clear_empties_every_slot() {
        let mut c = InsnCache::new();
        c.insert(slot(0x1000, 5));
        c.clear();
        assert!(c.probe(0x1000).is_none());
    }
}
