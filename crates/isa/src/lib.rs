//! Virtual CPU for the procsim simulated SVR4 kernel.
//!
//! The paper's `/proc` interface is machine-independent, but exercising it —
//! planting breakpoints, fielding FLTBPT vs SIGTRAP, single-stepping,
//! stopping on system-call entry and exit — requires *a* machine with the
//! corresponding trap semantics. This crate provides one: a small RISC-like
//! CPU with
//!
//! * 32 64-bit general registers (`r0` hardwired to zero) plus `pc` and a
//!   processor status register with a single-step trace bit,
//! * 16 64-bit floating point registers (so the paper's
//!   `PIOCGFPREG`/`PIOCSFPREG` pair has real state to transfer),
//! * fixed-width 8-byte instructions (the paper's discussion of
//!   variable-length instruction sets is documented in DESIGN.md but not
//!   modelled),
//! * an approved breakpoint instruction (`BPT`) that leaves the program
//!   counter *at* the breakpoint address — the convention the paper calls
//!   preferable,
//! * a trap model distinguishing system calls, breakpoints, illegal and
//!   privileged instructions, integer and floating-point arithmetic faults,
//!   memory faults (reported with the failed address and access mode so the
//!   kernel can classify them as FLTBOUNDS / FLTACCESS / FLTWATCH or grow
//!   the stack), and trace traps.
//!
//! The CPU is generic over a [`Bus`], implemented by the kernel as a view
//! of the current process's address space; the CPU itself holds no memory.
//!
//! A two-pass [`asm`] assembler and a [`dis`] disassembler round out the
//! crate so that tests, examples and the simulated userland can be written
//! as readable assembly rather than hand-encoded bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The fetch/decode path runs under every guest instruction: fallible
// cases surface typed results (`BusFault`, `Option`), never a panic.
// Test modules opt back in with a local `allow`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod asm;
pub mod cpu;
pub mod dis;
pub mod icache;
pub mod insn;
pub mod reg;
pub mod sblock;

pub use asm::{assemble, Assembly, AsmError};
pub use cpu::{Access, BlockExit, Bus, BusFault, BusFaultKind, Cpu, RunExit, StepEvent};
pub use icache::{InsnCache, InsnCacheStats, InsnSlot};
pub use sblock::{BlockSlot, SBlockCache, SBlockStats, SuperBlock, SBLOCK_CAP};
pub use insn::{Insn, Opcode, INSN_LEN};
pub use reg::{FpregSet, GregSet, PSR_ERR, PSR_TRACE, REG_A0, REG_RA, REG_RV, REG_SP};
