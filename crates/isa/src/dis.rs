//! Disassembler, used by the debugger for listing code around breakpoints
//! and by `prstatus` pretty-printers for the `pr_instr` field.

use crate::insn::{Insn, Opcode, INSN_LEN};
use crate::reg::reg_name;

/// Disassembles the instruction bytes at `pc` into assembler syntax.
/// Branch targets are resolved to absolute addresses using `pc`.
/// Undecodable bytes render as `.illegal 0x...`.
pub fn disassemble(bytes: &[u8; INSN_LEN as usize], pc: u64) -> String {
    match Insn::decode(bytes) {
        Some(i) => format_insn(&i, pc),
        None => format!(".illegal 0x{:016x}", u64::from_le_bytes(*bytes)),
    }
}

/// Formats a decoded instruction; branch displacements are shown as the
/// absolute target computed from `pc`.
pub fn format_insn(i: &Insn, pc: u64) -> String {
    use Opcode::*;
    let mn = i.op.mnemonic();
    let rd = || reg_name(i.rd as usize);
    let rs1 = || reg_name(i.rs1 as usize);
    let rs2 = || reg_name(i.rs2 as usize);
    let fd = || format!("f{}", i.rd);
    let fs1 = || format!("f{}", i.rs1);
    let fs2 = || format!("f{}", i.rs2);
    let target = || pc.wrapping_add(i.imm as i64 as u64);
    let memop = |r: String| {
        if i.imm == 0 {
            format!("[{r}]")
        } else if i.imm > 0 {
            format!("[{r}+{}]", i.imm)
        } else {
            format!("[{r}-{}]", -(i.imm as i64))
        }
    };
    match i.op {
        Nop | Halt | Syscall | Bpt | Priv => mn.to_string(),
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar | Slt | Sltu => {
            format!("{mn:<6} {}, {}, {}", rd(), rs1(), rs2())
        }
        Addi | Muli | Andi | Ori | Xori | Shli | Shri | Slti => {
            format!("{mn:<6} {}, {}, {}", rd(), rs1(), i.imm)
        }
        Movi | Moviu => format!("{mn:<6} {}, {}", rd(), i.imm),
        Ld | Ldb | Ldw | St | Stb | Stw => format!("{mn:<6} {}, {}", rd(), memop(rs1())),
        Jmp => format!("{mn:<6} 0x{:x}", target()),
        Jmpr => format!("{mn:<6} {}", rs1()),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            format!("{mn:<6} {}, {}, 0x{:x}", rs1(), rs2(), target())
        }
        Call => format!("{mn:<6} 0x{:x}", target()),
        Callr => format!("{mn:<6} {}", rs1()),
        Fadd | Fsub | Fmul | Fdiv => format!("{mn:<6} {}, {}, {}", fd(), fs1(), fs2()),
        Fld | Fst => format!("{mn:<6} {}, {}", fd(), memop(rs1())),
        CvtIF => format!("{mn:<6} {}, {}", fd(), rs1()),
        CvtFI => format!("{mn:<6} {}, {}", rd(), fs1()),
        Fmovi => format!("{mn:<6} {}, {}", fd(), i.imm),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn disassembles_common_forms() {
        let i = Insn::rform(Opcode::Add, 10, 2, 3);
        assert_eq!(format_insn(&i, 0), "add    r10, a0, a1");
        let i = Insn::iform(Opcode::Ld, 2, 29, 16);
        assert_eq!(format_insn(&i, 0), "ld     a0, [sp+16]");
        let i = Insn::iform(Opcode::St, 2, 29, -8);
        assert_eq!(format_insn(&i, 0), "st     a0, [sp-8]");
        let i = Insn::bare(Opcode::Bpt);
        assert_eq!(format_insn(&i, 0), "bpt");
    }

    #[test]
    fn branch_targets_are_absolute() {
        let i = Insn { op: Opcode::Jmp, rd: 0, rs1: 0, rs2: 0, imm: -16 };
        assert_eq!(format_insn(&i, 0x1010), "jmp    0x1000");
    }

    #[test]
    fn illegal_bytes_render() {
        let s = disassemble(&[0u8; 8], 0);
        assert!(s.starts_with(".illegal"), "{s}");
    }

    #[test]
    fn roundtrip_through_assembler() {
        // Disassemble everything the assembler produces for a program and
        // re-assemble the result; the encodings must match.
        let src = r#"
            _start:
                movi a0, 7
                addi a1, a0, -1
                add  a2, a0, a1
                ld   a3, [sp+8]
                st   a3, [sp-16]
                beq  a2, zero, _start
                call _start
                syscall
        "#;
        let a = assemble(src).expect("assembles");
        let mut redis = String::new();
        let mut pc = a.text_base;
        for chunk in a.text.chunks_exact(8) {
            let bytes: &[u8; 8] = chunk.try_into().expect("8 bytes");
            redis.push_str(&format!("{}\n", disassemble(bytes, pc)));
            pc += 8;
        }
        // The disassembly labels branch targets as absolute hex, which the
        // assembler does not accept as labels, so just verify the mnemonics
        // decoded sensibly.
        assert!(redis.contains("movi"), "{redis}");
        assert!(redis.contains("beq"), "{redis}");
        assert!(redis.contains("syscall"), "{redis}");
    }
}
