//! procsim — reproduction of *The Process File System and Process Model in
//! UNIX System V* (Faulkner & Gomes, USENIX Winter 1991).
//!
//! This umbrella crate re-exports the workspace crates. See the README for
//! the architecture overview and DESIGN.md for the full system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Pure re-export surface, but gated like the crates it re-exports so a
// future helper added here cannot slip a panic past `cargo lint`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub use isa;
pub use ksim;
pub use procfs;
pub use tools;
pub use vfs;
pub use vm;
