//! procsim — reproduction of *The Process File System and Process Model in
//! UNIX System V* (Faulkner & Gomes, USENIX Winter 1991).
//!
//! This umbrella crate re-exports the workspace crates. See the README for
//! the architecture overview and DESIGN.md for the full system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use isa;
pub use ksim;
pub use procfs;
pub use tools;
pub use vfs;
pub use vm;
