//! Robustness and determinism: the simulation must never panic or hang
//! on adversarial programs, and identical runs must produce identical
//! event logs.

use bench_support::XorShift;
use procsim::ksim::{Cred, Event, Pid, System};
use procsim::tools;

/// Runs a scripted scenario and returns the full event log.
fn scenario_log() -> Vec<Event> {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
    sys.spawn_program(ctl, "/bin/forker", &["forker"]).expect("spawn");
    sys.spawn_program(ctl, "/bin/piper", &["piper"]).expect("spawn");
    let victim = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(2_000);
    sys.host_kill(ctl, victim, procsim::ksim::signal::SIGKILL).expect("kill");
    sys.run_idle(10_000);
    sys.kernel.log.take()
}

#[test]
fn identical_runs_produce_identical_event_logs() {
    let a = scenario_log();
    let b = scenario_log();
    assert!(!a.is_empty());
    assert_eq!(a, b, "the simulation is deterministic");
}

/// Builds a program that issues `count` system calls with arbitrary
/// numbers and arguments, then exits.
fn fuzz_program(calls: &[(u16, u64, u64, u64)]) -> String {
    let mut src = String::from("_start:\n");
    for (nr, a0, a1, a2) in calls {
        // Clamp immediates into i32 range for movi; use li for larger.
        src.push_str(&format!(
            "    li rv, {nr}\n    li a0, {a0}\n    li a1, {a1}\n    li a2, {a2}\n    syscall\n"
        ));
    }
    src.push_str("    movi rv, 1\n    movi a0, 0\n    syscall\n");
    src
}

/// Arbitrary syscall numbers and arguments never panic or wedge the
/// kernel; the process always terminates (normally or by signal).
#[test]
fn random_syscalls_cannot_break_the_kernel() {
    let mut rng = XorShift::new(0x5ca1ab1e);
    for _ in 0..8 {
        // exit/fork-family calls are fine too, but avoid unbounded
        // vfork/pause hangs dominating the budget: they are included,
        // the run budget simply bounds them.
        let calls: Vec<(u16, u64, u64, u64)> = (0..1 + rng.below(5))
            .map(|_| {
                (
                    rng.below(120) as u16,
                    rng.below(1 << 32),
                    rng.below(1 << 32),
                    rng.below(1 << 33),
                )
            })
            .collect();
        let src = fuzz_program(&calls);
        let mut sys: System = tools::boot_demo();
        sys.pump_limit = 10_000;
        let ctl = sys.spawn_hosted("fuzz", Cred::new(100, 10));
        sys.install_program("/bin/fuzz", &src);
        let pid = sys.spawn_program(ctl, "/bin/fuzz", &["fuzz"]).expect("spawn");
        // Bounded run: no panic, and the kernel stays consistent.
        sys.run_idle(4_000);
        // Whatever happened, the process table must still be sane.
        for proc in sys.kernel.procs.values() {
            assert!(proc.lwps.iter().all(|l| l.tid.0 >= 1));
        }
        // Force-kill anything left and drain.
        let _ = sys.host_kill(ctl, pid, procsim::ksim::signal::SIGKILL);
        sys.run_idle(4_000);
    }
}

/// Arbitrary bytes fed to the hierarchical ctl file are rejected
/// cleanly (never panic, never corrupt the target).
#[test]
fn random_ctl_writes_are_safe() {
    let mut rng = XorShift::new(0xc71f00d);
    for _ in 0..8 {
        let len = rng.below(96) as usize;
        let data = rng.bytes(len);
        let mut sys: System = tools::boot_demo();
        sys.pump_limit = 10_000;
        let ctl = sys.spawn_hosted("fuzz", Cred::new(100, 10));
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let cfd = sys
            .host_open(ctl, &format!("/proc2/{}/ctl", pid.0), vfs::OFlags::wronly())
            .expect("open ctl");
        let _ = sys.host_write(ctl, cfd, &data);
        // The target is still there and still controllable.
        let mut h = tools::ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        let st = h.stop(&mut sys).expect("stop");
        assert_ne!(st.flags & procsim::procfs::PR_STOPPED, 0);
        h.resume(&mut sys).expect("run");
        h.close(&mut sys).expect("close");
    }
}

/// Arbitrary ioctl requests with arbitrary operands on a /proc fd
/// fail cleanly or succeed; never panic.
#[test]
fn random_ioctls_are_safe() {
    let mut rng = XorShift::new(0x10c71);
    for _ in 0..8 {
        let req = 0x5000 + rng.below(0x30) as u32;
        let arg_len = rng.below(48) as usize;
        let arg = rng.bytes(arg_len);
        let mut sys: System = tools::boot_demo();
        let ctl = sys.spawn_hosted("fuzz", Cred::new(100, 10));
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdwr())
            .expect("open");
        let _ = sys.host_ioctl(ctl, fd, req, &arg);
        // Target still alive (unless the fuzz legitimately killed it via
        // PIOCKILL with a valid signal — allow both, but no panic).
        let _ = sys.kernel.proc(pid);
    }
}

/// Random /proc file offsets read or fail with EIO, never panic; the
/// truncation rule holds: a successful read never returns more bytes
/// than the valid span.
#[test]
fn random_offset_proc_reads() {
    let mut rng = XorShift::new(0x0ff5e7);
    for _ in 0..8 {
        let off = rng.below(1 << 32);
        let mut sys: System = tools::boot_demo();
        let ctl = sys.spawn_hosted("fuzz", Cred::new(100, 10));
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly())
            .expect("open");
        sys.host_lseek(ctl, fd, off as i64, 0).expect("lseek");
        let mut buf = [0u8; 256];
        match sys.host_read(ctl, fd, &mut buf) {
            Ok(n) => {
                let span = sys.kernel.proc(pid).expect("p").aspace.valid_span(off, 256);
                assert!(n as u64 <= span.max(1));
            }
            Err(e) => assert_eq!(e, procsim::ksim::Errno::EIO),
        }
    }
}

/// A control batch whose framing is damaged — truncated header, length
/// overrunning the buffer, oversized payload, or trailing garbage that
/// cannot be a record — is rejected with `EINVAL` before *any* record
/// executes: a valid `PCKILL` at the front of a malformed batch must
/// not fire.
#[test]
fn malformed_ctl_batches_have_no_side_effects() {
    use procsim::procfs::hier::PCKILL;
    use procsim::procfs::ctl_record;

    let kill = ctl_record(PCKILL, &(procsim::ksim::signal::SIGKILL as u32).to_le_bytes());

    // Positive control: the same record alone really does kill.
    {
        let mut sys = tools::boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let cfd = sys
            .host_open(ctl, &format!("/proc2/{}/ctl", pid.0), vfs::OFlags::wronly())
            .expect("open ctl");
        sys.host_write(ctl, cfd, &kill).expect("kill applies");
        sys.run_idle(2_000);
        assert!(sys.kernel.proc(pid).map(|p| p.zombie).unwrap_or(true), "control case died");
    }

    // Each malformed tail must suppress the kill entirely.
    let oversized = {
        // Well-formed header whose length field (8 KiB) exceeds any
        // legitimate control payload, with the payload actually present.
        let mut r = ctl_record(PCKILL, &vec![0u8; 8192]);
        r.truncate(8 + 8192);
        r
    };
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("truncated header", vec![0x01, 0x00, 0x00]),
        ("length overrun", {
            let mut r = Vec::new();
            r.extend_from_slice(&procsim::procfs::hier::PCSTRACE.to_le_bytes());
            r.extend_from_slice(&1_000_000u32.to_le_bytes());
            r
        }),
        ("oversized payload", oversized),
        ("trailing garbage", vec![0xDE, 0xAD, 0xBE, 0xEF, 0x99]),
    ];
    for (what, tail) in cases {
        let mut sys = tools::boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let cfd = sys
            .host_open(ctl, &format!("/proc2/{}/ctl", pid.0), vfs::OFlags::wronly())
            .expect("open ctl");
        let mut batch = kill.clone();
        batch.extend_from_slice(&tail);
        let err = sys.host_write(ctl, cfd, &batch).expect_err(what);
        assert_eq!(err, procsim::ksim::Errno::EINVAL, "{what}");
        sys.run_idle(2_000);
        let proc = sys.kernel.proc(pid).expect("target survives");
        assert!(!proc.zombie, "{what}: the leading kill record must not have fired");
    }
}

/// Fuzz the framing validator: a valid `PCKILL` prefix plus a random
/// tail that cannot frame as a record (short fragment, or a header whose
/// length overruns the buffer) is always rejected whole — the leading
/// kill never fires, across many random shapes.
#[test]
fn fuzzed_ctl_tails_never_apply_partially() {
    use procsim::procfs::ctl_record;
    use procsim::procfs::hier::PCKILL;
    let mut rng = XorShift::new(0xbad_f2a9);
    let kill = ctl_record(PCKILL, &(procsim::ksim::signal::SIGKILL as u32).to_le_bytes());
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
    for round in 0..24 {
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let cfd = sys
            .host_open(ctl, &format!("/proc2/{}/ctl", pid.0), vfs::OFlags::wronly())
            .expect("open ctl");
        let mut batch = kill.clone();
        if round % 2 == 0 {
            // A fragment too short to hold a record header.
            let n = 1 + rng.below(7) as usize;
            batch.extend_from_slice(&rng.bytes(n));
        } else {
            // A full header whose length field overruns the buffer.
            batch.extend_from_slice(&(rng.below(1 << 32) as u32).to_le_bytes());
            batch.extend_from_slice(&(9_000_000 + rng.below(1 << 20) as u32).to_le_bytes());
            let n = rng.below(16) as usize;
            batch.extend_from_slice(&rng.bytes(n));
        }
        let err = sys.host_write(ctl, cfd, &batch).expect_err("malformed batch");
        assert_eq!(err, procsim::ksim::Errno::EINVAL, "round {round}");
        sys.run_idle(1_000);
        assert!(!sys.kernel.proc(pid).expect("alive").zombie, "round {round}: kill leaked");
        sys.host_kill(ctl, pid, procsim::ksim::signal::SIGKILL).expect("cleanup");
        sys.run_idle(1_000);
    }
}

#[test]
fn fork_bomb_is_contained_by_run_budget() {
    // A self-replicating program: every instance forks forever. The
    // simulation must stay responsive and the process table bounded by
    // what actually ran.
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
    sys.install_program(
        "/bin/bomb",
        r#"
        _start:
        loop:
            movi rv, 2
            syscall
            jmp loop
        "#,
    );
    sys.spawn_program(ctl, "/bin/bomb", &["bomb"]).expect("spawn");
    // A couple thousand steps breed plenty of processes; the scheduler
    // scan is O(n) per step, so keep n civilised.
    sys.run_idle(1_500);
    let n = sys.kernel.procs.len();
    assert!(n > 3, "the bomb forked");
    // Kill them all; children forked mid-drain need further rounds.
    for _ in 0..50 {
        let pids: Vec<Pid> = sys
            .kernel
            .procs
            .values()
            .filter(|p| !p.hosted && !p.zombie)
            .map(|p| p.pid)
            .collect();
        if pids.is_empty() {
            break;
        }
        for pid in pids {
            let _ = sys.host_kill(ctl, pid, procsim::ksim::signal::SIGKILL);
        }
        sys.run_idle(2_000);
    }
    assert!(
        sys.kernel.procs.values().all(|p| p.hosted || p.zombie),
        "every bomb process is dead"
    );
}

#[test]
fn many_processes_under_observation() {
    // 50 concurrent spinners, all being watched by ps while running.
    let mut sys = tools::boot_demo();
    let root = sys.spawn_hosted("root", Cred::superuser());
    let user = sys.spawn_hosted("user", Cred::new(100, 10));
    for _ in 0..50 {
        sys.spawn_program(user, "/bin/spin", &["spin"]).expect("spawn");
    }
    sys.run_idle(1000);
    let snaps = tools::ps::ps_snapshots(&mut sys, root).expect("ps");
    assert!(snaps.len() >= 52);
    let spinners = snaps.iter().filter(|p| p.fname == "spin").count();
    assert_eq!(spinners, 50);
    // Every spinner consumed CPU time (round-robin fairness).
    sys.run_idle(5000);
    let snaps = tools::ps::ps_snapshots(&mut sys, root).expect("ps");
    let starved = snaps.iter().filter(|p| p.fname == "spin" && p.time == 0).count();
    assert_eq!(starved, 0, "no spinner starved");
}

/// Forges a sequenced `PCKILL` write frame against a target's hier ctl
/// node, exactly as a hostile client would put it on the wire.
fn forge_kill_frame(
    sys: &mut System,
    fs: &mut vfs::remote::RemoteFs<procsim::ksim::Kernel>,
    ctl: Pid,
    pid: Pid,
    tag: u64,
) -> (Vec<u8>, vfs::NodeId, vfs::OpenToken) {
    use procsim::procfs::{ctl_record, hier::PCKILL};
    use vfs::FileSystem;
    let cred = Cred::superuser();
    let k = &mut sys.kernel;
    let dir = fs.lookup(k, ctl, vfs::NodeId(0), &pid.0.to_string()).expect("pid dir");
    let node = fs.lookup(k, ctl, dir, "ctl").expect("ctl node");
    let tok = fs.open(k, ctl, node, vfs::OFlags::wronly(), &cred).expect("open ctl");
    let rec = ctl_record(PCKILL, &(procsim::ksim::signal::SIGUSR1 as u32).to_le_bytes());
    let body = vfs::remote::marshal_write(ctl, node, tok, 0, &rec);
    (vfs::remote::encode_frame(tag, &body), node, tok)
}

/// Adversarial frame kind: mid-frame truncation at *every* byte offset.
/// Each strict prefix of a forged control-write frame, injected raw
/// into its own server session, must have zero side effects — then the
/// intact frame applies exactly once, and replaying its bytes with the
/// same (stale) tag is absorbed by the dedup window, not re-executed.
#[test]
fn truncated_frames_at_every_offset_have_no_side_effects() {
    use procsim::procfs::HierFs;
    use vfs::remote::RemoteFs;
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("forger", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(50);
    let mut fs = RemoteFs::new(Box::new(HierFs::new()));
    let (frame, _, _) = forge_kill_frame(&mut sys, &mut fs, ctl, pid, 42);

    // Every strict prefix: its own session, no effect, no panic.
    for cut in 0..frame.len() {
        let c = fs.client();
        c.inject_inbound(&mut sys.kernel, &frame[..cut]);
        while c.pump(&mut sys.kernel) {}
    }
    sys.run_idle(200);
    assert_eq!(
        sys.kernel.log.sig_posts_of(pid, procsim::ksim::signal::SIGUSR1),
        0,
        "a truncated forged frame had a side effect"
    );

    // The intact frame applies — exactly once.
    let c = fs.client();
    c.inject_inbound(&mut sys.kernel, &frame);
    while c.pump(&mut sys.kernel) {}
    sys.run_idle(200);
    assert_eq!(sys.kernel.log.sig_posts_of(pid, procsim::ksim::signal::SIGUSR1), 1);

    // Stale-tag replay behind a mid-frame cut: a truncated copy whose
    // body never finishes, then the same stale bytes twice — the
    // stream resyncs past the corpse and the server-wide dedup window
    // answers the replays from its cache.
    let c2 = fs.client();
    let mut cut_then_replay = frame[..frame.len() / 2].to_vec();
    cut_then_replay.extend_from_slice(&frame);
    c2.inject_inbound(&mut sys.kernel, &cut_then_replay);
    c2.inject_inbound(&mut sys.kernel, &frame);
    while c2.pump(&mut sys.kernel) {}
    sys.run_idle(200);
    assert_eq!(
        sys.kernel.log.sig_posts_of(pid, procsim::ksim::signal::SIGUSR1),
        1,
        "a stale-tag replay re-executed a sequenced op"
    );
    assert!(fs.stats().dedup_hits >= 2, "the replays were not answered from the window");
    assert!(fs.stats().resync_bytes > 0, "truncated junk was never resynced past");
}

/// Adversarial frame kind: a flood burst of one forged control frame
/// against a session with a small inbound cap. The burst is shed at
/// the cap (high-water mark proves it never overflowed), the flooding
/// session is evicted, and the control message still applies exactly
/// once — flooding buys the adversary nothing.
#[test]
fn flood_bursts_are_shed_capped_and_exactly_once() {
    use procsim::procfs::HierFs;
    use vfs::remote::RemoteFs;
    const CAP: usize = 512;
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("flooder", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(50);
    let mut fs = RemoteFs::new(Box::new(HierFs::new()))
        .with_config(&vfs::remote::WireConfig::clean().queue_caps(CAP, CAP));
    let (frame, _, _) = forge_kill_frame(&mut sys, &mut fs, ctl, pid, 7);

    let c = fs.client();
    for _ in 0..64 {
        c.inject_inbound(&mut sys.kernel, &frame);
    }
    while c.pump(&mut sys.kernel) {}
    sys.run_idle(200);
    assert_eq!(
        sys.kernel.log.sig_posts_of(pid, procsim::ksim::signal::SIGUSR1),
        1,
        "a flood burst must apply its op exactly once"
    );
    let st = fs.stats();
    assert!(st.in_queue_hwm <= CAP as u64, "the inbound cap was exceeded");
    assert!(st.frames_shed > 0, "nothing was shed under a 64-frame burst");
    assert!(st.dedup_hits >= 1, "delivered duplicates were not absorbed");
    assert_eq!(st.sessions_evicted, 1, "the flooding session was not evicted");
    // The blocking face still works: the flood starved nobody else.
    use vfs::FileSystem;
    let dir = fs
        .lookup(&mut sys.kernel, ctl, vfs::NodeId(0), &pid.0.to_string())
        .expect("blocking face survives the flood");
    assert!(dir.0 > 0);
}

// ---------------------------------------------------------------------
// On-disk recfile loader fuzz (PR 9): hostile bytes by construction.
// ---------------------------------------------------------------------

use procsim::ksim::recfile::{self, RecfileError};

/// A small real recording with several committed segments and banked
/// snapshot marks — the honest input the corruptions below start from.
fn small_recfile() -> (Vec<u8>, procsim::ksim::Recording) {
    let cfg = procsim::ksim::SimConfig::standard().record(true).snapshot_every(4);
    let mut sys = tools::boot_demo_cfg(cfg);
    let ctl = sys.spawn_hosted("recfuzz", Cred::superuser());
    let _ = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(400);
    let bytes = sys.save_recfile().expect("recording is on");
    let rec = sys.recording().expect("recording is on");
    (bytes, rec)
}

/// Truncate the file at *every* byte offset: each cut must come back
/// typed — a strict-load error, or (only at an exact segment boundary)
/// a shorter but valid file — and `load_committed` must always surface
/// the committed prefix intact. No cut may panic.
#[test]
fn recfile_truncated_at_every_offset_loads_typed() {
    let (bytes, full) = small_recfile();
    assert!(bytes.len() > 64, "recording too small to fuzz meaningfully");
    let full_loaded = recfile::load(&bytes).expect("the untruncated file loads");
    assert_eq!(full_loaded.recording.records, full.records);

    for cut in 0..bytes.len() {
        let b = &bytes[..cut];
        match recfile::load(b) {
            // An exact segment boundary: a valid, strictly shorter file.
            Ok(f) => {
                assert!(
                    f.recording.records.len() < full.records.len() || cut == bytes.len(),
                    "cut {cut}: truncation loaded the full log"
                );
                assert_eq!(
                    f.recording.records[..],
                    full.records[..f.recording.records.len()],
                    "cut {cut}: committed prefix diverges"
                );
            }
            Err(e) => {
                // Typed is the requirement; the Display impl must hold
                // up too (it is what an operator sees).
                assert!(!e.to_string().is_empty(), "cut {cut}: silent error");
            }
        }
        // The crash-consistency promise: whatever was committed before
        // the torn tail is still there.
        if let Ok((prefix, _tail)) = recfile::load_committed(b) {
            assert_eq!(
                prefix.recording.records[..],
                full.records[..prefix.recording.records.len()],
                "cut {cut}: load_committed returned a non-prefix"
            );
        }
    }
}

/// Flip bits through the header and the first segments, and one bit in
/// every byte of the whole file: every flip must be *detected* (magic,
/// version, checksum, commit or malformed — all typed), because CRC32
/// catches all single-bit errors and the header fields are validated
/// field by field. No flip may panic or load silently.
#[test]
fn recfile_single_bit_flips_are_always_detected() {
    let (bytes, _) = small_recfile();

    // Exhaustive over the header + first segment region.
    let dense = bytes.len().min(160);
    for pos in 0..dense {
        for bit in 0..8u8 {
            let mut b = bytes.clone();
            b[pos] ^= 1 << bit;
            assert!(
                recfile::load(&b).is_err(),
                "flip at byte {pos} bit {bit} went undetected"
            );
        }
    }
    // One bit per byte across the rest of the file.
    for pos in dense..bytes.len() {
        let mut b = bytes.clone();
        b[pos] ^= 1 << (pos % 8);
        assert!(recfile::load(&b).is_err(), "flip at byte {pos} went undetected");
    }
}

/// Structured header damage gets the precise error, not a generic one:
/// wrong magic is `BadMagic`, an unknown version is `BadVersion`, and a
/// corrupted config region is the header checksum failing (segment 0).
#[test]
fn recfile_header_damage_is_precisely_typed() {
    let (bytes, _) = small_recfile();

    let mut magic = bytes.clone();
    magic[0] ^= 0xFF;
    assert!(matches!(recfile::load(&magic), Err(RecfileError::BadMagic)));

    let mut version = bytes.clone();
    version[8] = 0xEE; // version u32 lives right after the 8-byte magic
    assert!(matches!(recfile::load(&version), Err(RecfileError::BadVersion(_))));

    let mut config = bytes.clone();
    config[17] ^= 0x10; // inside the encoded SimConfig
    assert!(matches!(
        recfile::load(&config),
        Err(RecfileError::BadChecksum { segment: 0 } | RecfileError::Malformed { segment: 0, .. })
    ));

    assert!(matches!(recfile::load(&[]), Err(RecfileError::Truncated)));
    assert!(matches!(recfile::load(b"PSRECF"), Err(RecfileError::Truncated)));
}

/// The committed prefix of a torn file does not just parse — it
/// *replays*: sampled truncation points must yield prefixes the replay
/// engine reproduces without divergence.
#[test]
fn recfile_committed_prefixes_still_replay() {
    let (bytes, full) = small_recfile();
    let header_end = 16
        + u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize
        + 4;
    let mut replayed_any = false;
    for i in 1..8 {
        let cut = header_end + (bytes.len() - header_end) * i / 8;
        let Ok((prefix, tail)) = recfile::load_committed(&bytes[..cut]) else {
            continue; // cut inside the header region: typed, nothing committed
        };
        assert!(
            prefix.recording.records.len() <= full.records.len(),
            "cut {cut}: prefix longer than the original"
        );
        if cut < bytes.len() {
            assert!(
                tail.is_some() || prefix.recording.records.len() < full.records.len(),
                "cut {cut}: a torn tail went unreported"
            );
        }
        if prefix.recording.records.is_empty() {
            continue;
        }
        let mut rec = prefix.recording.clone();
        rec.config.record = true;
        let sys = procsim::procfs::replay(&rec)
            .unwrap_or_else(|d| panic!("cut {cut}: committed prefix diverged: {d:?}"));
        assert_eq!(
            sys.recording().expect("replayed recorder").records,
            prefix.recording.records,
            "cut {cut}: replayed prefix diverges"
        );
        replayed_any = true;
    }
    assert!(replayed_any, "no sampled cut produced a replayable prefix");
}
