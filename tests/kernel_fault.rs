//! The kernel fault-schedule oracle: every `/proc` controller must
//! survive a dying, starved, racing target.
//!
//! A seeded [`ksim::KernelFaultPlan`] injects `ENOMEM` at vm allocation
//! sites, `EAGAIN` at fork/spawn, `EINTR` and spurious wakeups on
//! blocking `/proc` waits, and asynchronous target death between any two
//! controller operations. Under 32 pinned seeds of that schedule, the
//! controllers (`truss`, the debugger, raw `ProcHandle` traffic) driven
//! through all three faces — flat ioctl, hierarchical ctl, remote
//! mount — must:
//!
//! * never panic — every failure is a typed [`Errno`];
//! * never leave a process event-stopped after the controller unwinds;
//! * never leave an orphaned breakpoint byte in a live target;
//! * replay the same seed to the same transcript, and run a zero-rate
//!   plan byte-for-byte identically to no plan at all.

use ksim::{Cred, Errno, KernelFaultRates, MountPlan, Pid, SimConfig, System};
use procfs::hier::{PCRUN, PCSTOP};
use procfs::{ctl_record, PrRun};
use tools::proc_io::ProcHandle;
use tools::{truss_command, DebugEvent, Debugger, TrussOptions};
use vfs::remote::WireConfig;
use vfs::OFlags;

/// Third face: the flat interface re-exported across the wire shim.
const REMOTE_MOUNT: &str = "/procr";

/// The 32 pinned oracle seeds.
fn seeds() -> impl Iterator<Item = u64> {
    (0..32u64).map(|i| 0xFA_017_000 + i)
}

/// Fault intensity for a seed: 2%–17.5% per site, swept across seeds.
fn rates_for(i: u64) -> KernelFaultRates {
    KernelFaultRates::uniform(20 + (i % 32) as u16 * 5)
}

/// The standard mounts plus the remote face, as a declarative config;
/// fault schedules are added per test and consumed at construction.
fn config() -> SimConfig {
    SimConfig::standard().mount(REMOTE_MOUNT, MountPlan::RemoteProc(WireConfig::clean()))
}

/// Boots the demo system under `cfg`.
fn boot_cfg(cfg: SimConfig) -> (System, Pid) {
    let mut sys = tools::boot_demo_cfg(cfg);
    let ctl = sys.spawn_hosted("kfault-oracle", Cred::superuser());
    (sys, ctl)
}

/// Boots the fault-free demo system.
fn boot() -> (System, Pid) {
    boot_cfg(config())
}

/// The failure modes a controller is allowed to surface under injection:
/// a typed errno from the injected fault itself, the target vanishing,
/// retry exhaustion, or the wait machinery giving up on a corpse.
fn clean_errno(e: Errno) -> bool {
    matches!(
        e,
        Errno::EAGAIN
            | Errno::EINTR
            | Errno::ENOMEM
            | Errno::ESRCH
            | Errno::ENOENT
            | Errno::EIO
            | Errno::EBUSY
            | Errno::EBADF
            | Errno::EDEADLK
    )
}

/// Spawns with the same bounded EAGAIN backoff the tools use.
fn spawn_retry(sys: &mut System, ctl: Pid, path: &str) -> Result<Pid, Errno> {
    let name = path.rsplit('/').next().unwrap_or(path);
    for attempt in 0..=tools::proc_io::TRANSIENT_RETRIES {
        match sys.spawn_program(ctl, path, &[name]) {
            Ok(p) => return Ok(p),
            Err(Errno::EAGAIN) => sys.run_idle(1 << attempt),
            Err(e) => return Err(e),
        }
    }
    Err(Errno::EAGAIN)
}

/// Best-effort release of a target the *test itself* stopped: wait for
/// any pending directed stop to land, then run it. (The tools' own
/// unwind paths are under test; this is only for raw-handle traffic.)
fn release(sys: &mut System, ctl: Pid, pid: Pid) {
    for _ in 0..16 {
        let Ok(p) = sys.kernel.proc(pid) else { return };
        if p.zombie {
            return;
        }
        if p.is_stopped() {
            if let Ok(mut h) = ProcHandle::open_rw(sys, ctl, pid) {
                let _ = h.resume(sys);
                let _ = h.close(sys);
            }
        }
        sys.run_idle(50);
    }
}

/// Face 1a: a complete `truss` run over the flat local mount.
fn truss_session(sys: &mut System, ctl: Pid) -> String {
    match truss_command(sys, ctl, "/bin/greeter", &["greeter"], &TrussOptions::default()) {
        Ok(r) => format!("truss ok lines={} exits={}", r.lines.len(), r.exits.len()),
        Err(e) => {
            assert!(clean_errno(e), "truss failed dirty: {e}");
            format!("truss err {}", e.name())
        }
    }
}

/// Face 1b: a breakpoint debugging session over the flat local mount.
/// Returns the transcript line; panics on any non-clean failure or an
/// orphaned breakpoint byte.
fn debugger_session(sys: &mut System, ctl: Pid) -> String {
    let mut dbg = match Debugger::launch(sys, ctl, "/bin/ticker", &["ticker"]) {
        Ok(d) => d,
        Err(e) => {
            assert!(clean_errno(e), "launch failed dirty: {e}");
            return format!("dbg launch-err {}", e.name());
        }
    };
    let pid = dbg.pid();
    let mut line = format!("dbg pid={}", pid.0);
    let tick = dbg.sym("tick").unwrap_or(0);
    // Remember the pristine text word so an orphaned trap byte is
    // detectable after the session unwinds.
    let mut pristine = [0u8; 8];
    let have_pristine = tick != 0 && dbg.read(sys, tick, &mut pristine).is_ok();
    if tick != 0 {
        match dbg.set_breakpoint(sys, tick) {
            Ok(()) => {
                for _ in 0..2 {
                    match dbg.cont(sys) {
                        Ok(DebugEvent::Exited(st)) => {
                            line.push_str(&format!(" exited={st:#x}"));
                            return line;
                        }
                        Ok(ev) => line.push_str(&format!(" ev={}", event_tag(&ev))),
                        Err(e) => {
                            assert!(clean_errno(e), "cont failed dirty: {e}");
                            line.push_str(&format!(" cont-err={}", e.name()));
                            break;
                        }
                    }
                }
            }
            Err(e) => {
                assert!(clean_errno(e), "set_breakpoint failed dirty: {e}");
                line.push_str(&format!(" bp-err={}", e.name()));
            }
        }
    }
    match dbg.detach(sys) {
        Ok(()) => line.push_str(" detached"),
        Err(e) => {
            assert!(clean_errno(e), "detach failed dirty: {e}");
            line.push_str(&format!(" detach-err={}", e.name()));
        }
    }
    // No orphaned breakpoints: if the target survived the session, its
    // text must hold the pristine word again.
    if have_pristine {
        if let Ok(p) = sys.kernel.proc(pid) {
            if !p.zombie {
                if let Ok(mut h) = ProcHandle::open_ro(sys, ctl, pid) {
                    let mut now = [0u8; 8];
                    if h.read_mem(sys, tick, &mut now) == Ok(8) {
                        assert_eq!(
                            now, pristine,
                            "pid {pid}: orphaned breakpoint byte after detach"
                        );
                    }
                    let _ = h.close(sys);
                }
            }
        }
    }
    line
}

fn event_tag(ev: &DebugEvent) -> &'static str {
    match ev {
        DebugEvent::Breakpoint { .. } => "bp",
        DebugEvent::Signal(_) => "sig",
        DebugEvent::SyscallEntry(_) => "entry",
        DebugEvent::SyscallExit(_) => "exit",
        DebugEvent::Fault(_) => "fault",
        DebugEvent::Stepped => "step",
        DebugEvent::Watchpoint => "watch",
        DebugEvent::Stopped => "stop",
        DebugEvent::Exited(_) => "exited",
    }
}

/// Face 2: hierarchical ctl-file traffic (status read, PCSTOP/PCRUN).
fn hier_session(sys: &mut System, ctl: Pid) -> String {
    let pid = match spawn_retry(sys, ctl, "/bin/spin") {
        Ok(p) => p,
        Err(e) => {
            assert!(clean_errno(e), "spawn failed dirty: {e}");
            return format!("hier spawn-err {}", e.name());
        }
    };
    let mut line = format!("hier pid={}", pid.0);
    match sys.host_open(ctl, &format!("/proc2/{}/status", pid.0), OFlags::rdonly()) {
        Ok(fd) => {
            let mut buf = [0u8; 4096];
            match sys.host_read(ctl, fd, &mut buf) {
                Ok(n) => line.push_str(&format!(" status={n}")),
                Err(e) => {
                    assert!(clean_errno(e), "status read failed dirty: {e}");
                    line.push_str(&format!(" status-err={}", e.name()));
                }
            }
            let _ = sys.host_close(ctl, fd);
        }
        Err(e) => {
            assert!(clean_errno(e), "status open failed dirty: {e}");
            line.push_str(&format!(" open-err={}", e.name()));
        }
    }
    match sys.host_open(ctl, &format!("/proc2/{}/ctl", pid.0), OFlags::wronly()) {
        Ok(cfd) => {
            for (tag, rec) in [
                ("stop", ctl_record(PCSTOP, &[])),
                ("run", ctl_record(PCRUN, &PrRun::default().to_bytes())),
            ] {
                match sys.host_write(ctl, cfd, &rec) {
                    Ok(_) => line.push_str(&format!(" {tag}-ok")),
                    Err(e) => {
                        assert!(clean_errno(e), "{tag} failed dirty: {e}");
                        line.push_str(&format!(" {tag}-err={}", e.name()));
                    }
                }
            }
            let _ = sys.host_close(ctl, cfd);
        }
        Err(e) => {
            assert!(clean_errno(e), "ctl open failed dirty: {e}");
            line.push_str(&format!(" ctl-err={}", e.name()));
        }
    }
    release(sys, ctl, pid);
    line
}

/// Face 3: raw handle traffic over the remote mount (stop, status,
/// resume, fault counters) — the same kernel injection reaches the wire
/// client because `EINTR`, death and `ENOMEM` live below the shim.
fn remote_session(sys: &mut System, ctl: Pid) -> String {
    let pid = match spawn_retry(sys, ctl, "/bin/spin") {
        Ok(p) => p,
        Err(e) => {
            assert!(clean_errno(e), "spawn failed dirty: {e}");
            return format!("remote spawn-err {}", e.name());
        }
    };
    let mut line = format!("remote pid={}", pid.0);
    match ProcHandle::open_at(sys, ctl, pid, REMOTE_MOUNT, OFlags::rdwr()) {
        Ok(mut h) => {
            match h.stop(sys) {
                Ok(st) => line.push_str(&format!(" stop-why={:?}", st.why)),
                Err(e) => {
                    assert!(clean_errno(e), "remote stop failed dirty: {e}");
                    line.push_str(&format!(" stop-err={}", e.name()));
                }
            }
            match h.status(sys) {
                Ok(st) => line.push_str(&format!(" flags={:#x}", st.flags)),
                Err(e) => {
                    assert!(clean_errno(e), "remote status failed dirty: {e}");
                    line.push_str(&format!(" status-err={}", e.name()));
                }
            }
            match h.kfault_stats(sys) {
                Ok(st) => line.push_str(&format!(" deaths={}", st.deaths)),
                Err(e) => {
                    assert!(clean_errno(e), "remote kfaultstats failed dirty: {e}");
                    line.push_str(&format!(" kstats-err={}", e.name()));
                }
            }
            if let Err(e) = h.resume(sys) {
                assert!(clean_errno(e), "remote resume failed dirty: {e}");
                line.push_str(&format!(" resume-err={}", e.name()));
            }
            let _ = h.close(sys);
        }
        Err(e) => {
            assert!(clean_errno(e), "remote open failed dirty: {e}");
            line.push_str(&format!(" open-err={}", e.name()));
        }
    }
    release(sys, ctl, pid);
    line
}

/// One seed's worth of controller traffic through all three faces.
fn drive(sys: &mut System, ctl: Pid) -> Vec<String> {
    vec![
        truss_session(sys, ctl),
        debugger_session(sys, ctl),
        hier_session(sys, ctl),
        remote_session(sys, ctl),
    ]
}

/// After the controllers have unwound, no live simulated process may be
/// left event-stopped (hosted controllers and zombies excepted).
fn assert_all_released(sys: &mut System, seed: u64) {
    // Let any pending directed stop land first, so a latched-but-not-yet
    // -stopped target cannot slip past the assertion.
    sys.run_idle(300);
    let stuck: Vec<u32> = sys
        .kernel
        .procs
        .iter()
        .filter(|(_, p)| !p.hosted && !p.zombie && p.is_stopped())
        .map(|(id, _)| *id)
        .collect();
    assert!(stuck.is_empty(), "seed {seed:#x}: pids {stuck:?} left stopped after unwind");
}

/// The tentpole gate: 32 pinned seeds of mixed kernel faults, every
/// controller failure typed, every target released, no orphaned
/// breakpoints — and at least one seed must actually inject something
/// (the schedule is not vacuous).
#[test]
fn fault_matrix_holds_for_32_seeds() {
    let mut total_injected = 0u64;
    for (i, seed) in seeds().enumerate() {
        let (mut sys, ctl) = boot_cfg(config().kernel_faults(seed, rates_for(i as u64)));
        drive(&mut sys, ctl);
        assert_all_released(&mut sys, seed);
        let st = sys.kfault_stats();
        total_injected += st.enomem_vm
            + st.eagain_fork
            + st.eagain_spawn
            + st.eintr_wait
            + st.spurious_wakeups
            + st.deaths;
    }
    assert!(total_injected > 0, "32 seeds injected nothing — the plan is not wired in");
}

/// Replaying a seed reproduces the same transcript and the same
/// injection counters, bit for bit.
#[test]
fn same_seed_replays_identically() {
    for seed in [0xFA_017_003u64, 0xFA_017_01C] {
        let run = |seed: u64| {
            let (mut sys, ctl) =
                boot_cfg(config().kernel_faults(seed, KernelFaultRates::uniform(120)));
            let t = drive(&mut sys, ctl);
            (t, sys.kfault_stats())
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.0, b.0, "seed {seed:#x}: transcripts diverged");
        assert_eq!(a.1, b.1, "seed {seed:#x}: injection counters diverged");
    }
}

/// The determinism contract: a plan whose rates are all zero consumes no
/// generator state, so it reproduces the no-plan run byte for byte; its
/// counters stay zero.
#[test]
fn empty_plan_reproduces_clean_run() {
    let clean = {
        let (mut sys, ctl) = boot();
        drive(&mut sys, ctl)
    };
    let zeroed = {
        let (mut sys, ctl) =
            boot_cfg(config().kernel_faults(0xDEAD_BEEF, KernelFaultRates::default()));
        let t = drive(&mut sys, ctl);
        assert_eq!(
            sys.kfault_stats(),
            ksim::KFaultStats::default(),
            "a zero-rate plan must inject nothing"
        );
        t
    };
    assert_eq!(clean, zeroed, "zero-rate plan diverged from the clean run");
}

/// A certain-death schedule: every controller op kills some target, yet
/// every tool still unwinds to a typed result.
#[test]
fn certain_death_degrades_cleanly() {
    let (mut sys, ctl) =
        boot_cfg(config().kernel_faults(7, KernelFaultRates { death: 1000, ..Default::default() }));
    drive(&mut sys, ctl);
    assert_all_released(&mut sys, 7);
    assert!(sys.kfault_stats().deaths > 0, "nothing died under a certain-death plan");
}

/// Satellite 3 (local): `ProcHandle::scoped` must release its descriptor
/// when the body panics. With run-on-last-close set and the target
/// stopped, the last close must set the target running again — the
/// paper's `PIOCSRLC` promise — even though the unwind is a panic, not a
/// return.
#[test]
fn run_on_last_close_survives_panic_unwind_locally() {
    run_on_last_close_under_panic("/proc");
}

/// Satellite 3 (remote): the same promise across the wire shim, where
/// the close travels as a session op rather than a direct host call.
#[test]
fn run_on_last_close_survives_panic_unwind_remotely() {
    run_on_last_close_under_panic(REMOTE_MOUNT);
}

fn run_on_last_close_under_panic(mount: &str) {
    let (mut sys, ctl) = boot();
    let pid = spawn_retry(&mut sys, ctl, "/bin/spin").expect("spawn");
    sys.run_idle(50);
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _: Result<(), Errno> =
            ProcHandle::scoped_at(&mut sys, ctl, pid, mount, OFlags::rdwr(), |sys, h| {
                h.set_run_on_last_close(sys, true)?;
                h.stop(sys)?;
                assert!(
                    sys.kernel.proc(pid).map(|p| p.is_stopped()).unwrap_or(false),
                    "target must be stopped inside the scope"
                );
                panic!("controller crashed while its target was stopped");
            });
    }));
    assert!(unwound.is_err(), "the panic must propagate out of the scope");
    // The guard closed the descriptor during the unwind; run-on-last-
    // close must have released the target.
    sys.run_idle(100);
    let p = sys.kernel.proc(pid).expect("target survives its controller");
    assert!(!p.is_stopped(), "{mount}: target left stopped after panic unwind");
}

/// Satellite 1: a target that dies between POLLHUP readiness and
/// classification must surface from `wait_event_any` as a clean
/// `DebugEvent::Exited`, not a raw error from waiting on a corpse.
#[test]
fn wait_event_any_reports_death_as_exited() {
    let (mut sys, ctl) = boot();
    let a = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch a");
    let b = Debugger::launch(&mut sys, ctl, "/bin/spin", &["spin"]).expect("launch b");
    let victim = b.pid();
    let mut dbgs = vec![a, b];
    for d in &mut dbgs {
        d.h.resume(&mut sys).expect("resume");
    }
    // Kill target b out from under its debugger: the next poll sees
    // POLLHUP on a zombie, and classification must not try PIOCWSTOP.
    sys.force_kill(victim, ksim::signal::SIGKILL);
    sys.run_idle(100);
    let (i, ev) = tools::debugger::wait_event_any(&mut sys, &mut dbgs)
        .expect("multi-target wait survives one target vanishing");
    assert_eq!(i, 1, "the dead target is the one reported");
    assert!(matches!(ev, DebugEvent::Exited(_)), "got {ev:?}, wanted Exited");
}

/// The spurious-wakeup site: with wakeups certain and everything else
/// off, `host_poll_in` returns with nothing ready and the poll loops
/// must simply go around again — bounded, counted, and ultimately
/// successful once a real event lands.
#[test]
fn spurious_wakeups_are_absorbed() {
    let (mut sys, ctl) = boot_cfg(
        config().kernel_faults(11, KernelFaultRates { wakeup: 1000, ..Default::default() }),
    );
    let a = Debugger::launch(&mut sys, ctl, "/bin/spin", &["spin"]).expect("launch");
    let victim = a.pid();
    let mut dbgs = vec![a];
    dbgs[0].h.resume(&mut sys).expect("resume");
    sys.force_kill(victim, ksim::signal::SIGKILL);
    sys.run_idle(100);
    let (i, ev) = tools::debugger::wait_event_any(&mut sys, &mut dbgs)
        .expect("wait survives spurious wakeups");
    assert_eq!((i, matches!(ev, DebugEvent::Exited(_))), (0, true));
    assert!(
        sys.kfault_stats().spurious_wakeups > 0,
        "a certain wakeup rate injected nothing across the wait"
    );
}

/// The E12 matrix printer (not part of the tier-1 gate): sweeps fault
/// intensity against each tool and classifies every session as full
/// recovery (no typed error surfaced) or graceful degradation (a typed
/// error surfaced, session still unwound cleanly). Reproduce with
/// `cargo test -q --test kernel_fault -- --ignored --nocapture e12`.
#[test]
#[ignore = "prints the E12 fault-rate x tool matrix; run with --ignored --nocapture"]
fn e12_fault_matrix_sweep() {
    const TOOLS: [&str; 4] = ["truss", "debugger", "hier", "remote"];
    println!("rate   {:>18} {:>18} {:>18} {:>18}   (recovered/degraded of 8 seeds)",
        TOOLS[0], TOOLS[1], TOOLS[2], TOOLS[3]);
    for permille in [0u16, 50, 150, 300, 600] {
        let mut counts = [[0u32; 2]; 4];
        for s in 0..8u64 {
            let seed = 0xE12_000 + s;
            let mut cfg = config();
            if permille > 0 {
                cfg = cfg.kernel_faults(seed, KernelFaultRates::uniform(permille));
            }
            let (mut sys, ctl) = boot_cfg(cfg);
            for (t, line) in drive(&mut sys, ctl).iter().enumerate() {
                counts[t][usize::from(line.contains("err"))] += 1;
            }
            assert_all_released(&mut sys, seed);
        }
        let cell = |t: usize| format!("{:>9}/{}", counts[t][0], counts[t][1]);
        println!("{permille:>4}\u{2030} {:>18} {:>18} {:>18} {:>18}",
            cell(0), cell(1), cell(2), cell(3));
    }
}

/// The execution fast path's differential oracle, fault-suite half:
/// with the software TLB and decoded-instruction cache forced off,
/// every seed of the kernel fault schedule must reproduce the
/// fast-path-enabled transcript and injection counters byte for byte.
/// The caches may only change *when* work happens, never *what*
/// happens — including which RNG rolls the memory-pressure and fault
/// plans consume.
#[test]
fn fast_path_off_is_transcript_identical_for_32_seeds() {
    for (i, seed) in seeds().enumerate() {
        let run = |fast: bool| {
            let (mut sys, ctl) =
                boot_cfg(config().fast_path(fast).kernel_faults(seed, rates_for(i as u64)));
            let t = drive(&mut sys, ctl);
            (t, sys.kfault_stats())
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.0, off.0, "seed {seed:#x}: fast path changed the transcript");
        assert_eq!(on.1, off.1, "seed {seed:#x}: fast path changed the injection counters");
    }
}

/// Satellite 2: a targeted-death plan only kills processes a controller
/// currently holds a writable `/proc` descriptor on. With death certain
/// on every op, the held target dies and the bystander survives the
/// whole session.
#[test]
fn targeted_death_spares_bystanders() {
    let (mut sys, ctl) = boot_cfg(
        config()
            .targeted_kernel_faults(99, KernelFaultRates { death: 1000, ..Default::default() }),
    );
    let held = spawn_retry(&mut sys, ctl, "/bin/spin").expect("spawn held");
    let bystander = spawn_retry(&mut sys, ctl, "/bin/spin").expect("spawn bystander");
    sys.run_idle(50);
    // No writable descriptor is open yet: certain-death rolls are spent
    // with no victim, and both targets live.
    let _ = sys.host_poll_in(ctl, &[]);
    assert!(!sys.kernel.proc(held).map(|p| p.zombie).unwrap_or(true), "held died early");
    match ProcHandle::open_rw(&mut sys, ctl, held) {
        Ok(mut h) => {
            // Every subsequent op rolls certain death against the set
            // of held targets — which is exactly {held}.
            for _ in 0..4 {
                match h.status(&mut sys) {
                    Ok(_) => {}
                    Err(e) => assert!(clean_errno(e), "status failed dirty: {e}"),
                }
            }
            let _ = h.close(&mut sys);
        }
        Err(e) => assert!(clean_errno(e), "open failed dirty: {e}"),
    }
    sys.run_idle(100);
    let held_gone = sys.kernel.proc(held).map(|p| p.zombie).unwrap_or(true);
    let bystander_alive = sys.kernel.proc(bystander).map(|p| !p.zombie).unwrap_or(false);
    assert!(held_gone, "certain targeted death never killed the held target");
    assert!(bystander_alive, "targeted death killed a bystander");
    assert!(sys.kfault_stats().deaths > 0, "no deaths counted");
    release(&mut sys, ctl, bystander);
}

/// Satellite (PR 7): the mid-op death site fires *inside* a single
/// blocking op's pump loop — after `PIOCWSTOP` has latched its target
/// but before the wait completes, which the per-op site (rolled only at
/// op entry) can never reach. A targeted certain-mid-op plan kills the
/// held target between two scheduler steps of one stop; the controller
/// surfaces a typed result, and the mid-op counter — not the per-op
/// one — records the death.
#[test]
fn target_death_mid_wstop_is_typed_and_counted() {
    let (mut sys, ctl) = boot_cfg(config().targeted_kernel_faults(
        0x3D0_7EA,
        KernelFaultRates { mid_op: 1000, ..Default::default() },
    ));
    let pid = spawn_retry(&mut sys, ctl, "/bin/spin").expect("spawn");
    sys.run_idle(50);
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    // The wait either reports a stop that raced ahead of the kill or
    // degrades to a typed error — never a panic, never a hang.
    match h.stop(&mut sys) {
        Ok(_) => {}
        Err(e) => assert!(clean_errno(e), "mid-op death surfaced dirty: {e}"),
    }
    let _ = h.close(&mut sys);
    sys.run_idle(100);
    let st = sys.kfault_stats();
    assert!(st.deaths_mid_op > 0, "the in-pump hook never fired");
    assert_eq!(st.deaths, 0, "the per-op site must not have fired (its rate is zero)");
    assert!(
        sys.kernel.proc(pid).map(|p| p.zombie).unwrap_or(true),
        "certain mid-op death left the held target alive"
    );
    assert_all_released(&mut sys, 0x3D0_7EA);
}

/// PR 10: the 32-seed fault matrix re-run through the sharded gang-round
/// engine at `shards ∈ {1, 2, 4}`. Kernel fault injection consumes
/// generator state per *site visit*, so the schedule — and therefore the
/// controller transcripts, the injection counters and the final clock —
/// must be byte-identical across shard counts: the commit permutation
/// reorders host threads, never observable kernel work.
#[test]
fn fault_matrix_transcripts_identical_across_shard_counts() {
    for (i, seed) in seeds().enumerate() {
        let run = |shards: u32| {
            let (mut sys, ctl) = boot_cfg(
                config()
                    .shards(shards)
                    .interleave_seed(seed)
                    .kernel_faults(seed, rates_for(i as u64)),
            );
            let t = drive(&mut sys, ctl);
            assert_all_released(&mut sys, seed);
            (t, sys.kfault_stats(), sys.kernel.clock)
        };
        let base = run(1);
        for shards in [2u32, 4] {
            let got = run(shards);
            assert_eq!(
                base.0, got.0,
                "seed {seed:#x}: transcripts diverged between shards=1 and shards={shards}"
            );
            assert_eq!(
                base.1, got.1,
                "seed {seed:#x}: injection counters diverged at shards={shards}"
            );
            assert_eq!(base.2, got.2, "seed {seed:#x}: clock diverged at shards={shards}");
        }
    }
}

/// PR 10 satellite: `controller_death` fires *inside the scheduler* — a
/// hosted controller that holds a target stopped (with run-on-last-close
/// latched) dies between two gang rounds. Its exit closes its `/proc`
/// descriptors, which must clear the stop directive and set the target
/// running: no shard count may deadlock or leak a stopped process, and
/// the simulation keeps making progress after its controller is gone.
#[test]
fn controller_death_in_scheduler_releases_targets_at_every_shard_count() {
    for shards in [1u32, 2, 4] {
        let (mut sys, ctl) = boot_cfg(
            config().shards(shards).interleave_seed(0xC0DE).kernel_faults(
                0x0C01_70DE + u64::from(shards),
                KernelFaultRates { controller_death: 1000, ..Default::default() },
            ),
        );
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        // Host-API setup does not step the machine, so the certain-death
        // roll cannot have fired yet: open a writable handle, latch
        // run-on-last-close, then ask for a blocking stop.
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open handle");
        h.set_run_on_last_close(&mut sys, true).expect("PIOCSRLC");
        // The blocking stop pumps the scheduler, and the first round
        // kills the controller out from under its own wait: either the
        // stop latched ahead of the death or the wait surfaces a typed
        // error from the corpse — never a hang.
        match h.stop(&mut sys) {
            Ok(_) => {}
            Err(e) => assert!(clean_errno(e), "shards={shards}: stop died dirty: {e}"),
        }
        let _ = h.close(&mut sys);
        sys.run_idle(200);
        let st = sys.kfault_stats();
        assert!(st.controller_deaths >= 1, "shards={shards}: the scheduler site never fired");
        assert!(
            sys.kernel.proc(ctl).map(|p| p.zombie).unwrap_or(true),
            "shards={shards}: certain controller death left the controller alive"
        );
        assert!(
            sys.kernel.proc(pid).map(|p| !p.zombie).unwrap_or(false),
            "shards={shards}: the target must survive its controller"
        );
        assert_all_released(&mut sys, u64::from(shards));
        // Progress after the controller died: the released target keeps
        // retiring instructions.
        let before = sys.kernel.proc(pid).map(|p| p.cpu_time).unwrap_or(0);
        sys.run_idle(20);
        let after = sys.kernel.proc(pid).map(|p| p.cpu_time).unwrap_or(0);
        assert!(after > before, "shards={shards}: no progress after controller death");
    }
}

/// Fault-free runs through `scoped` also release on the way out (the
/// non-panic half of the guard).
#[test]
fn scoped_releases_on_ordinary_return() {
    let (mut sys, ctl) = boot();
    let pid = spawn_retry(&mut sys, ctl, "/bin/spin").expect("spawn");
    sys.run_idle(50);
    let why = ProcHandle::scoped(&mut sys, ctl, pid, OFlags::rdwr(), |sys, h| {
        h.set_run_on_last_close(sys, true)?;
        Ok(h.stop(sys)?.why)
    })
    .expect("scoped session");
    assert_eq!(format!("{why:?}"), "Requested");
    sys.run_idle(100);
    let p = sys.kernel.proc(pid).expect("alive");
    assert!(!p.is_stopped(), "target left stopped after scoped return");
}
