//! Coherence and hit-rate checks for the generation-stamped snapshot
//! cache shared by the two `/proc` interfaces.
//!
//! The oracle: after every randomized kernel mutation, every cached read
//! (flat `PIOC*` ioctl replies, hierarchical file images, both root
//! listings) must be byte-identical to a freshly rendered image. Read
//! twice so both the fill path and the hot hit path are compared.

use bench_support::XorShift;
use procsim::ksim::{Cred, Kernel, Pid, SysResult, System};
use procsim::procfs::ioctl::{
    PIOCCACHESTATS, PIOCCRED, PIOCMAP, PIOCPSINFO, PIOCSTATUS, PIOCUSAGE,
};
use procsim::procfs::{ops, PrCacheStats, PrCred, PrMap, PrUsage, PsInfo};
use procsim::tools;

/// The five pure-read requests whose replies are cached, with the
/// hierarchical file each is byte-identical to.
const CACHED: [(u32, &str); 5] = [
    (PIOCSTATUS, "status"),
    (PIOCPSINFO, "psinfo"),
    (PIOCMAP, "map"),
    (PIOCCRED, "cred"),
    (PIOCUSAGE, "usage"),
];

/// Renders the wire image directly from kernel state, bypassing both
/// file systems and therefore the cache.
fn fresh(k: &Kernel, pid: Pid, req: u32) -> SysResult<Vec<u8>> {
    match req {
        PIOCSTATUS => ops::status_bytes(k, pid, None),
        PIOCPSINFO => PsInfo::capture(k, pid).map(|p| p.to_bytes()),
        PIOCMAP => PrMap::capture_all(k, pid).map(|maps| {
            let mut out = Vec::new();
            for m in &maps {
                out.extend_from_slice(&m.to_bytes());
            }
            out
        }),
        PIOCCRED => PrCred::capture(k, pid).map(|c| c.to_bytes()),
        PIOCUSAGE => PrUsage::capture(k, pid).map(|u| u.to_bytes()),
        _ => unreachable!("not a cached request"),
    }
}

/// Reads a whole hierarchical status file.
fn read_all(sys: &mut System, ctl: Pid, path: &str) -> SysResult<Vec<u8>> {
    let fd = sys.host_open(ctl, path, vfs::OFlags::rdonly())?;
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = sys.host_read(ctl, fd, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    let _ = sys.host_close(ctl, fd);
    Ok(out)
}

/// Compares every cached read path for one pid against fresh renders.
fn check_pid(sys: &mut System, ctl: Pid, pid: Pid) {
    if let Ok(fd) = sys.host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly()) {
        for (req, _) in CACHED {
            let expect = fresh(&sys.kernel, pid, req);
            for pass in 0..2 {
                let got = sys.host_ioctl(ctl, fd, req, &[]);
                assert_eq!(
                    got.is_ok(),
                    expect.is_ok(),
                    "flat {req:#x} pass {pass} pid {}: {got:?} vs {expect:?}",
                    pid.0
                );
                if let (Ok(g), Ok(e)) = (&got, &expect) {
                    assert_eq!(g, e, "flat {req:#x} pass {pass} pid {} diverged", pid.0);
                }
            }
        }
        let _ = sys.host_close(ctl, fd);
    }
    for (req, file) in CACHED {
        let expect = fresh(&sys.kernel, pid, req);
        for pass in 0..2 {
            let got = read_all(sys, ctl, &format!("/proc2/{}/{}", pid.0, file));
            assert_eq!(
                got.is_ok(),
                expect.is_ok(),
                "hier {file} pass {pass} pid {}: {got:?} vs {expect:?}",
                pid.0
            );
            if let (Ok(g), Ok(e)) = (&got, &expect) {
                assert_eq!(g, e, "hier {file} pass {pass} pid {} diverged", pid.0);
            }
        }
    }
    check_lwps(sys, ctl, pid);
}

/// Compares the per-LWP cached images (`lwp/<tid>/status`, `gregs`) —
/// stamped with the per-LWP generation — against fresh renders.
fn check_lwps(sys: &mut System, ctl: Pid, pid: Pid) {
    let tids: Vec<u32> = match sys.kernel.proc(pid) {
        Ok(p) if !p.zombie => p.lwps.iter().map(|l| l.tid.0).collect(),
        _ => return,
    };
    for tid in tids {
        let expect_status = ops::status_bytes(&sys.kernel, pid, Some(procsim::ksim::Tid(tid)));
        let expect_gregs = sys
            .kernel
            .proc(pid)
            .ok()
            .and_then(|p| p.lwp(procsim::ksim::Tid(tid)))
            .map(|l| l.gregs.to_bytes());
        for pass in 0..2 {
            let st = read_all(sys, ctl, &format!("/proc2/{}/lwp/{}/status", pid.0, tid));
            assert_eq!(
                st.ok(),
                expect_status.clone().ok(),
                "lwp {tid} status pass {pass} pid {} diverged",
                pid.0
            );
            let gr = read_all(sys, ctl, &format!("/proc2/{}/lwp/{}/gregs", pid.0, tid));
            assert_eq!(
                gr.ok(),
                expect_gregs.clone(),
                "lwp {tid} gregs pass {pass} pid {} diverged",
                pid.0
            );
        }
    }
}

/// Compares both cached root listings against the process table.
fn check_dirs(sys: &mut System, ctl: Pid) {
    let mut expect: Vec<u32> = sys.kernel.procs.keys().copied().collect();
    expect.sort_unstable();
    for (path, width) in [("/proc", 5usize), ("/proc2", 0)] {
        let once = sys.list_dir(ctl, path).expect("list");
        let again = sys.list_dir(ctl, path).expect("list");
        assert_eq!(once, again, "{path} cached listing diverged");
        let mut got: Vec<u32> = once.iter().filter_map(|e| e.name.parse().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, expect, "{path} listing does not match the table");
        if width > 0 {
            assert!(once.iter().all(|e| e.name.len() >= width));
        }
    }
}

/// Writes a few bytes into the target's address space through the flat
/// process file (one of the mutations the cache must observe).
fn poke_memory(sys: &mut System, ctl: Pid, pid: Pid, rng: &mut XorShift) {
    let Ok(maps) = PrMap::capture_all(&sys.kernel, pid) else { return };
    let Ok(fd) = sys.host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdwr()) else {
        return;
    };
    for m in &maps {
        // Prefer a writable page; fall back on trying them all.
        if m.prot & 2 == 0 {
            continue;
        }
        let off = m.vaddr + rng.below(m.size.clamp(1, 64));
        let n = 1 + rng.below(4) as usize;
        let data = rng.bytes(n);
        if sys.host_lseek(ctl, fd, off as i64, 0).is_ok() && sys.host_write(ctl, fd, &data).is_ok()
        {
            break;
        }
    }
    let _ = sys.host_close(ctl, fd);
}

/// Randomized interleaving of signals, stops, resumes, forks, execs,
/// exits and memory writes; the cache must stay coherent after each.
#[test]
fn cache_coherence_oracle() {
    for seed in [0x0dd5eedu64, 0xf00dfeed] {
        let mut rng = XorShift::new(seed);
        let mut sys = tools::boot_demo();
        let ctl = sys.spawn_hosted("oracle", Cred::superuser());
        let mut victims: Vec<Pid> = (0..4)
            .map(|_| sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn"))
            .collect();
        sys.run_idle(100);
        for _step in 0..40 {
            let pick = victims[rng.below(victims.len() as u64) as usize];
            let alive = sys.kernel.proc(pick).map(|p| !p.zombie).unwrap_or(false);
            match rng.below(6) {
                // Let the scheduler run: slices, faults, timer wakeups.
                0 => sys.run_idle(1 + rng.below(60)),
                // Event-stop and resume through the control interface.
                1 if alive => {
                    if let Ok(mut h) = tools::ProcHandle::open_rw(&mut sys, ctl, pick) {
                        let _ = h.stop(&mut sys);
                        if rng.below(2) == 0 {
                            let _ = h.resume(&mut sys);
                        }
                        let _ = h.close(&mut sys);
                    }
                }
                // Asynchronous signal delivery.
                2 if alive => {
                    let sig = [
                        procsim::ksim::signal::SIGINT,
                        procsim::ksim::signal::SIGTERM,
                        procsim::ksim::signal::SIGKILL,
                    ][rng.below(3) as usize];
                    let _ = sys.host_kill(ctl, pick, sig);
                    sys.run_idle(1 + rng.below(20));
                }
                // Fork/exec: a fresh process enters the table.
                3 => {
                    if let Ok(pid) = sys.spawn_program(ctl, "/bin/spin", &["spin"]) {
                        victims.push(pid);
                    }
                    sys.run_idle(1 + rng.below(20));
                }
                // Direct virtual-memory write through the process file.
                4 if alive => poke_memory(&mut sys, ctl, pick, &mut rng),
                _ => sys.run_idle(1 + rng.below(10)),
            }
            check_dirs(&mut sys, ctl);
            // Spot-check a few pids, always including the one poked.
            check_pid(&mut sys, ctl, pick);
            for _ in 0..2 {
                let p = victims[rng.below(victims.len() as u64) as usize];
                check_pid(&mut sys, ctl, p);
            }
        }
    }
}

/// Reads the shared cache's counters through the flat interface.
fn cache_stats(sys: &mut System, ctl: Pid, fd: usize) -> PrCacheStats {
    let bytes = sys.host_ioctl(ctl, fd, PIOCCACHESTATS, &[]).expect("stats");
    PrCacheStats::from_bytes(&bytes).expect("decode")
}

/// The `ps` hot path: repeated `PIOCPSINFO` over an idle process must be
/// served from cache (>99% hits) and stay byte-identical throughout.
#[test]
fn repeated_psinfo_reads_hit_cache() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("ps", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(50);
    let fd = sys
        .host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly())
        .expect("open");
    let before = cache_stats(&mut sys, ctl, fd);
    let first = sys.host_ioctl(ctl, fd, PIOCPSINFO, &[]).expect("psinfo");
    for _ in 1..1000 {
        let again = sys.host_ioctl(ctl, fd, PIOCPSINFO, &[]).expect("psinfo");
        assert_eq!(again, first, "idle process produced a new image");
    }
    let after = cache_stats(&mut sys, ctl, fd);
    let hits = after.hits - before.hits;
    let not_hits = (after.misses - before.misses) + (after.invalidations - before.invalidations);
    assert!(
        hits >= 990 && not_hits <= 10,
        "cache hit rate below 99%: {hits} hits, {not_hits} misses/invalidations"
    );
    assert!(after.entries >= 1);
}

/// The per-LWP generation stamp at work: a mutation scoped to a
/// non-representative LWP (`PCSREG` through its own ctl file) must leave
/// the whole-process and sibling-LWP cache entries valid — only the
/// mutated LWP's own images re-render, and they re-render correctly.
#[test]
fn lwp_mutation_preserves_process_and_sibling_entries() {
    use procsim::procfs::hier::{PCSREG, PCSTOP};
    use procsim::procfs::ctl_record;

    let src = r#"
        _start:
            movi rv, 73          ; thr_create(side, sp-8192, 0)
            la   a0, side
            addi a1, sp, -8192
            movi a2, 0
            syscall
        mainloop:
            jmp mainloop
        side:
            jmp side
    "#;
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("lwp", Cred::superuser());
    sys.install_program("/bin/threads", src);
    let pid = sys.spawn_program(ctl, "/bin/threads", &["threads"]).expect("spawn");
    sys.run_until(10_000, |s| {
        s.kernel.proc(pid).map(|p| p.lwps.len() == 2).unwrap_or(false)
    });
    sys.run_idle(20);

    // Stop only LWP 2, then warm every cache entry we care about.
    let cfd = sys
        .host_open(ctl, &format!("/proc2/{}/lwp/2/ctl", pid.0), vfs::OFlags::wronly())
        .expect("open lwp ctl");
    sys.host_write(ctl, cfd, &ctl_record(PCSTOP, &[])).expect("stop lwp 2");
    let status_path = format!("/proc2/{}/status", pid.0);
    let l1_status_path = format!("/proc2/{}/lwp/1/status", pid.0);
    let l2_gregs_path = format!("/proc2/{}/lwp/2/gregs", pid.0);
    for path in [&status_path, &l1_status_path, &l2_gregs_path] {
        read_all(&mut sys, ctl, path).expect("warm");
    }
    let flat_fd = sys
        .host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly())
        .expect("open flat");

    // Rewrite LWP 2's registers through its own ctl file.
    let mut gregs = procsim::isa::GregSet::from_bytes(
        &read_all(&mut sys, ctl, &l2_gregs_path).expect("gregs"),
    )
    .expect("decode gregs");
    gregs.set_r(7, 0xDEAD_0001);
    let s1 = cache_stats(&mut sys, ctl, flat_fd);
    sys.host_write(ctl, cfd, &ctl_record(PCSREG, &gregs.to_bytes())).expect("set regs");

    // Process-level and sibling-LWP images still hit the cache.
    read_all(&mut sys, ctl, &status_path).expect("status");
    read_all(&mut sys, ctl, &l1_status_path).expect("lwp1 status");
    let s2 = cache_stats(&mut sys, ctl, flat_fd);
    assert_eq!(
        s2.invalidations, s1.invalidations,
        "an LWP-scoped mutation evicted process/sibling entries"
    );
    assert_eq!(s2.misses, s1.misses, "an LWP-scoped mutation forced a re-render");
    assert!(s2.hits > s1.hits, "the surviving entries were not actually used");

    // The mutated LWP's own image re-renders — with the new contents.
    let after = read_all(&mut sys, ctl, &l2_gregs_path).expect("gregs after");
    let decoded = procsim::isa::GregSet::from_bytes(&after).expect("decode");
    assert_eq!(decoded.r[7], 0xDEAD_0001, "the cached gregs image went stale");
    let s3 = cache_stats(&mut sys, ctl, flat_fd);
    assert_eq!(
        s3.invalidations,
        s2.invalidations + 1,
        "exactly the mutated LWP's entry is invalidated"
    );
}

/// The tentpole's sharing claim: an image rendered for the hierarchical
/// interface is served to the flat one without re-rendering.
#[test]
fn flat_and_hier_share_cached_images() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("share", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(50);
    // Warm the entry through /proc2.
    let via_hier = read_all(&mut sys, ctl, &format!("/proc2/{}/psinfo", pid.0)).expect("read");
    let fd = sys
        .host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly())
        .expect("open");
    let before = cache_stats(&mut sys, ctl, fd);
    let via_flat = sys.host_ioctl(ctl, fd, PIOCPSINFO, &[]).expect("psinfo");
    let after = cache_stats(&mut sys, ctl, fd);
    assert_eq!(via_flat, via_hier, "the two interfaces render differently");
    assert_eq!(after.hits, before.hits + 1, "flat read did not hit the shared entry");
    assert_eq!(after.misses, before.misses);
}
