//! Superblock edge cases: events that land *inside* a traced block must
//! surface exactly as they do on the stepped path.
//!
//! A superblock dispatch retires up to 32 instructions without
//! returning to the kernel loop. Signals, injected kernel faults and
//! quantum expiry all arrive while a block is mid-flight; the engine
//! must surface them only at block exits and without moving a single
//! observable — instruction counts, register state, memory, exit
//! status. These tests drive the same seeded schedule with the fast
//! path on and off and require byte-identical transcripts, then cover
//! the two structural hazards: a forked child must start with a cold
//! block cache, and a breakpoint planted into a page with a live
//! superblock must kill exactly that page's blocks.

use ksim::{Cred, KernelFaultRates, Pid, System};
use procfs::{PrRun, PrXStats};
use tools::proc_io::ProcHandle;
use tools::{DebugEvent, Debugger};

/// A compute loop with a signal handler: the hot loop runs inside
/// superblocks while SIGUSR1 deliveries divert control mid-trace.
const SIGNALLED_CRUNCHER: &str = r#"
_start:
    movi rv, 48         ; sigaction(SIGUSR1, handler, 0)
    movi a0, 16
    la   a1, handler
    movi a2, 0
    syscall
loop:
    addi a3, a3, 1
    addi a4, a4, 7
    jmp  loop
handler:
    la   a1, counter
    ld   a2, [a1]
    addi a2, a2, 1
    st   a2, [a1]
    ret
.data
.align 8
counter: .word 0
"#;

fn boot(fast: bool) -> (System, Pid) {
    let mut sys = tools::boot_demo_cfg(ksim::SimConfig::standard().fast_path(fast));
    let ctl = sys.spawn_hosted("sblock-test", Cred::superuser());
    (sys, ctl)
}

/// One transcript line per observation point: everything a controller
/// could see about the target.
fn observe(sys: &System, pid: Pid, counter: u64, step: usize) -> String {
    match sys.kernel.proc(pid) {
        Ok(p) => {
            let lwp = &p.lwps[0];
            let mut cbuf = [0u8; 8];
            let cval = p
                .aspace
                .kernel_read(&sys.kernel.objects, counter, &mut cbuf)
                .map(|()| u64::from_le_bytes(cbuf))
                .unwrap_or(u64::MAX);
            format!(
                "{step}: insns={} pc={:#x} a3={} a4={} counter={} zombie={} status={}",
                lwp.insns,
                lwp.gregs.pc,
                lwp.gregs.get(isa::REG_A0 + 3),
                lwp.gregs.get(isa::REG_A0 + 4),
                cval,
                p.zombie,
                p.exit_status,
            )
        }
        Err(e) => format!("{step}: gone {e:?}"),
    }
}

/// Drives the signal-delivery schedule and returns the transcript.
fn signal_transcript(fast: bool) -> String {
    let (mut sys, ctl) = boot(fast);
    sys.install_program("/bin/sigcrunch", SIGNALLED_CRUNCHER);
    let aout = ksim::aout::build_aout(SIGNALLED_CRUNCHER).expect("assembles");
    let counter = aout.sym("counter").expect("counter symbol");
    let pid = sys.spawn_program(ctl, "/bin/sigcrunch", &["sigcrunch"]).expect("spawn");
    let mut t = String::new();
    for step in 0..24 {
        // Odd slice counts so delivery points wander across block
        // boundaries instead of hitting the same trace offset each time.
        sys.run_idle(37 + (step % 5) as u64);
        if step % 3 == 0 {
            let _ = sys.kernel.post_signal(pid, 16);
        }
        t.push_str(&observe(&sys, pid, counter, step));
        t.push('\n');
    }
    t
}

/// Signal delivery mid-block: the handler's effects, the interrupted
/// loop's registers and the retirement counts must be identical with
/// superblocks on and off.
#[test]
fn signal_delivery_transcript_identical_fast_on_and_off() {
    let fast = signal_transcript(true);
    let slow = signal_transcript(false);
    assert_eq!(fast, slow, "superblocks changed the signal schedule");
    assert!(fast.contains("counter="), "transcript never observed the handler");
    // The handler actually ran (a transcript of zeros would also match).
    let last = fast.lines().last().expect("nonempty transcript");
    assert!(!last.contains("counter=0 "), "no signal ever delivered: {last}");
}

/// Drives a seeded kernel-fault schedule (ENOMEM at vm sites, EAGAIN at
/// fork) under fork + COW traffic and returns the transcript.
fn kfault_transcript(fast: bool, seed: u64) -> String {
    // The plan is installed at construction (`SimConfig::kernel_faults`,
    // the only installation site since the mid-run shims were retired),
    // so the seeded schedule covers the setup spawns too: they may draw
    // EAGAIN/ENOMEM themselves and retry. The draws consumed during
    // setup are identical across the fast/slow legs — the host-call
    // sequence does not depend on the execution engine.
    let mut sys = tools::boot_demo_cfg(
        ksim::SimConfig::standard()
            .fast_path(fast)
            .kernel_faults(seed, KernelFaultRates::uniform(60)),
    );
    let ctl = sys.spawn_hosted("sblock-test", Cred::superuser());
    let spawn = |sys: &mut ksim::System, path: &str, name: &str| {
        for _ in 0..200 {
            if let Ok(pid) = sys.spawn_program(ctl, path, &[name]) {
                return pid;
            }
        }
        panic!("{path} failed to spawn 200 straight times under the fault plan");
    };
    let forker = spawn(&mut sys, "/bin/forker", "forker");
    let watched = spawn(&mut sys, "/bin/watched", "watched");
    let mut t = String::new();
    for step in 0..16 {
        sys.run_idle(53);
        for (tag, pid) in [("forker", forker), ("watched", watched)] {
            match sys.kernel.proc(pid) {
                Ok(p) => {
                    let insns: u64 = p.lwps.iter().map(|l| l.insns).sum();
                    t.push_str(&format!(
                        "{step} {tag}: insns={insns} zombie={} status={}\n",
                        p.zombie, p.exit_status
                    ));
                }
                Err(e) => t.push_str(&format!("{step} {tag}: gone {e:?}\n")),
            }
        }
    }
    t
}

/// Kernel-fault injection mid-block: the same seeded fault schedule
/// must produce the same observable history whether the target executes
/// stepped or block-dispatched.
#[test]
fn kernel_fault_transcript_identical_fast_on_and_off() {
    for seed in [0x5B10_C001u64, 0x5B10_C017, 0x5B10_C02F] {
        let fast = kfault_transcript(true, seed);
        let slow = kfault_transcript(false, seed);
        assert_eq!(fast, slow, "seed {seed:#x}: superblocks changed the fault schedule");
    }
}

/// A forked child starts with a cold superblock cache: at first
/// sighting it has built and dispatched nothing of its own even though
/// its parent's engine is hot, and it then warms up independently.
#[test]
fn fork_child_starts_cold_and_warms_independently() {
    let (mut sys, ctl) = boot(true);
    let parent = sys.spawn_program(ctl, "/bin/forker", &["forker"]).expect("spawn");
    // Creep forward a tick at a time so the child is seen the moment it
    // exists — before it has ever been scheduled.
    let child = loop {
        let fresh = sys
            .kernel
            .procs
            .iter()
            .find(|(_, p)| p.ppid == parent)
            .map(|(raw, _)| Pid(*raw));
        if let Some(c) = fresh {
            break c;
        }
        sys.run_idle(1);
    };
    let parent_st = PrXStats::capture(&sys.kernel, parent).expect("parent xstats");
    let child_st = PrXStats::capture(&sys.kernel, child).expect("child xstats");
    assert!(parent_st.sblock_dispatched > 0, "parent never used blocks: {parent_st:?}");
    assert_eq!(
        child_st.sblock_built + child_st.sblock_dispatched,
        0,
        "fork child inherited a warm superblock cache: {child_st:?}"
    );
    // Run on: the child builds its own blocks and the pair still
    // completes correctly (forker exits 0 only if the child ran first).
    sys.run_idle(4000);
    let done = sys.kernel.proc(parent).map(|p| (p.zombie, p.exit_status)).expect("parent");
    assert_eq!(
        ksim::ptrace::decode_status(done.1),
        ksim::ptrace::WaitStatus::Exited(0),
        "forker failed under superblocks: {done:?}"
    );
}

/// Planting a breakpoint into a page with a live superblock kills that
/// block (the per-page epoch moved) and the breakpoint fires on the
/// very next pass — while blocks for *other* pages stay valid.
#[test]
fn breakpoint_planted_into_live_superblock_page_fires() {
    let (mut sys, ctl) = boot(true);
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
    let pid = dbg.pid();
    // Free-run so the tick loop is traced into superblocks (stepping
    // sets the trace bit, which bypasses block dispatch).
    dbg.h.run(&mut sys, PrRun { flags: 0, vaddr: 0 }).expect("resume");
    sys.run_idle(500);
    dbg.h.stop(&mut sys).expect("stop");
    let hot = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(hot.sblock_dispatched > 0, "loop never dispatched a block: {hot:?}");
    assert!(hot.sblock_insns > 0, "{hot:?}");

    let tick = dbg.sym("tick").expect("tick symbol");
    dbg.set_breakpoint(&mut sys, tick).expect("set breakpoint");
    let planted = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(
        planted.page_epoch_bumps > hot.page_epoch_bumps,
        "plant did not move the page epoch: {hot:?} -> {planted:?}"
    );
    match dbg.cont(&mut sys).expect("cont") {
        DebugEvent::Breakpoint { addr, .. } => assert_eq!(addr, tick),
        other => panic!("live superblock swallowed the planted breakpoint: {other:?}"),
    }
    let after = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(
        after.sblock_stale > hot.sblock_stale,
        "no block was invalidated by the plant: {hot:?} -> {after:?}"
    );
    // Clearing the breakpoint restores the loop: blocks rebuild and the
    // target runs cleanly through re-traced text (the pending FLTBPT is
    // cleared on resume).
    dbg.clear_breakpoint(&mut sys, tick).expect("clear");
    dbg.h
        .run(&mut sys, PrRun { flags: procfs::PRRUN_CFAULT, vaddr: 0 })
        .expect("resume");
    sys.run_idle(200);
    dbg.h.stop(&mut sys).expect("stop");
    let rebuilt = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(
        rebuilt.sblock_built > after.sblock_built,
        "loop never re-traced after the clear: {after:?} -> {rebuilt:?}"
    );
    dbg.kill(&mut sys).expect("kill");
}

/// Raw-handle variant of the plant: a `/proc` memory write into a hot
/// text page from a handle (no debugger bookkeeping) is still an
/// invalidation event for exactly that page.
#[test]
fn proc_write_into_hot_page_invalidates_blocks() {
    let (mut sys, ctl) = boot(true);
    let pid = sys.spawn_program(ctl, "/bin/ticker", &["ticker"]).expect("spawn");
    sys.run_idle(500);
    let hot = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(hot.sblock_dispatched > 0, "{hot:?}");
    let aout = ksim::aout::build_aout(tools::userland::TICKER).expect("assembles");
    let tick = aout.sym("tick").expect("tick symbol");
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    h.stop(&mut sys).expect("stop");
    // Overwrite tick's first instruction with itself: content-neutral,
    // but a write into an exec page must still move the page epoch.
    let mut word = [0u8; 8];
    h.read_mem(&mut sys, tick, &mut word).expect("read");
    h.write_mem(&mut sys, tick, &word).expect("write");
    h.resume(&mut sys).expect("resume");
    h.close(&mut sys).expect("close");
    sys.run_idle(200);
    let after = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(
        after.page_epoch_bumps > hot.page_epoch_bumps,
        "write did not bump the page epoch: {hot:?} -> {after:?}"
    );
    assert!(
        after.sblock_stale > hot.sblock_stale,
        "write did not invalidate the hot block: {hot:?} -> {after:?}"
    );
}
