//! Cross-crate integration scenarios: full workflows a user of the
//! library would run, spanning the kernel, both `/proc` generations and
//! the tools.

use procsim::ksim::ptrace::{decode_status, WaitStatus};
use procsim::ksim::signal::{SIGINT, SIGKILL, SIGUSR1};
use procsim::ksim::sysno::{SysSet, SYS_FORK, SYS_OPEN};
use procsim::ksim::{Cred, Pid, SigSet, System};
use procsim::procfs::{PrRun, PrWhy, PRRUN_CSIG};
use procsim::tools::{
    self, truss_command, DebugEvent, Debugger, ProcHandle, TrussOptions, UserTable,
};
use procsim::vfs::{Errno, OFlags};

fn boot() -> (System, Pid) {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
    (sys, ctl)
}

#[test]
fn debugger_follows_fork_and_controls_child() {
    // The paper's multi-process control recipe: inherit-on-fork + traced
    // fork exit; debugger takes control of the child before it runs any
    // user code.
    let (mut sys, ctl) = boot();
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/forker", &["forker"]).expect("launch");
    dbg.h.set_inherit_on_fork(&mut sys, true).expect("inherit");
    let mut exits = SysSet::empty();
    exits.add(SYS_FORK as usize);
    dbg.trace_syscalls(&mut sys, SysSet::empty(), exits).expect("trace");
    let ev = dbg.cont(&mut sys).expect("cont");
    let child = match ev {
        DebugEvent::SyscallExit(nr) => {
            assert_eq!(nr, SYS_FORK);
            Pid(dbg.regs(&mut sys).expect("regs").rv() as u32)
        }
        other => panic!("expected fork exit, got {other:?}"),
    };
    // The child is stopped at its own fork exit; take control.
    let mut ch = ProcHandle::open_rw(&mut sys, ctl, child).expect("open child");
    let st = ch.status(&mut sys).expect("status");
    assert_eq!(st.why, PrWhy::SyscallExit);
    assert_eq!(st.reg.rv(), 0);
    // Let the child run to completion under no further tracing.
    ch.set_exit_trace(&mut sys, SysSet::empty()).expect("untrace child");
    ch.resume(&mut sys).expect("run child");
    ch.close(&mut sys).expect("close");
    // Release the parent entirely.
    dbg.detach(&mut sys).expect("detach");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert!(matches!(decode_status(status), WaitStatus::Exited(0)));
}

#[test]
fn lift_breakpoints_around_fork_for_unmolested_children() {
    // The other fork recipe: children must run unmolested, so the
    // debugger lifts breakpoints at fork entry and re-plants at exit.
    let (mut sys, ctl) = boot();
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/forker", &["forker"]).expect("launch");
    // A breakpoint the children would otherwise inherit and die on.
    let looppc = dbg.sym("loop").expect("loop");
    dbg.set_breakpoint(&mut sys, looppc).expect("bp");
    let mut both = SysSet::empty();
    both.add(SYS_FORK as usize);
    dbg.trace_syscalls(&mut sys, both, both).expect("trace");
    dbg.h.set_inherit_on_fork(&mut sys, false).expect("no inherit");
    let mut forks_seen = 0;
    loop {
        match dbg.cont(&mut sys).expect("cont") {
            DebugEvent::SyscallEntry(nr) if nr == SYS_FORK => {
                dbg.lift_all(&mut sys).expect("lift");
            }
            DebugEvent::SyscallExit(nr) if nr == SYS_FORK => {
                forks_seen += 1;
                dbg.replant_all(&mut sys).expect("replant");
            }
            DebugEvent::Breakpoint { .. } => {}
            DebugEvent::Exited(status) => {
                assert!(matches!(decode_status(status), WaitStatus::Exited(0)));
                break;
            }
            _ => {}
        }
    }
    assert_eq!(forks_seen, 3, "three forks observed with breakpoints cycled");
}

#[test]
fn two_controllers_one_target() {
    // A read-only observer (ps-like) does not interfere with an
    // exclusive controlling process.
    let (mut sys, ctl) = boot();
    let observer = sys.spawn_hosted("observer", Cred::new(100, 10));
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    let mut excl = ProcHandle::open_excl(&mut sys, ctl, pid).expect("exclusive");
    excl.stop(&mut sys).expect("stop");
    // Observer reads psinfo read-only while the target is under
    // exclusive control.
    let mut ro = ProcHandle::open_ro(&mut sys, observer, pid).expect("read-only ok");
    let info = ro.psinfo(&mut sys).expect("psinfo");
    assert_eq!(info.pid, pid.0);
    assert_eq!(info.state, b'T');
    // But a second writer is locked out.
    assert_eq!(
        ProcHandle::open_rw(&mut sys, observer, pid).map(|h| h.fd),
        Err(Errno::EBUSY)
    );
    ro.close(&mut sys).expect("close");
    excl.resume(&mut sys).expect("run");
    excl.close(&mut sys).expect("close");
}

#[test]
fn truss_and_ps_views_agree() {
    let (mut sys, ctl) = boot();
    let root = sys.spawn_hosted("rootps", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/sigloop", &["sigloop"]).expect("spawn");
    sys.run_idle(2000);
    // sigloop installed its handler and paused.
    let snaps = tools::ps::ps_snapshots(&mut sys, root).expect("snapshots");
    let entry = snaps.iter().find(|p| p.pid == pid.0).expect("listed");
    assert_eq!(entry.state, b'S', "pausing process shows as sleeping");
    assert_eq!(entry.fname, "sigloop");
    // Kick it with SIGUSR1: the handler runs, the counter bumps.
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    let aout = {
        h.stop(&mut sys).expect("stop");
        let a = h.read_aout(&mut sys).expect("aout");
        h.resume(&mut sys).expect("run");
        a
    };
    let counter = aout.sym("counter").expect("counter");
    for _ in 0..3 {
        sys.host_kill(ctl, pid, SIGUSR1).expect("kill");
        sys.run_idle(500);
    }
    assert_eq!(h.peek(&mut sys, counter).expect("peek"), 3);
    h.close(&mut sys).expect("close");
}

#[test]
fn signal_forwarding_through_debugger() {
    // A debugger decides per-signal: forward SIGUSR1 (handler runs),
    // swallow SIGINT (target survives).
    let (mut sys, ctl) = boot();
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/sigloop", &["sigloop"]).expect("launch");
    let mut sigs = SigSet::empty();
    sigs.add(SIGUSR1);
    sigs.add(SIGINT);
    dbg.trace_signals(&mut sys, sigs).expect("trace");
    let counter = dbg.sym("counter").expect("counter");
    dbg.h.resume(&mut sys).expect("start");
    sys.run_idle(2000); // reach pause()
    // SIGINT: swallowed.
    sys.host_kill(ctl, dbg.pid(), SIGINT).expect("kill");
    match dbg.cont(&mut sys) {
        Ok(DebugEvent::Signal(sig)) => assert_eq!(sig, SIGINT),
        other => panic!("expected signal stop, got {other:?}"),
    }
    dbg.clear_signal(&mut sys).expect("swallow");
    // SIGUSR1: forwarded (resume without clearing).
    sys.host_kill(ctl, dbg.pid(), SIGUSR1).expect("kill");
    match dbg.cont(&mut sys) {
        Ok(DebugEvent::Signal(sig)) => assert_eq!(sig, SIGUSR1),
        other => panic!("expected signal stop, got {other:?}"),
    }
    dbg.h.resume(&mut sys).expect("forward");
    sys.run_idle(3000);
    assert_eq!(
        dbg.h.peek(&mut sys, counter).expect("peek"),
        1,
        "handler ran exactly once (SIGINT was swallowed)"
    );
    assert!(!sys.kernel.proc(dbg.pid()).expect("alive").zombie);
    dbg.kill(&mut sys).expect("kill");
}

#[test]
fn hier_and_flat_share_kernel_tracing_state() {
    let (mut sys, ctl) = boot();
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    // Set tracing through the hierarchy...
    let cfd = sys
        .host_open(ctl, &format!("/proc2/{}/ctl", pid.0), OFlags::wronly())
        .expect("ctl");
    let mut sigs = SigSet::empty();
    sigs.add(SIGUSR1);
    let msg = procsim::procfs::ctl_record(procsim::procfs::hier::PCSTRACE, &sigs.to_bytes());
    sys.host_write(ctl, cfd, &msg).expect("write");
    // ...and read it back through the flat ioctl.
    let mut h = ProcHandle::open_ro(&mut sys, ctl, pid).expect("open flat");
    assert!(h.sig_trace(&mut sys).expect("gtrace").has(SIGUSR1));
    h.close(&mut sys).expect("close");
}

#[test]
fn truss_open_paths_are_decoded() {
    let (mut sys, ctl) = boot();
    sys.install_program(
        "/bin/opener",
        r#"
        _start:
            movi rv, 5
            la   a0, path
            movi a1, 0
            syscall
            movi rv, 1
            movi a0, 0
            syscall
        .data
        path: .asciz "/bin/spin"
        "#,
    );
    let report = truss_command(
        &mut sys,
        ctl,
        "/bin/opener",
        &["opener"],
        &TrussOptions::default(),
    )
    .expect("truss");
    assert!(report.text().contains("open(\"/bin/spin\", 0x0)"), "{}", report.text());
    assert_eq!(report.counts[&SYS_OPEN], 1);
}

#[test]
fn listing_and_ps_after_heavy_churn() {
    // Create and destroy many processes; the /proc directory stays
    // consistent and ps never sees a torn entry.
    let (mut sys, ctl) = boot();
    let root = sys.spawn_hosted("rootps", Cred::superuser());
    for _ in 0..10 {
        let pid = sys.spawn_program(ctl, "/bin/greeter", &["greeter"]).expect("spawn");
        let _ = pid;
        let (_, status) = sys.host_wait(ctl).expect("wait");
        assert!(matches!(decode_status(status), WaitStatus::Exited(0)));
    }
    let live = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    let entries = sys.list_dir(root, "/proc").expect("readdir");
    // Reaped processes are gone from the directory.
    assert!(entries.iter().all(|e| {
        let pid: u32 = e.name.parse().expect("digit name");
        sys.kernel.proc(Pid(pid)).is_ok()
    }));
    let users = UserTable::default();
    let listing = tools::lsproc::ls_l_proc(&mut sys, root, &users).expect("ls");
    assert!(listing.contains(&format!("{:05}", live.0)));
    let ps = tools::ps::ps(
        &mut sys,
        root,
        &tools::ps::PsOptions { all: true, full: true },
        &users,
    )
    .expect("ps");
    assert!(ps.contains("spin"));
}

#[test]
fn run_on_last_close_insurance_pattern() {
    // "This can be used by a controlling process to ensure that its
    // controlled processes are released even if it itself is killed with
    // SIGKILL" — simulate the controller dying by just closing its fd.
    let (mut sys, ctl) = boot();
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    h.set_run_on_last_close(&mut sys, true).expect("rlc");
    let mut sigs = SigSet::empty();
    sigs.add(SIGINT);
    h.set_sig_trace(&mut sys, sigs).expect("trace");
    let st = h.stop(&mut sys).expect("stop");
    assert_ne!(st.flags & procsim::procfs::PR_STOPPED, 0);
    // The controller "dies": its descriptor goes away.
    h.close(&mut sys).expect("close");
    sys.run_idle(10);
    let proc = sys.kernel.proc(pid).expect("alive");
    assert!(!proc.is_stopped(), "released");
    assert!(!proc.trace.any_tracing(), "tracing cleared");
    // The released target is killable normally afterwards.
    sys.host_kill(ctl, pid, SIGKILL).expect("kill");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(decode_status(status), WaitStatus::Signalled(SIGKILL, false));
}

#[test]
fn manufactured_syscall_results_via_flat_interface() {
    // Encapsulation driven bare-handed through PIOC operations: change
    // the *arguments* at entry this time (redirect an open to another
    // file).
    let (mut sys, ctl) = boot();
    sys.memfs_mut().install("/etc/real", 0o644, 0, 0, b"REAL".to_vec());
    sys.memfs_mut().install("/etc/fake", 0o644, 0, 0, b"FAKE".to_vec());
    sys.install_program(
        "/bin/reader",
        r#"
        _start:
            movi rv, 5          ; open("/etc/real")
            la   a0, path
            movi a1, 0
            syscall
            mov  a0, rv
            movi rv, 3          ; read(fd, buf, 4)
            la   a1, buf
            movi a2, 4
            syscall
            la   a1, buf
            ldb  a0, [a1]       ; first byte
            movi rv, 1
            syscall
        .data
        path: .asciz "/etc/real"
        .align 8
        buf: .space 8
        "#,
    );
    let pid = sys.spawn_program(ctl, "/bin/reader", &["reader"]).expect("spawn");
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    let mut entry = SysSet::empty();
    entry.add(SYS_OPEN as usize);
    h.set_entry_trace(&mut sys, entry).expect("entry");
    let st = h.wstop(&mut sys).expect("entry stop");
    assert_eq!(st.why, PrWhy::SyscallEntry);
    // Rewrite the path the kernel has not yet fetched: overwrite the
    // string in the target's data.
    let path_addr = st.reg.arg(0);
    h.write_mem(&mut sys, path_addr, b"/etc/fake\0").expect("rewrite path");
    h.run(&mut sys, PrRun { flags: PRRUN_CSIG, vaddr: 0 }).expect("run");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(
        decode_status(status),
        WaitStatus::Exited(b'F'),
        "the target read the file the debugger chose"
    );
}

#[test]
fn remote_mounted_proc_controls_a_process() {
    // The RFS story end-to-end: the flat /proc mounted *behind the
    // marshalling shim*, a controller stopping and resuming a target
    // through it.
    let mut sys = procsim::ksim::System::boot();
    tools::install_userland(&mut sys);
    let remote = procsim::vfs::remote::RemoteFs::new(Box::new(
        procsim::procfs::ProcFs::new(),
    ))
    .with_ioctl_table(procsim::procfs::ioctl::wire_table());
    sys.mount("/proc", Box::new(remote));
    let ctl = sys.spawn_hosted("remote-dbg", Cred::new(100, 10));
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open across the wire");
    let st = h.stop(&mut sys).expect("PIOCSTOP across the wire");
    assert_ne!(st.flags & procsim::procfs::PR_STOPPED, 0);
    // Memory reads work remotely too (plain read(2) marshals generically).
    let mut buf = [0u8; 8];
    h.read_mem(&mut sys, st.reg.pc, &mut buf).expect("remote read");
    assert!(isa::Insn::decode(&buf).is_some());
    h.resume(&mut sys).expect("PIOCRUN across the wire");
    sys.run_idle(10);
    assert!(!sys.kernel.proc(pid).expect("alive").is_stopped());
    h.close(&mut sys).expect("close");
}

#[test]
fn exec_exit_stop_lets_debugger_observe_new_image() {
    // "stop on exit from exec" — used by debuggers to re-read symbol
    // tables after the image changes.
    let (mut sys, ctl) = boot();
    sys.install_program(
        "/bin/execer",
        r#"
        _start:
            movi rv, 11
            la   a0, path
            movi a1, 0
            syscall
        hang:
            jmp hang
        .data
        path: .asciz "/bin/ticker"
        "#,
    );
    let pid = sys.spawn_program(ctl, "/bin/execer", &["execer"]).expect("spawn");
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    let mut exits = SysSet::empty();
    exits.add(procsim::ksim::sysno::SYS_EXEC as usize);
    h.set_exit_trace(&mut sys, exits).expect("trace");
    let st = h.wstop(&mut sys).expect("exec exit stop");
    assert_eq!(st.why, PrWhy::SyscallExit);
    assert_eq!(st.what, procsim::ksim::sysno::SYS_EXEC);
    // The new image's symbols are reachable through PIOCOPENM.
    let aout = h.read_aout(&mut sys).expect("aout");
    assert!(aout.sym("tick").is_some(), "symbols of the NEW image");
    assert_eq!(sys.kernel.proc(pid).expect("p").fname, "ticker");
    h.resume(&mut sys).expect("run");
    h.close(&mut sys).expect("close");
}

#[test]
fn vfork_under_trace_releases_parent_on_child_exec() {
    // vfork blocks the parent until the child execs; a debugger watching
    // the parent sees it sleep through the child's life.
    let (mut sys, ctl) = boot();
    sys.install_program(
        "/bin/vforker",
        r#"
        _start:
            movi rv, 62         ; vfork
            syscall
            beq  rv, zero, child
            movi rv, 7          ; wait(0)
            movi a0, 0
            syscall
            movi rv, 1
            movi a0, 0
            syscall
        child:
            movi rv, 11         ; exec("/bin/greeter")
            la   a0, path
            movi a1, 0
            syscall
        .data
        path: .asciz "/bin/greeter"
        "#,
    );
    sys.spawn_program(ctl, "/bin/vforker", &["vforker"]).expect("spawn");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(decode_status(status), WaitStatus::Exited(0));
    // The exec'd child wrote the greeting.
    let meta = sys.stat_path(ctl, "/tmp/greeting").expect("file exists");
    assert!(meta.size > 0);
}
