//! The PR 9 migration gate: `PIOCMIGRATE` is exactly-once over the
//! adversarial wire.
//!
//! * a 32-seed oracle — each seed migrates a live guest from a source
//!   system into a destination reached through a faulted + adversarial
//!   remote `/proc` mount, with kernel faults live on both sides. Every
//!   migration must *complete exactly once*: the destination guest is
//!   transcript-identical (register file) to a local `PIOCRESTORE` of
//!   the same image, and the source copy is retired;
//! * an abort leg — a dead wire must surface the typed
//!   [`MigrateError::Transport`] with the source still running and the
//!   destination holding nothing;
//! * an end-to-end digest leg — a transfer whose declared digest does
//!   not match the received bytes is refused (`EIO`, computed digest in
//!   the reply) *before* anything is materialised;
//! * a durability leg — a recording written by one system loads and
//!   replays byte-identically in another, with nothing but the recfile
//!   bytes crossing between them.

use ksim::{Cred, KernelFaultRates, MigrateError, MountPlan, Pid, SimConfig, SysResult, System};
use tools::proc_io::ProcHandle;
use vfs::remote::{AdversaryRates, FaultRates, RetryPolicy, WireConfig};

const DST_MOUNT: &str = "/procr";

/// Retries an operation under the fault plans: sub-certain rates mean a
/// bounded retry always lands.
fn eventually<T>(what: &str, mut f: impl FnMut() -> SysResult<T>) -> T {
    let mut last = None;
    for _ in 0..400 {
        match f() {
            Ok(v) => return v,
            Err(e) => last = Some(e),
        }
    }
    panic!("{what} failed 400 straight times under the fault plan: {last:?}");
}

/// Transient-only kernel faults: ENOMEM/EAGAIN/EINTR/wakeup injection
/// live on both sides, but no death injection — a fault plan that kills
/// the guest at will makes "exactly-once" unfalsifiable (a dead guest
/// is indistinguishable from a never-materialised one). Placeholder
/// death resilience is exercised separately below.
fn transient_kfaults(permille: u16) -> KernelFaultRates {
    KernelFaultRates {
        enomem: permille,
        eagain: permille,
        eintr: permille,
        wakeup: permille,
        death: 0,
        mid_op: 0,
        controller_death: 0,
    }
}

/// A source system with kernel faults live and one running guest.
fn src_system(seed: u64) -> (System, Pid, Pid) {
    let mut sys =
        tools::boot_demo_cfg(SimConfig::standard().kernel_faults(seed, transient_kfaults(10)));
    let ctl = sys.spawn_hosted("mig-src", Cred::superuser());
    let target =
        eventually("spawn ticker", || sys.spawn_program(ctl, "/bin/ticker", &["ticker"]));
    sys.run_idle(120);
    (sys, ctl, target)
}

/// A destination system whose `/proc` is also reachable through a
/// faulted, adversarial remote mount — the wire the image crosses.
fn dst_system(seed: u64) -> (System, Pid) {
    let wire = WireConfig::faulty(seed ^ 0x51DE, FaultRates::uniform(25))
        .adversarial(AdversaryRates::uniform(40));
    let mut sys = tools::boot_demo_cfg(
        SimConfig::standard()
            .mount(DST_MOUNT, MountPlan::RemoteProc(wire))
            .kernel_faults(seed ^ 0x0D57, transient_kfaults(10)),
    );
    let ctl = sys.spawn_hosted("mig-dst", Cred::superuser());
    (sys, ctl)
}

/// Restores `image` into a placeholder on a clean local system and
/// returns the restored register file — the reference transcript a
/// migrated guest must match.
fn local_restore_gregs(image: &[u8]) -> isa::GregSet {
    let mut sys = tools::boot_demo_cfg(SimConfig::standard());
    let ctl = sys.spawn_hosted("mig-local", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/spin", &["migrated"]).expect("spawn placeholder");
    sys.run_idle(30);
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open placeholder");
    h.stop(&mut sys).expect("stop placeholder");
    h.restore(&mut sys, image).expect("local restore");
    let regs = h.gregs(&mut sys).expect("gregs after restore");
    let _ = h.close(&mut sys);
    regs
}

/// The 32-seed exactly-once oracle.
#[test]
fn migration_is_exactly_once_across_32_seeds() {
    for i in 0..32u64 {
        let seed = 0x3160_0001 + i * 0x9E37;
        let (mut src, sctl, target) = src_system(seed);

        // The reference image: stop the guest and checkpoint it through
        // the test's own handle. The driver will stop (idempotent) and
        // checkpoint the *same* state, so the destination must land
        // exactly where a local restore of this image lands.
        let mut h = ProcHandle::open_rw(&mut src, sctl, target).expect("open source target");
        eventually("stop", || h.stop(&mut src));
        let reference = eventually("reference checkpoint", || h.checkpoint(&mut src));
        let _ = h.close(&mut src);

        let (mut dst, dctl) = dst_system(seed);
        let report = match tools::migrate::migrate(
            &mut src, sctl, "/proc", target, &mut dst, dctl, DST_MOUNT,
        ) {
            Ok(r) => r,
            Err(e) => panic!("seed {seed:#x}: migrate failed: {e}"),
        };
        assert_eq!(report.bytes, reference.len(), "seed {seed:#x}: image size drifted");

        // Destination transcript-identical to the local restore.
        let want = local_restore_gregs(&reference);
        let mut dh =
            ProcHandle::open_rw(&mut dst, dctl, report.dst_pid).expect("open migrated guest");
        let got = eventually("migrated gregs", || dh.gregs(&mut dst));
        assert_eq!(got, want, "seed {seed:#x}: migrated registers diverge from local restore");

        // Exactly once, destination half: the guest is real and runs on.
        eventually("resume migrated guest", || dh.resume(&mut dst));
        dst.run_idle(200);
        eventually("re-stop migrated guest", || dh.stop(&mut dst));
        let moved = eventually("gregs after run", || dh.gregs(&mut dst));
        assert_ne!(moved, got, "seed {seed:#x}: migrated guest never executed");
        let _ = dh.close(&mut dst);
        assert!(dst.kernel.mig_stats.commits >= 1, "seed {seed:#x}: no committed transfer");
        assert!(
            dst.kernel.mig_stats.bytes >= reference.len() as u64,
            "seed {seed:#x}: fewer bytes accepted than the image holds"
        );

        // Exactly once, source half: the source copy is retired.
        src.run_idle(120);
        // (A source proc that is already gone entirely is equally retired.)
        if let Ok(p) = src.kernel.proc(target) {
            assert!(p.zombie, "seed {seed:#x}: source copy still live after commit");
        }
    }
}

/// Destination death injection kills the only non-hosted process on the
/// destination — the placeholder — at seeded moments mid-transfer. The
/// driver must burn through fresh placeholders, resuming the *same*
/// kernel-side transfer, and every seed must still end exactly-once:
/// committed once, or typed-aborted with nothing materialised and the
/// source still alive. (Deterministic per seed: same seed, same story.)
#[test]
fn placeholder_death_is_survived_or_aborted_cleanly() {
    let mut completed = 0;
    for i in 0..8u64 {
        let seed = 0xDEAD_0001 + i * 0x9E37;
        let (mut src, sctl, target) = src_system(seed);
        let wire = WireConfig::faulty(seed ^ 0x51DE, FaultRates::uniform(15));
        let deadly = KernelFaultRates {
            enomem: 0,
            eagain: 0,
            eintr: 0,
            wakeup: 10,
            death: 30,
            mid_op: 0,
            controller_death: 0,
        };
        let mut dst = tools::boot_demo_cfg(
            SimConfig::standard()
                .mount(DST_MOUNT, MountPlan::RemoteProc(wire))
                .kernel_faults(seed ^ 0x0D57, deadly),
        );
        let dctl = dst.spawn_hosted("mig-dst", Cred::superuser());
        match tools::migrate::migrate(&mut src, sctl, "/proc", target, &mut dst, dctl, DST_MOUNT)
        {
            Ok(r) => {
                completed += 1;
                assert!(dst.kernel.mig_stats.commits >= 1, "seed {seed:#x}: {r:?}");
                assert!(dst.kernel.proc(r.dst_pid).is_ok(), "seed {seed:#x}: committed to no one");
            }
            Err(e) => {
                src.run_idle(60);
                let p = src.kernel.proc(target)
                    .unwrap_or_else(|_| panic!("seed {seed:#x}: abort ({e}) retired the source"));
                assert!(!p.zombie, "seed {seed:#x}: abort ({e}) retired the source");
                assert_eq!(dst.kernel.mig_stats.commits, 0, "seed {seed:#x}: half-committed");
            }
        }
    }
    assert!(completed >= 6, "death injection defeated the driver too often: {completed}/8");
}

/// A wire that drops every frame (and a stingy retry policy, so the
/// driver's patience runs out quickly) must produce the typed transport
/// abort: source untouched and running, destination empty.
#[test]
fn dead_wire_aborts_typed_with_source_running_and_destination_empty() {
    let seed = 0xAB07_0001u64;
    let (mut src, sctl, target) = src_system(seed);
    let dead = FaultRates { drop: 1000, truncate: 0, bitflip: 0, duplicate: 0, delay: 0 };
    let wire = WireConfig::faulty(seed, dead)
        .retry(RetryPolicy { max_attempts: 2, backoff_cap: 1, budget: 4 });
    let mut dst = tools::boot_demo_cfg(
        SimConfig::standard().mount(DST_MOUNT, MountPlan::RemoteProc(wire)),
    );
    let dctl = dst.spawn_hosted("mig-dst", Cred::superuser());

    let err = tools::migrate::migrate(&mut src, sctl, "/proc", target, &mut dst, dctl, DST_MOUNT)
        .expect_err("a dead wire cannot complete a migration");
    assert!(matches!(err, MigrateError::Transport(_)), "wrong abort class: {err:?}");

    // Source untouched: the target still exists and still executes.
    src.run_idle(120);
    let p = src.kernel.proc(target).expect("source target must survive an aborted migration");
    assert!(!p.zombie, "aborted migration retired the source copy");

    // Destination empty: no transfer state, nothing committed.
    assert!(dst.kernel.migrations.is_empty(), "aborted transfer left state behind");
    assert_eq!(dst.kernel.mig_stats.commits, 0, "aborted migration still committed");
}

/// The end-to-end digest check refuses to materialise a transfer whose
/// bytes do not hash to the declared digest — and reports the digest it
/// computed, so the driver can say precisely what went wrong.
#[test]
fn digest_mismatch_is_refused_before_materialising() {
    use ksim::migrate::{arg_begin, arg_chunk, arg_commit, MIG_ST_ERR, MIG_ST_OK};

    let (mut dst, dctl) = dst_system(0xD16E_57A1);
    let pid = eventually("spawn placeholder", || {
        dst.spawn_program(dctl, "/bin/spin", &["migrated"])
    });
    dst.run_idle(30);
    let mut h = eventually("open placeholder", || {
        ProcHandle::open_at(&mut dst, dctl, pid, DST_MOUNT, vfs::OFlags::rdwr())
    });
    eventually("stop placeholder", || h.stop(&mut dst));

    // Junk payload, deliberately mis-declared digest.
    let image = vec![0xA5u8; 600];
    let lie = ksim::record::fnv(&image) ^ 1;
    let xfer = 0x000F_F5E7_u64;
    let begin = eventually("begin", || h.migrate_op(&mut dst, &arg_begin(xfer, 600, lie)));
    assert_eq!(begin.status, MIG_ST_OK, "{begin:?}");
    let mut off = begin.next_off;
    while off < 600 {
        let end = (off as usize + 512).min(600);
        let r = eventually("chunk", || {
            h.migrate_op(&mut dst, &arg_chunk(xfer, off, &image[off as usize..end]))
        });
        assert_eq!(r.status, MIG_ST_OK, "{r:?}");
        off = r.next_off;
    }
    let commit = eventually("commit", || h.migrate_op(&mut dst, &arg_commit(xfer, lie)));
    assert_eq!(commit.status, MIG_ST_ERR, "a lying digest was accepted: {commit:?}");
    assert_eq!(commit.errno, vfs::Errno::EIO as i32, "{commit:?}");
    assert_eq!(commit.detail, ksim::record::fnv(&image), "computed digest not reported");
    let _ = h.close(&mut dst);

    // Nothing materialised: the transfer is gone, the mismatch counted,
    // and the placeholder is still the placeholder.
    assert!(dst.kernel.migrations.is_empty(), "refused transfer left state behind");
    assert_eq!(dst.kernel.mig_stats.digest_mismatches, 1);
    assert_eq!(dst.kernel.mig_stats.commits, 0);
    assert!(dst.kernel.proc(pid).is_ok(), "refusal destroyed the placeholder");
}

/// Durable recordings cross a process boundary: one system records a
/// faulted, adversarial run and serialises it; a second system is
/// rebuilt from nothing but those bytes and must replay the log
/// record-for-record — and re-serialise to the *identical* bytes.
#[test]
fn recordings_round_trip_across_the_process_boundary() {
    for i in 0..8u64 {
        let seed = 0x00DE_7EC7 + i * 0x9E37;
        let wire = WireConfig::faulty(seed ^ 0x51DE, FaultRates::uniform(25))
            .adversarial(AdversaryRates::uniform(40));
        let mut sys = tools::boot_demo_cfg(
            SimConfig::standard()
                .mount(DST_MOUNT, MountPlan::RemoteProc(wire))
                .kernel_faults(seed, KernelFaultRates::uniform(20))
                .record(true)
                .snapshot_every(8),
        );
        let ctl = sys.spawn_hosted("recfile", Cred::superuser());
        let ticker = sys.spawn_program(ctl, "/bin/ticker", &["ticker"]);
        sys.run_idle(90);
        if let Ok(pid) = ticker {
            if let Ok(mut h) =
                ProcHandle::open_at(&mut sys, ctl, pid, DST_MOUNT, vfs::OFlags::rdwr())
            {
                let _ = h.status(&mut sys);
                let _ = h.close(&mut sys);
            }
        }
        sys.run_idle(60);

        let bytes = sys.save_recfile().expect("recording is on");
        // "The other process": only `bytes` crosses.
        let loaded = procfs::replay_file(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: load+replay failed: {e}"));
        assert_eq!(
            loaded.recording().expect("replayed recorder").records,
            sys.recording().expect("source recorder").records,
            "seed {seed:#x}: replayed log diverges from the original"
        );
        let mut loaded = loaded;
        let again = loaded.save_recfile().expect("recording survives the load");
        assert_eq!(again, bytes, "seed {seed:#x}: re-serialisation is not byte-identical");

        // The counters tell the story on both ends.
        assert_eq!(sys.kernel.recorder.as_ref().expect("rec").stats.file_saves, 1);
        assert_eq!(loaded.kernel.recorder.as_ref().expect("rec").stats.file_loads, 1);
    }
}
