//! Smoke-sized run of the e5 multi-client throughput sweep, gating the
//! wire v2 headline inside `cargo test` (alias: `cargo bench-smoke`):
//! pipelined multi-client sessions must finish in strictly fewer
//! virtual ticks than one-op-at-a-time calls, clean and lossy alike.

#[test]
fn pipelining_beats_serial_at_smoke_scale() {
    let points = bench_support::multi_client_wire_sweep(&[0, 80], 3, 8, 0x53_40_CE);
    for p in &points {
        assert_eq!(p.ops, 24, "rate {}: wrong workload size", p.permille);
        assert!(
            p.pipelined_ticks < p.serial_ticks,
            "rate {}: pipelined ({} ticks) must beat serial ({} ticks)",
            p.permille,
            p.pipelined_ticks,
            p.serial_ticks
        );
    }
    // On the clean wire every op lands on both legs.
    assert_eq!(points[0].serial_ok, points[0].ops);
    assert_eq!(points[0].pipelined_ok, points[0].ops);
}
