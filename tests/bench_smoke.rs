//! Smoke-sized runs of the headline performance claims, gated inside
//! `cargo test` (alias: `cargo bench-smoke`):
//!
//! * E5c — pipelined multi-client wire sessions must finish in strictly
//!   fewer virtual ticks than one-op-at-a-time calls, clean and lossy
//!   alike;
//! * E5d — the readiness-loop wire server must scale 1 → 1000 sessions,
//!   keep every queue under its cap under the adversarial-client mix,
//!   replay deterministically, and drop `BENCH_E5D.json` at the repo
//!   root;
//! * E13 — the execution fast path (software TLB + decoded-instruction
//!   cache + superblock engine) must retire hot-loop instructions at
//!   ≥ 2× the slow-path rate, per-page text epochs must beat coarse
//!   whole-mapping invalidation under dense breakpoint traffic, and the
//!   run drops `BENCH_E13.json` at the repo root so the perf trajectory
//!   is machine-readable across PRs;
//! * E14 — record/replay must be near-free while recording and
//!   snapshot-cheap while travelling (`BENCH_E14.json`);
//! * E15 — live migration over the adversarial wire must cost only
//!   bounded re-sends on top of the loss-free chunk floor, and the
//!   durable recfile round trip must parse strictly cheaper than the
//!   full cross-process rebuild (`BENCH_E15.json`).

use bench_support::FastPathPoint;
use std::fmt::Write as _;

#[test]
fn pipelining_beats_serial_at_smoke_scale() {
    let points = bench_support::multi_client_wire_sweep(&[0, 80], 3, 8, 0x53_40_CE);
    for p in &points {
        assert_eq!(p.ops, 24, "rate {}: wrong workload size", p.permille);
        assert!(
            p.pipelined_ticks < p.serial_ticks,
            "rate {}: pipelined ({} ticks) must beat serial ({} ticks)",
            p.permille,
            p.pipelined_ticks,
            p.serial_ticks
        );
    }
    // On the clean wire every op lands on both legs.
    assert_eq!(points[0].serial_ok, points[0].ops);
    assert_eq!(points[0].pipelined_ok, points[0].ops);
}

/// Renders one E5d point as a JSON object.
fn client_count_json(p: &bench_support::ClientCountPoint) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"clients\": {}, \"mix\": \"{}\", \"ops\": {}, \"ok\": {}, \"ticks\": {}, \
         \"p99_ticks\": {}, \"ok_per_kilotick\": {:.3}, \"in_queue_hwm\": {}, \
         \"out_queue_hwm\": {}, \"sessions_evicted\": {}, \"frames_shed\": {}}}",
        p.clients,
        if p.adversarial { "adversarial" } else { "clean" },
        p.ops,
        p.ok,
        p.ticks,
        p.p99_ticks,
        p.ok_per_kilotick,
        p.in_queue_hwm,
        p.out_queue_hwm,
        p.sessions_evicted,
        p.frames_shed,
    )
    .expect("write to string");
    s
}

/// E5d smoke gate: the readiness-loop wire server must scale from one
/// to a thousand concurrent sessions. On the clean mix every op lands;
/// under the adversarial-client mix the server keeps making progress,
/// never lets a queue past its cap, and replays byte-identically from
/// the same seed. Emits `BENCH_E5D.json` as a side effect.
#[test]
fn wire_server_scales_to_a_thousand_sessions() {
    const COUNTS: [usize; 5] = [1, 8, 64, 256, 1000];
    const OPS_PER_CLIENT: usize = 4;
    const SEED: u64 = 0xE5D0;
    const QUEUE_CAP: u64 = 4096;

    let clean = bench_support::client_count_sweep(&COUNTS, OPS_PER_CLIENT, false, SEED);
    let adv = bench_support::client_count_sweep(&COUNTS, OPS_PER_CLIENT, true, SEED);

    for p in &clean {
        // Up to 256 sessions the server drains the whole offered load.
        // At 1000 the fixed per-tick service budget is oversubscribed by
        // design: the tail resolves to typed timeouts instead of
        // hanging, so the gate asks for progress, not completeness.
        if p.clients <= 256 {
            assert_eq!(p.ok, p.ops, "clean wire dropped ops at {} clients: {p:?}", p.clients);
        } else {
            assert!(p.ok > p.ops / 4, "clean wire collapsed at {} clients: {p:?}", p.clients);
        }
        assert_eq!(p.sessions_evicted, 0, "clean wire evicted a session: {p:?}");
    }
    for p in &adv {
        assert!(p.ok > 0, "adversarial mix starved all clients at {} clients: {p:?}", p.clients);
        assert!(
            p.in_queue_hwm <= QUEUE_CAP && p.out_queue_hwm <= QUEUE_CAP,
            "queue cap exceeded at {} clients: {p:?}",
            p.clients
        );
    }
    // Throughput must grow with concurrency on the clean wire: 1000
    // pipelined sessions land far more ops per tick than one.
    assert!(
        clean.last().expect("points").ok_per_kilotick > clean[0].ok_per_kilotick,
        "no concurrency win: {clean:?}"
    );
    // Determinism at full scale: the same seed replays identically.
    let replay = bench_support::client_count_point(1000, OPS_PER_CLIENT, true, SEED);
    assert_eq!(replay, adv[4], "adversarial 1000-client run did not replay");

    let mut rows: Vec<String> = Vec::new();
    for p in clean.iter().chain(adv.iter()) {
        rows.push(client_count_json(p));
    }
    let json = format!(
        "{{\n  \"experiment\": \"E5d\",\n  \"title\": \"wire server client-count sweep, clean vs. adversarial\",\n  \"ops_per_client\": {OPS_PER_CLIENT},\n  \"seed\": {SEED},\n  \"queue_cap\": {QUEUE_CAP},\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_E5D.json");
    std::fs::write(out, &json).expect("write BENCH_E5D.json");
}

/// Renders one E13 point as a JSON object (hand-rolled: the workspace
/// takes no external dependencies, and a dozen scalar fields do not
/// justify one).
fn point_json(program: &str, p: &FastPathPoint) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"program\": \"{}\", \"fast\": {}, \"insns\": {}, \"wall_ns\": {}, \
         \"insns_per_sec\": {:.1}, \"tlb_hits\": {}, \"tlb_misses\": {}, \
         \"tlb_hit_rate\": {:.6}, \"icache_hits\": {}, \"icache_misses\": {}, \
         \"icache_hit_rate\": {:.6}, \"sblock_built\": {}, \"sblock_dispatched\": {}, \
         \"sblock_insns\": {}, \"sblock_stale\": {}, \"sblock_coverage\": {:.6}}}",
        program,
        p.fast,
        p.insns,
        p.wall_ns,
        p.insns_per_sec,
        p.tlb_hits,
        p.tlb_misses,
        p.tlb_hit_rate(),
        p.icache_hits,
        p.icache_misses,
        p.icache_hit_rate(),
        p.sblock_built,
        p.sblock_dispatched,
        p.sblock_insns,
        p.sblock_stale,
        p.sblock_coverage(),
    )
    .expect("write to string");
    s
}

/// Renders one dense-breakpoint point as a JSON object.
fn dense_json(p: &bench_support::DenseBpPoint) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"coarse\": {}, \"hits_per_sec\": {:.1}, \"sblock_built\": {}, \
         \"sblock_stale\": {}, \"page_epoch_bumps\": {}}}",
        p.coarse, p.hits_per_sec, p.sblock_built, p.sblock_stale, p.page_epoch_bumps,
    )
    .expect("write to string");
    s
}

/// E13 smoke point: the per-LWP fast path must be a real accelerator,
/// not a wash. Both legs execute the identical instruction stream (the
/// 32-seed differential oracles in `kernel_fault`/`remote_fault` prove
/// behavioral equivalence); here only the wall-clock rate and the cache
/// hit rates differ. Emits `BENCH_E13.json` as a side effect.
#[test]
fn fast_path_doubles_hot_loop_throughput() {
    const TICKS: u64 = 4000;
    const REPS: usize = 3;
    // spin: store-free jump loop, pure icache. watched: two stores per
    // iteration, exercises the dTLB too.
    let (spin_off, spin_on) = bench_support::fast_path_pair("/bin/spin", TICKS, REPS);
    let (watched_off, watched_on) = bench_support::fast_path_pair("/bin/watched", TICKS, REPS);

    // Same tick budget, same deterministic machine: both legs must have
    // retired the same number of instructions.
    assert_eq!(spin_off.insns, spin_on.insns, "fast path changed the spin schedule");
    assert_eq!(watched_off.insns, watched_on.insns, "fast path changed the watched schedule");
    assert!(spin_on.insns > 100_000, "spin barely ran: {spin_on:?}");

    // The disabled leg reports dark caches; the enabled leg is hot.
    // Almost all hot-loop instructions must retire inside superblock
    // dispatches (block execution bypasses per-instruction fetch, so
    // superblock coverage is the hot-path gate the icache hit rate used
    // to be).
    assert_eq!((spin_off.tlb_hits, spin_off.sblock_insns), (0, 0), "{spin_off:?}");
    assert!(spin_on.sblock_coverage() > 0.99, "spin superblocks cold: {spin_on:?}");
    assert!(watched_on.sblock_coverage() > 0.99, "watched superblocks cold: {watched_on:?}");
    assert!(watched_on.tlb_hit_rate() > 0.99, "watched dTLB cold: {watched_on:?}");

    // The E1 metric, before/after: breakpoints/sec on the compute-loop
    // workload (one hit per ~770 retired instructions).
    let (bp_slow, bp_fast) = bench_support::breakpoint_rate_pair(40, REPS);

    // The dense-breakpoint row: per-page text epochs must beat coarse
    // whole-mapping invalidation when breakpoint traffic keeps writing
    // into one page of a multi-page text. The coarse leg re-traces the
    // compute body's superblocks after every fielding; the per-page leg
    // keeps them warm, which must show up in the rebuild counters.
    let (dense_coarse, dense_paged) = bench_support::dense_breakpoint_pair(24, REPS);
    assert!(
        dense_paged.sblock_built * 4 < dense_coarse.sblock_built,
        "per-page epochs did not curb superblock rebuilds:\ncoarse {dense_coarse:?}\npaged  {dense_paged:?}"
    );
    assert!(
        dense_paged.hits_per_sec > dense_coarse.hits_per_sec,
        "per-page epochs not faster under dense breakpoints:\ncoarse {dense_coarse:?}\npaged  {dense_paged:?}"
    );

    let spin_speedup = spin_on.insns_per_sec / spin_off.insns_per_sec;
    let watched_speedup = watched_on.insns_per_sec / watched_off.insns_per_sec;
    let json = format!(
        "{{\n  \"experiment\": \"E13\",\n  \"title\": \"execution fast path: software TLB + decoded-instruction cache + superblocks\",\n  \"ticks\": {TICKS},\n  \"reps\": {REPS},\n  \"points\": [\n{},\n{},\n{},\n{}\n  ],\n  \"spin_speedup\": {spin_speedup:.3},\n  \"watched_speedup\": {watched_speedup:.3},\n  \"e1_breakpoints_per_sec_slow_path\": {bp_slow:.1},\n  \"e1_breakpoints_per_sec_fast_path\": {bp_fast:.1},\n  \"e1_speedup\": {:.3},\n  \"dense_breakpoints\": [\n{},\n{}\n  ],\n  \"dense_paged_vs_coarse\": {:.3}\n}}\n",
        point_json("/bin/spin", &spin_off),
        point_json("/bin/spin", &spin_on),
        point_json("/bin/watched", &watched_off),
        point_json("/bin/watched", &watched_on),
        bp_fast / bp_slow,
        dense_json(&dense_coarse),
        dense_json(&dense_paged),
        dense_paged.hits_per_sec / dense_coarse.hits_per_sec,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_E13.json");
    std::fs::write(out, &json).expect("write BENCH_E13.json");

    // The acceptance bar: ≥ 2× insns/sec on the hot loop. The margin is
    // wide — the fast path skips both the mapping binary search and the
    // decoder — so this holds under debug and release profiles alike.
    assert!(
        spin_speedup >= 2.0,
        "fast path only {spin_speedup:.2}x on spin:\noff {spin_off:?}\non  {spin_on:?}"
    );
    assert!(
        watched_speedup >= 2.0,
        "fast path only {watched_speedup:.2}x on watched:\noff {watched_off:?}\non  {watched_on:?}"
    );
    // Breakpoints/sec must improve measurably (release runs show ~3×;
    // 1.5× leaves room for a loaded machine and the debug profile).
    assert!(
        bp_fast >= bp_slow * 1.5,
        "fast path moved breakpoints/sec only {:.0} -> {:.0}",
        bp_slow,
        bp_fast
    );
}

/// Renders one E14 goto point as a JSON object.
fn goto_json(p: &bench_support::GotoPoint) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"snapshot_every\": {}, \"records\": {}, \"snapshots\": {}, \
         \"goto_ns\": {}, \"goto_replayed\": {}, \"rebuild_ns\": {}, \
         \"rebuild_replayed\": {}, \"speedup\": {:.3}}}",
        p.snapshot_every,
        p.len,
        p.snapshots,
        p.goto_ns,
        p.goto_replayed,
        p.rebuild_ns,
        p.rebuild_replayed,
        p.rebuild_ns as f64 / p.goto_ns as f64,
    )
    .expect("write to string");
    s
}

/// E14 smoke gate: time travel must be cheap in both directions. The
/// recorder must not perturb the run (identical guest instruction
/// counts with it off and on), the log and snapshots must actually
/// accumulate, and `goto_tick` via the nearest snapshot must re-apply
/// only the tail of the log where the full rebuild re-applies all of
/// it — with wall-clock to match at the densest cadence. Emits
/// `BENCH_E14.json` as a side effect.
#[test]
fn record_replay_time_travel_is_cheap() {
    const TICKS: u64 = 2048;

    let off = bench_support::record_overhead_point(false, 64, TICKS);
    let on = bench_support::record_overhead_point(true, 64, TICKS);
    assert_eq!(off.insns, on.insns, "recording perturbed the run:\noff {off:?}\non  {on:?}");
    assert!(on.records > 50, "log barely grew: {on:?}");
    assert!(on.bytes_logged > 1000, "digests folded almost nothing: {on:?}");
    assert!(on.snapshots > 0, "no snapshot landed: {on:?}");
    assert_eq!(off.records, 0, "recorder ran while off: {off:?}");

    let points: Vec<bench_support::GotoPoint> =
        [256, 64, 16].iter().map(|&n| bench_support::goto_latency_point(n, TICKS, 3)).collect();
    for p in &points {
        // The exactness claim, independent of wall clock: the snapshot
        // path re-applies at most one cadence worth of records (plus
        // the odd record while a snapshot was pending), the rebuild
        // re-applies every one.
        assert_eq!(p.rebuild_replayed as usize, p.len, "rebuild skipped records: {p:?}");
        if p.snapshots > 1 {
            assert!(
                p.goto_replayed <= 2 * p.snapshot_every as u64,
                "snapshot resume replayed too much: {p:?}"
            );
        }
    }
    // The felt claim, at the densest cadence only (widest margin):
    // resuming from the last snapshot must beat replaying the world.
    let dense = &points[2];
    assert!(dense.snapshots > 1, "densest cadence banked no snapshots: {dense:?}");
    assert!(
        dense.goto_ns < dense.rebuild_ns,
        "snapshot resume not faster than full rebuild: {dense:?}"
    );

    let overhead = on.wall_ns as f64 / off.wall_ns as f64;
    let json = format!(
        "{{\n  \"experiment\": \"E14\",\n  \"title\": \"record/replay: logging overhead and time-travel latency\",\n  \"ticks\": {TICKS},\n  \"record_overhead\": {{\"off_wall_ns\": {}, \"on_wall_ns\": {}, \"ratio\": {overhead:.3}, \"records\": {}, \"bytes_logged\": {}, \"snapshots\": {}}},\n  \"goto_points\": [\n{}\n  ]\n}}\n",
        off.wall_ns,
        on.wall_ns,
        on.records,
        on.bytes_logged,
        on.snapshots,
        points.iter().map(goto_json).collect::<Vec<_>>().join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_E14.json");
    std::fs::write(out, &json).expect("write BENCH_E14.json");
}

/// Renders one E15 migration point as a JSON object.
fn migrate_json(p: &bench_support::MigratePoint) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"fault_permille\": {}, \"adversary_permille\": {}, \
         \"wall_ns\": {}, \"bytes\": {}, \"chunks\": {}, \"min_chunks\": {}, \
         \"retries\": {}, \"dup_chunks\": {}, \"resumes\": {}}}",
        p.fault_permille,
        p.adversary_permille,
        p.wall_ns,
        p.bytes,
        p.chunks,
        p.min_chunks,
        p.retries,
        p.dup_chunks,
        p.resumes,
    )
    .expect("write to string");
    s
}

/// E15 smoke gate: live migration over the wire and recording
/// durability must be cheap and exactly-once. A clean wire moves the
/// image in exactly the loss-free chunk floor with zero re-sends;
/// faulted and adversarial wires still commit, paying only bounded
/// retries whose duplicate deliveries the destination kernel absorbs
/// as `dup_chunks` rather than double-applying. The recfile round
/// trip must parse-and-verify strictly cheaper than the full
/// cross-process rebuild it feeds. Emits `BENCH_E15.json` as a side
/// effect.
#[test]
fn migration_and_recfile_durability_are_cheap() {
    let sweep: [(u16, u16); 3] = [(0, 0), (80, 0), (120, 150)];
    let points: Vec<bench_support::MigratePoint> = sweep
        .iter()
        .enumerate()
        .map(|(i, &(f, a))| {
            bench_support::migrate_point(0xE150_0001 + i as u64 * 0x9E37, f, a)
        })
        .collect();

    // Clean wire: the floor exactly — no re-sends, no duplicates, no
    // resumed transfers.
    let clean = &points[0];
    assert_eq!(clean.retries, 0, "clean wire needed retries: {clean:?}");
    assert_eq!(clean.chunks, clean.min_chunks, "clean wire off the chunk floor: {clean:?}");
    assert_eq!(clean.dup_chunks, 0, "clean wire duplicated chunks: {clean:?}");
    assert_eq!(clean.resumes, 0, "clean wire resumed a transfer: {clean:?}");
    for p in &points {
        // Every leg committed (migrate_point panics otherwise) and no
        // leg beats the loss-free floor — re-sends only ever add work.
        assert!(p.bytes > 0, "empty checkpoint image: {p:?}");
        assert!(p.chunks >= p.min_chunks, "fewer chunks than the floor: {p:?}");
    }

    let rf = bench_support::recfile_point(64, 2048, 3);
    assert!(rf.records > 50, "recfile workload barely logged: {rf:?}");
    assert!(rf.bytes > 0, "empty recfile image: {rf:?}");
    assert!(
        rf.load_ns < rf.replay_ns,
        "parse+verify not cheaper than the full rebuild: {rf:?}"
    );

    let json = format!(
        "{{\n  \"experiment\": \"E15\",\n  \"title\": \"live migration over the adversarial wire and recfile durability\",\n  \"migrate_points\": [\n{}\n  ],\n  \"recfile\": {{\"records\": {}, \"bytes\": {}, \"save_ns\": {}, \"load_ns\": {}, \"replay_ns\": {}}}\n}}\n",
        points.iter().map(migrate_json).collect::<Vec<_>>().join(",\n"),
        rf.records,
        rf.bytes,
        rf.save_ns,
        rf.load_ns,
        rf.replay_ns,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_E15.json");
    std::fs::write(out, &json).expect("write BENCH_E15.json");
}

/// Renders one E16 point as a JSON object.
fn shard_json(workload: &str, p: &bench_support::ShardPoint) -> String {
    let mut s = String::new();
    write!(
        s,
        "    {{\"workload\": \"{}\", \"shards\": {}, \"guests\": {}, \"insns\": {}, \
         \"clock\": {}, \"wall_ns\": {}, \"insns_per_sec\": {:.1}}}",
        workload, p.shards, p.guests, p.insns, p.clock, p.wall_ns, p.insns_per_sec,
    )
    .expect("write to string");
    s
}

/// E16 smoke gate: the sharded gang-round engine. Guest-visible results
/// (total retired instructions and the final clock) must be identical
/// at every shard count — on the embarrassingly parallel spin farm and
/// on the serial-commit-heavy pipe farm alike — because the shard count
/// only chooses host parallelism, never the interleaving. On hosts with
/// at least 4 cores, the spin farm at `shards=4` must also retire
/// instructions at ≥ 2× the `shards=1` wall-clock rate; single-core
/// containers skip the scaling bar (there is nothing to scale onto) but
/// still enforce determinism and emit `BENCH_E16.json`.
#[test]
fn sharded_engine_is_deterministic_and_scales() {
    const TICKS: u64 = 400;
    const GUESTS: usize = 8;
    const PAIRS: usize = 6;

    let legacy = bench_support::shard_sweep_point(0, GUESTS, TICKS);
    let spin: Vec<bench_support::ShardPoint> =
        [1u32, 2, 4].iter().map(|&s| bench_support::shard_sweep_point(s, GUESTS, TICKS)).collect();
    for p in &spin[1..] {
        assert_eq!(
            (p.insns, p.clock),
            (spin[0].insns, spin[0].clock),
            "spin farm diverged between shards=1 and shards={}",
            p.shards
        );
    }
    assert!(spin[0].insns > 100_000, "spin farm barely ran: {:?}", spin[0]);

    let pipe: Vec<bench_support::ShardPoint> =
        [1u32, 4].iter().map(|&s| bench_support::pipe_farm_point(s, PAIRS, TICKS)).collect();
    assert_eq!(
        (pipe[0].insns, pipe[0].clock),
        (pipe[1].insns, pipe[1].clock),
        "pipe farm diverged between shards=1 and shards=4"
    );

    let spin_speedup = spin[2].insns_per_sec / spin[0].insns_per_sec;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"experiment\": \"E16\",\n  \"title\": \"sharded process table and deterministic parallel LWP execution\",\n  \"ticks\": {TICKS},\n  \"host_cores\": {cores},\n  \"points\": [\n{},\n{},\n{}\n  ],\n  \"spin_shards4_vs_shards1\": {spin_speedup:.3}\n}}\n",
        shard_json("spin-farm-legacy", &legacy),
        spin.iter().map(|p| shard_json("spin-farm", p)).collect::<Vec<_>>().join(",\n"),
        pipe.iter().map(|p| shard_json("pipe-farm", p)).collect::<Vec<_>>().join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_E16.json");
    std::fs::write(out, &json).expect("write BENCH_E16.json");

    // The scaling bar only means something when the host has cores to
    // scale onto; the shipped CI container is single-core, so the gate
    // arms itself on real multi-core hosts.
    if cores >= 4 {
        assert!(
            spin_speedup >= 2.0,
            "shards=4 only {spin_speedup:.2}x over shards=1 on {cores} cores:\n1 {:?}\n4 {:?}",
            spin[0],
            spin[2]
        );
    }
}
