//! The lossy-wire oracle: remote `/proc` must survive a faulty network.
//!
//! Two copies of the hierarchical interface are mounted over the same
//! kernel — one across a perfect wire, one across a wire that drops,
//! truncates, bit-flips, duplicates and delays frames under a seeded,
//! replayable `FaultPlan`. For every seed, every operation through the
//! faulted mount must return exactly the bytes the clean mount returns,
//! or fail with a clean errno (`EIO`/`ETIMEDOUT`) — never a panic,
//! never a silently wrong reply. Retried control messages must take
//! effect exactly once (checked against the kernel event log), and the
//! whole fault schedule must replay deterministically per seed.

use bench_support::XorShift;
use ksim::{signal, Cred, Errno, Pid, System, SysResult};
use procfs::hier::PCKILL;
use procfs::{ctl_record, HierFs, ProcFs};
use vfs::remote::{FaultRates, OpFuture, RemoteClient, RemoteFs, RemoteRead, WireConfig, WireStats, PIOCWIRESTATS};
use vfs::{NodeId, OFlags};

/// Boots a system with the hierarchical interface mounted twice: clean
/// at `/proc2`, faulted (under `seed`/`rates`) at `/proc2f`.
fn boot_pair(seed: u64, rates: FaultRates) -> (System, Pid, Vec<Pid>) {
    boot_pair_fast(seed, rates, true)
}

/// [`boot_pair`] with the execution fast path chosen at construction.
fn boot_pair_fast(seed: u64, rates: FaultRates, fast: bool) -> (System, Pid, Vec<Pid>) {
    let mut sys = System::with_config(ksim::SimConfig::new().fast_path(fast));
    tools::install_userland(&mut sys);
    sys.mount("/proc2", Box::new(RemoteFs::new(Box::new(HierFs::new()))));
    sys.mount(
        "/proc2f",
        Box::new(
            RemoteFs::new(Box::new(HierFs::new()))
                .with_config(&WireConfig::faulty(seed, rates)),
        ),
    );
    let ctl = sys.spawn_hosted("oracle", Cred::superuser());
    let targets: Vec<Pid> = (0..3)
        .map(|_| sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn"))
        .collect();
    sys.run_idle(100);
    (sys, ctl, targets)
}

/// Boots a system with the *flat* interface mounted behind a faulted
/// wire at `/proc` (the full ioctl wire table supplied), for the
/// security-semantics tests.
fn boot_flat_faulted(seed: u64, rates: FaultRates) -> (System, Pid) {
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    let fs = RemoteFs::new(Box::new(ProcFs::new()))
        .with_ioctl_table(procfs::ioctl::wire_table())
        .with_config(&WireConfig::faulty(seed, rates));
    sys.mount("/proc", Box::new(fs));
    let ctl = sys.spawn_hosted("remote-ctl", Cred::new(100, 10));
    (sys, ctl)
}

fn read_all(sys: &mut System, ctl: Pid, path: &str) -> SysResult<Vec<u8>> {
    let fd = sys.host_open(ctl, path, OFlags::rdonly())?;
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = sys.host_read(ctl, fd, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    let _ = sys.host_close(ctl, fd);
    Ok(out)
}

/// Reads the faulted mount's wire counters through the introspection
/// ioctl (answered client-side, so it works however lossy the wire is).
fn wire_stats(sys: &mut System, ctl: Pid, path: &str) -> WireStats {
    // The open itself crosses the (lossy) wire; at high fault rates it
    // may time out — keep asking, each attempt draws fresh faults.
    let fd = (0..64)
        .find_map(|_| sys.host_open(ctl, path, OFlags::rdonly()).ok())
        .expect("open for stats");
    let bytes = sys.host_ioctl(ctl, fd, PIOCWIRESTATS, &[]).expect("wirestats");
    let _ = sys.host_close(ctl, fd);
    WireStats::from_bytes(&bytes).expect("decode")
}

/// The acceptable failure modes of a faulted operation whose clean twin
/// succeeded: a clean degradation errno, nothing else.
fn clean_failure(e: Errno) -> bool {
    matches!(e, Errno::EIO | Errno::ETIMEDOUT)
}

/// One seed's worth of ps/truss/debugger-shaped traffic through both
/// mounts. Returns a transcript of outcomes (used for replay checks)
/// and the number of control-message writes that succeeded / timed out.
fn drive_workload(
    sys: &mut System,
    ctl: Pid,
    targets: &[Pid],
    seed: u64,
    steps: u32,
) -> (Vec<String>, usize, usize) {
    let mut rng = XorShift::new(seed ^ 0x5eed_0f0f);
    let files = ["status", "psinfo", "map", "cred", "usage"];
    let mut transcript = Vec::new();
    let mut kills_ok = 0usize;
    let mut kills_timed_out = 0usize;
    for step in 0..steps {
        let pid = targets[rng.below(targets.len() as u64) as usize];
        match rng.below(6) {
            // ps/truss shape: the same file through both wires.
            0..=2 => {
                let file = files[rng.below(files.len() as u64) as usize];
                let clean = read_all(sys, ctl, &format!("/proc2/{}/{}", pid.0, file));
                let faulted = read_all(sys, ctl, &format!("/proc2f/{}/{}", pid.0, file));
                match (&clean, &faulted) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "seed {seed:#x} step {step} {file}: bytes diverged")
                    }
                    (Err(a), Err(b)) => assert!(
                        a == b || clean_failure(*b),
                        "seed {seed:#x} step {step} {file}: {a} vs {b}"
                    ),
                    (Ok(_), Err(e)) => assert!(
                        clean_failure(*e),
                        "seed {seed:#x} step {step} {file}: dirty failure {e}"
                    ),
                    (Err(a), Ok(_)) => {
                        panic!("seed {seed:#x} step {step} {file}: clean failed {a}, faulted ok")
                    }
                }
                transcript.push(format!("{step} read {file} {:?}", faulted.map(|b| b.len())));
            }
            // Error paths must cross as errnos, not as damage.
            3 => {
                let r = sys.host_open(ctl, "/proc2f/99999/status", OFlags::rdonly());
                let e = r.expect_err("no such pid");
                assert!(
                    matches!(e, Errno::ENOENT | Errno::ESRCH) || clean_failure(e),
                    "seed {seed:#x} step {step}: lookup failure was {e}"
                );
                transcript.push(format!("{step} enoent {e}"));
            }
            // Debugger shape: a control message through the faulted wire.
            4 => {
                match sys.host_open(ctl, &format!("/proc2f/{}/ctl", pid.0), OFlags::wronly()) {
                    Ok(cfd) => {
                        let msg =
                            ctl_record(PCKILL, &(signal::SIGUSR1 as u32).to_le_bytes());
                        match sys.host_write(ctl, cfd, &msg) {
                            Ok(_) => kills_ok += 1,
                            Err(Errno::ETIMEDOUT) => kills_timed_out += 1,
                            Err(e) => assert!(
                                clean_failure(e) || matches!(e, Errno::ENOENT | Errno::ESRCH),
                                "seed {seed:#x} step {step}: ctl write failed dirty: {e}"
                            ),
                        }
                        let _ = sys.host_close(ctl, cfd);
                        transcript.push(format!("{step} kill"));
                    }
                    Err(e) => {
                        assert!(
                            clean_failure(e) || matches!(e, Errno::ENOENT | Errno::ESRCH),
                            "seed {seed:#x} step {step}: ctl open failed dirty: {e}"
                        );
                        transcript.push(format!("{step} kill-open {e}"));
                    }
                }
            }
            // Let the kernel run; both mounts watch the same machine.
            _ => {
                let n = 1 + rng.below(40);
                sys.run_idle(n);
                transcript.push(format!("{step} run {n}"));
            }
        }
    }
    (transcript, kills_ok, kills_timed_out)
}

/// The tentpole acceptance gate: 32 seeds, each driving mixed fault
/// rates, every faulted result byte-identical to the clean mount or a
/// clean errno, and every successful control message applied exactly
/// once (kernel event log as ground truth).
#[test]
fn fault_oracle_holds_for_32_seeds() {
    for i in 0..32u64 {
        let seed = 0xA11C_E000 + i;
        // Sweep the fault intensity across seeds: 2%..17.5% per class.
        let rates = FaultRates::uniform(20 + (i as u16) * 5);
        let (mut sys, ctl, targets) = boot_pair(seed, rates);
        let (_t, kills_ok, kills_timed_out) = drive_workload(&mut sys, ctl, &targets, seed, 20);
        // Exactly-once: every acknowledged PCKILL posted its signal
        // exactly once; a timed-out one may have executed zero or one
        // times, never more.
        let posts: usize =
            targets.iter().map(|p| sys.kernel.log.sig_posts_of(*p, signal::SIGUSR1)).sum();
        assert!(
            posts >= kills_ok && posts <= kills_ok + kills_timed_out,
            "seed {seed:#x}: {kills_ok} acks + {kills_timed_out} timeouts but {posts} posts"
        );
        let stats = wire_stats(&mut sys, ctl, &format!("/proc2f/{}/status", targets[0].0));
        assert!(stats.faults_injected() > 0, "seed {seed:#x}: no faults were injected");
    }
}

/// The execution fast path's differential oracle, wire-suite half:
/// forcing the software TLB and decoded-instruction cache off must
/// reproduce every seed's transcript, ack/timeout counts and wire
/// counters bit for bit — the caches must not change what any guest
/// instruction or wire frame does, only how fast it happens.
#[test]
fn fast_path_off_is_transcript_identical_for_32_seeds() {
    for i in 0..32u64 {
        let seed = 0xA11C_E000 + i;
        let rates = FaultRates::uniform(20 + (i as u16) * 5);
        let run = |fast: bool| {
            let (mut sys, ctl, targets) = boot_pair_fast(seed, rates, fast);
            let (transcript, ok, to) = drive_workload(&mut sys, ctl, &targets, seed, 20);
            let stats = wire_stats(&mut sys, ctl, &format!("/proc2f/{}/status", targets[0].0));
            (transcript, ok, to, stats)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.0, off.0, "seed {seed:#x}: fast path changed the transcript");
        assert_eq!(
            (on.1, on.2),
            (off.1, off.2),
            "seed {seed:#x}: fast path changed ack/timeout counts"
        );
        assert_eq!(on.3, off.3, "seed {seed:#x}: fast path changed the wire counters");
    }
}

/// Replaying the same seed reproduces the same per-operation outcomes
/// *and* the same wire counters, bit for bit.
#[test]
fn same_seed_replays_identically() {
    for seed in [0x0B50_1E7E_u64, 0xFEED_F00D] {
        let run = |seed: u64| {
            let rates = FaultRates::uniform(120);
            let (mut sys, ctl, targets) = boot_pair(seed, rates);
            let (transcript, ok, to) = drive_workload(&mut sys, ctl, &targets, seed, 16);
            let stats = wire_stats(&mut sys, ctl, &format!("/proc2f/{}/status", targets[0].0));
            (transcript, ok, to, stats)
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.0, b.0, "seed {seed:#x}: transcripts diverged");
        assert_eq!((a.1, a.2), (b.1, b.2), "seed {seed:#x}: ack/timeout counts diverged");
        assert_eq!(a.3, b.3, "seed {seed:#x}: wire counters diverged");
    }
}

/// Every frame duplicated: the server-side dedup window must absorb the
/// clones so each control message still takes effect exactly once — and
/// the dedup counter is observable through `PIOCWIRESTATS`.
#[test]
fn duplicated_control_messages_apply_exactly_once() {
    let rates = FaultRates { duplicate: 1000, ..FaultRates::default() };
    let (mut sys, ctl, targets) = boot_pair(7, rates);
    let mut acked = 0usize;
    for pid in &targets {
        let cfd = sys
            .host_open(ctl, &format!("/proc2f/{}/ctl", pid.0), OFlags::wronly())
            .expect("open ctl");
        let msg = ctl_record(PCKILL, &(signal::SIGUSR1 as u32).to_le_bytes());
        sys.host_write(ctl, cfd, &msg).expect("kill crosses");
        acked += 1;
        let _ = sys.host_close(ctl, cfd);
    }
    let posts: usize =
        targets.iter().map(|p| sys.kernel.log.sig_posts_of(*p, signal::SIGUSR1)).sum();
    assert_eq!(posts, acked, "a duplicated control message was applied more than once");
    let stats = wire_stats(&mut sys, ctl, &format!("/proc2f/{}/status", targets[0].0));
    assert!(stats.duplicates > 0, "duplication was exercised");
    assert!(stats.dedup_hits > 0, "the dedup window absorbed the clones");
    assert_eq!(stats.timeouts, 0);
}

/// O_EXCL exclusive control must survive the wire: exactly one writer,
/// readers unaffected, and — because opens and closes are sequenced with
/// server-side dedup — writer accounting stays exact even though the
/// lossy wire forces retries.
#[test]
fn exclusive_control_survives_the_wire() {
    let rates = FaultRates { delay: 200, duplicate: 250, ..FaultRates::default() };
    let (mut sys, ctl) = boot_flat_faulted(0xE8C1, rates);
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    let path = tools::proc_io::proc_path(pid);

    let fd = sys.host_open(ctl, &path, OFlags::rdwr_excl()).expect("exclusive open");
    assert_eq!(
        sys.host_open(ctl, &path, OFlags::rdwr()),
        Err(Errno::EBUSY),
        "second writer must be refused across the wire"
    );
    let rfd = sys.host_open(ctl, &path, OFlags::rdonly()).expect("readers unaffected");
    sys.host_close(ctl, rfd).expect("close reader");
    sys.host_close(ctl, fd).expect("close excl");
    // If a duplicated or retried open had been executed twice, a stale
    // writer count would still hold the exclusive lock here.
    let fd2 = sys.host_open(ctl, &path, OFlags::rdwr_excl()).expect("lock released exactly once");
    sys.host_close(ctl, fd2).expect("close");

    let sfd = sys.host_open(ctl, &path, OFlags::rdonly()).expect("open for stats");
    let bytes = sys.host_ioctl(ctl, sfd, PIOCWIRESTATS, &[]).expect("stats");
    let stats = WireStats::from_bytes(&bytes).expect("decode");
    assert!(stats.retries > 0, "the wire was not actually lossy");
    assert!(stats.dedup_hits > 0, "no sequenced op was ever re-asked");
}

/// Set-id exec invalidation must survive the wire: after the target
/// execs a set-uid program, the pre-exec descriptor answers `EBADF` —
/// the real errno, not wire damage — even across retries.
#[test]
fn setid_exec_invalidation_survives_the_wire() {
    let rates = FaultRates { delay: 200, duplicate: 250, ..FaultRates::default() };
    let (mut sys, ctl) = boot_flat_faulted(0x5E71D, rates);
    let root = sys.spawn_hosted("rootctl", Cred::superuser());
    let src = r#"
        _start:
            movi rv, 11     ; exec("/bin/su", 0)
            la   a0, path
            movi a1, 0
            syscall
        hang:
            jmp hang
        .data
        path: .asciz "/bin/su"
    "#;
    sys.install_program("/bin/execer", src);
    let spin = ksim::aout::build_aout("_start:\nloop: jmp loop").expect("asm");
    sys.memfs_mut().install("/bin/su", 0o4755, 0, 0, spin.to_bytes());
    // Spawned unprivileged so the exec genuinely raises euid.
    let target = sys.spawn_program(ctl, "/bin/execer", &["execer"]).expect("spawn");

    let fd = sys.host_open(root, &tools::proc_io::proc_path(target), OFlags::rdwr()).expect("open");
    sys.run_idle(2000);
    let proc = sys.kernel.proc(target).expect("alive");
    assert_eq!(proc.cred.euid, 0, "set-id honoured");
    // The stale descriptor is refused with the genuine errno, repeatedly
    // and consistently, however many retries each request needed.
    for _ in 0..8 {
        assert_eq!(
            sys.host_ioctl(root, fd, procfs::ioctl::PIOCSTATUS, &[]),
            Err(Errno::EBADF),
            "pre-exec descriptor must die across the wire"
        );
    }
    // A fresh privileged open regains control.
    let fd2 = sys.host_open(root, &tools::proc_io::proc_path(target), OFlags::rdwr()).expect("reopen");
    assert!(sys.host_ioctl(root, fd2, procfs::ioctl::PIOCSTATUS, &[]).is_ok());
    sys.host_close(root, fd2).expect("close");
    sys.host_close(root, fd).expect("close stale");

    let sfd = sys.host_open(root, &tools::proc_io::proc_path(target), OFlags::rdonly()).expect("open");
    let bytes = sys.host_ioctl(root, sfd, PIOCWIRESTATS, &[]).expect("stats");
    let stats = WireStats::from_bytes(&bytes).expect("decode");
    assert!(stats.retries > 0, "the wire was not actually lossy");
}

/// A dead wire (every frame dropped) degrades every operation to
/// `ETIMEDOUT` — and never wedges, panics, or half-applies anything.
#[test]
fn dead_wire_degrades_cleanly() {
    let rates = FaultRates { drop: 1000, ..FaultRates::default() };
    let (mut sys, ctl, targets) = boot_pair(3, rates);
    let pid = targets[0];
    assert_eq!(
        sys.host_open(ctl, &format!("/proc2f/{}/status", pid.0), OFlags::rdonly()),
        Err(Errno::ETIMEDOUT)
    );
    // The clean mount is entirely unaffected.
    let st = read_all(&mut sys, ctl, &format!("/proc2/{}/status", pid.0)).expect("clean side");
    assert!(!st.is_empty());
}

/// Resubmits an op until it crosses a lossy wire. Each attempt draws a
/// fresh slice of the fault schedule, so the whole thing stays
/// deterministic per seed.
fn wait_retry<T>(
    c: &RemoteClient<ksim::Kernel>,
    k: &mut ksim::Kernel,
    mut submit: impl FnMut(&RemoteClient<ksim::Kernel>) -> OpFuture<T>,
) -> T {
    for _ in 0..512 {
        if let Ok(v) = c.wait(k, submit(c)) {
            return v;
        }
    }
    panic!("operation never crossed the lossy wire");
}

/// Runs both handles' scripted read streams through one session,
/// pipelined and interleaved: every read from both handles is in flight
/// before any completes, and completions demultiplex out of order.
/// Returns each handle's per-op outcomes, in script order.
fn run_two_handle_streams(
    k: &mut ksim::Kernel,
    fs: &RemoteFs<ksim::Kernel>,
    ctl: Pid,
    scripts: &[Vec<(Pid, &'static str)>; 2],
) -> [Vec<Result<Vec<u8>, Errno>>; 2] {
    let handles = [fs.client(), fs.client()];
    let cred = Cred::superuser();
    // Resolve every script entry to an open read descriptor first; on
    // the faulted session these setup ops retry through the same lossy
    // wire the oracle is judging.
    let mut opened: [Vec<(NodeId, vfs::OpenToken)>; 2] = [Vec::new(), Vec::new()];
    for (h, script) in scripts.iter().enumerate() {
        for (pid, file) in script {
            let c = &handles[h];
            let dir = wait_retry(c, k, |c| c.submit_lookup(ctl, NodeId(0), &pid.0.to_string()));
            let node = wait_retry(c, k, |c| c.submit_lookup(ctl, dir, file));
            let tok = wait_retry(c, k, |c| c.submit_open(ctl, node, OFlags::rdonly(), &cred));
            opened[h].push((node, tok));
        }
    }
    // Interleave submission round-robin across the handles: op j of
    // handle 0, op j of handle 1, then j+1 — all tagged into one
    // session window before anything is waited on.
    let mut futs: Vec<(usize, usize, OpFuture<RemoteRead>)> = Vec::new();
    for j in 0..scripts[0].len().max(scripts[1].len()) {
        for h in 0..2 {
            if let Some((node, tok)) = opened[h].get(j) {
                futs.push((h, j, handles[h].submit_read(ctl, *node, *tok, 0, 4096)));
            }
        }
    }
    let mut out: [Vec<Result<Vec<u8>, Errno>>; 2] =
        [vec![Err(Errno::EIO); scripts[0].len()], vec![Err(Errno::EIO); scripts[1].len()]];
    // Poll-demux until every future resolves (success or clean errno).
    while !futs.is_empty() {
        let advanced = handles[0].pump(k);
        futs.retain_mut(|(h, j, fut)| match handles[*h].try_complete(fut) {
            Some(Ok(RemoteRead::Data(b))) => {
                out[*h][*j] = Ok(b);
                false
            }
            Some(Ok(RemoteRead::Block)) => panic!("status read blocked"),
            Some(Err(e)) => {
                out[*h][*j] = Err(e);
                false
            }
            None => true,
        });
        assert!(advanced || futs.is_empty(), "session wedged with ops in flight");
    }
    assert_eq!(handles[0].in_flight(), 0);
    out
}

/// The multi-client oracle: two handles' interleaved op streams through
/// one faulted session must agree with the clean session per handle,
/// byte for byte (or fail with a clean errno) — for 32 seeds.
#[test]
fn multi_client_streams_agree_per_handle_for_32_seeds() {
    let files = ["status", "psinfo", "cred"];
    for i in 0..32u64 {
        let seed = 0xC11E_7000 + i;
        let rates = FaultRates::uniform(20 + (i as u16) * 5);
        let mut sys = System::boot();
        tools::install_userland(&mut sys);
        let ctl = sys.spawn_hosted("oracle", Cred::superuser());
        let targets: Vec<Pid> = (0..3)
            .map(|_| sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn"))
            .collect();
        sys.run_idle(100);

        // Each handle runs its own deterministic stream of (pid, file)
        // reads, derived from the seed but distinct per handle.
        let script = |h: u64| -> Vec<(Pid, &'static str)> {
            let mut rng = XorShift::new(seed ^ h.wrapping_mul(0x9E37_79B9));
            (0..8)
                .map(|_| {
                    (
                        targets[rng.below(targets.len() as u64) as usize],
                        files[rng.below(files.len() as u64) as usize],
                    )
                })
                .collect()
        };
        let scripts = [script(1), script(2)];

        let clean_fs = RemoteFs::new(Box::new(HierFs::new()));
        let clean = run_two_handle_streams(&mut sys.kernel, &clean_fs, ctl, &scripts);
        let faulted_fs =
            RemoteFs::new(Box::new(HierFs::new())).with_config(&WireConfig::faulty(seed, rates));
        let faulted = run_two_handle_streams(&mut sys.kernel, &faulted_fs, ctl, &scripts);

        for h in 0..2 {
            for (j, (c, f)) in clean[h].iter().zip(faulted[h].iter()).enumerate() {
                let want = c.as_ref().unwrap_or_else(|e| {
                    panic!("seed {seed:#x} handle {h} op {j}: clean wire failed: {e}")
                });
                match f {
                    Ok(b) => assert_eq!(
                        b, want,
                        "seed {seed:#x} handle {h} op {j}: bytes diverged across handles"
                    ),
                    Err(e) => assert!(
                        clean_failure(*e),
                        "seed {seed:#x} handle {h} op {j}: dirty failure {e}"
                    ),
                }
            }
        }
        assert!(
            faulted_fs.client().stats().faults_injected() > 0,
            "seed {seed:#x}: no faults were injected"
        );
    }
}

/// Exactly-once for sequenced ops under cross-handle reordering: every
/// frame duplicated and a third delayed, so clones of the two handles'
/// control writes arrive interleaved and out of order — yet each
/// acknowledged write posts its signal exactly once, per handle.
#[test]
fn sequenced_ops_apply_exactly_once_across_handles_for_32_seeds() {
    for i in 0..32u64 {
        let seed = 0xD05E_ED00 + i;
        let rates = FaultRates { duplicate: 1000, delay: 330, ..FaultRates::default() };
        let mut sys = System::boot();
        tools::install_userland(&mut sys);
        let ctl = sys.spawn_hosted("oracle", Cred::superuser());
        let targets: Vec<Pid> = (0..2)
            .map(|_| sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn"))
            .collect();
        sys.run_idle(100);
        let fs =
            RemoteFs::new(Box::new(HierFs::new())).with_config(&WireConfig::faulty(seed, rates));
        let handles = [fs.client(), fs.client()];
        let cred = Cred::superuser();
        let k = &mut sys.kernel;

        // Handle h controls target h exclusively, so the kernel event
        // log gives per-handle ground truth.
        let mut opened = Vec::new();
        for (h, pid) in targets.iter().enumerate() {
            let c = &handles[h];
            let dir = wait_retry(c, k, |c| c.submit_lookup(ctl, NodeId(0), &pid.0.to_string()));
            let node = wait_retry(c, k, |c| c.submit_lookup(ctl, dir, "ctl"));
            let tok = wait_retry(c, k, |c| c.submit_open(ctl, node, OFlags::wronly(), &cred));
            opened.push((node, tok));
        }
        let msg = ctl_record(PCKILL, &(signal::SIGUSR1 as u32).to_le_bytes());
        // Eight sequenced writes (four per handle) all in flight at
        // once, interleaved across the handles.
        let mut futs = Vec::new();
        for _ in 0..4 {
            for h in 0..2 {
                let (node, tok) = opened[h];
                futs.push((h, handles[h].submit_write(ctl, node, tok, 0, &msg)));
            }
        }
        let (mut acked, mut timed_out) = ([0usize; 2], [0usize; 2]);
        while !futs.is_empty() {
            let advanced = handles[0].pump(k);
            futs.retain_mut(|(h, fut)| match handles[*h].try_complete(fut) {
                Some(Ok(_)) => {
                    acked[*h] += 1;
                    false
                }
                Some(Err(Errno::ETIMEDOUT)) => {
                    timed_out[*h] += 1;
                    false
                }
                Some(Err(e)) => panic!("seed {seed:#x}: ctl write failed dirty: {e}"),
                None => true,
            });
            assert!(advanced || futs.is_empty(), "session wedged with ops in flight");
        }
        for h in 0..2 {
            let posts = sys.kernel.log.sig_posts_of(targets[h], signal::SIGUSR1);
            assert!(
                posts >= acked[h] && posts <= acked[h] + timed_out[h],
                "seed {seed:#x} handle {h}: {} acks + {} timeouts but {posts} posts",
                acked[h],
                timed_out[h]
            );
        }
        let stats = handles[0].stats();
        assert!(stats.duplicates > 0, "seed {seed:#x}: duplication was exercised");
        assert!(stats.dedup_hits > 0, "seed {seed:#x}: the dedup window absorbed the clones");
    }
}
