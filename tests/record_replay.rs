//! The PR 8 determinism gate: a run *is* its input history.
//!
//! Every nondeterministic input to a simulation — construction config,
//! installs, spawns, host system calls, step batches — lands in the
//! [`ksim::Recording`] with a digest folding the input, its result and
//! the post-call clock. Replaying the log through the public host API
//! must therefore reproduce the run byte-for-byte, *including* under
//! active kernel-fault and wire-fault plans: the fault draws are
//! functions of recorded seeds and recorded call order, nothing else.
//!
//! Three gates:
//!  * a 32-seed record-then-replay oracle with kernel faults and an
//!    adversarial remote `/proc` mount both live — replayed logs must
//!    equal the originals record-for-record;
//!  * a corruption detector — flip one digest bit mid-log and replay
//!    must report a typed divergence at exactly that tick;
//!  * a `PIOCCKPT`/`PIOCRESTORE` round-trip over the faulted remote
//!    mount — restore rewinds the guest's register file to the
//!    checkpointed state even though every wire frame in between was
//!    subject to the fault plan.

use ksim::{Cred, KernelFaultRates, MountPlan, Pid, SimConfig, SysResult, System};
use tools::proc_io::ProcHandle;
use vfs::remote::{AdversaryRates, FaultRates, WireConfig};
use vfs::OFlags;

const REMOTE_MOUNT: &str = "/procr";

/// The standard mounts plus an adversarial remote `/proc`, kernel
/// faults, and the recorder — everything the oracle wants live at once.
fn faulted_recorded_config(seed: u64) -> SimConfig {
    let wire = WireConfig::faulty(seed ^ 0x51DE, FaultRates::uniform(25))
        .adversarial(AdversaryRates::uniform(40));
    SimConfig::standard()
        .mount(REMOTE_MOUNT, MountPlan::RemoteProc(wire))
        .kernel_faults(seed, KernelFaultRates::uniform(20))
        .record(true)
        .snapshot_every(8)
}

/// Drives a modest but varied workload across every surface the
/// recorder covers: spawns, local and remote `/proc` traffic, stepping,
/// signals and reaping. Individual calls are allowed to fail — under
/// the fault plans many will — but each failure is itself a recorded,
/// reproducible result.
fn drive(sys: &mut System, ctl: Pid) {
    let ticker = sys.spawn_program(ctl, "/bin/ticker", &["ticker"]);
    let forker = sys.spawn_program(ctl, "/bin/forker", &["forker"]);
    sys.run_idle(60);

    if let Ok(pid) = ticker {
        // Local flat mount: status read.
        if let Ok(fd) = sys.host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdonly()) {
            let mut buf = [0u8; 128];
            let _ = sys.host_read(ctl, fd, &mut buf);
            let _ = sys.host_close(ctl, fd);
        }
        // Hierarchical mount: psinfo read.
        if let Ok(fd) =
            sys.host_open(ctl, &format!("/proc2/{}/psinfo", pid.0), OFlags::rdonly())
        {
            let mut buf = [0u8; 128];
            let _ = sys.host_read(ctl, fd, &mut buf);
            let _ = sys.host_close(ctl, fd);
        }
        // Remote mount: a handle's stop/gregs/resume cycle plus stats,
        // every frame subject to the wire fault plan.
        if let Ok(mut h) = ProcHandle::open_at(sys, ctl, pid, REMOTE_MOUNT, OFlags::rdwr()) {
            let _ = h.stop(sys);
            let _ = h.gregs(sys);
            let _ = h.wire_stats(sys);
            let _ = h.resume(sys);
            let _ = h.close(sys);
        }
        let _ = sys.host_kill(ctl, pid, 9);
    }
    sys.run_idle(80);
    if let Ok(pid) = forker {
        let _ = sys.host_kill(ctl, pid, 9);
    }
    sys.run_idle(40);
    let _ = sys.host_wait(ctl);
}

fn recorded_run(seed: u64) -> System {
    let mut sys = tools::boot_demo_cfg(faulted_recorded_config(seed));
    let ctl = sys.spawn_hosted("rr-oracle", Cred::superuser());
    drive(&mut sys, ctl);
    sys
}

/// The tentpole acceptance gate: 32 seeds, kernel faults and an
/// adversarial wire both active, replay byte-identical every time.
#[test]
fn replay_matrix_32_seeds_byte_identical() {
    let mut total = 0usize;
    for i in 0..32u64 {
        let seed = 0x00DE_7EC7 + i * 0x9E37;
        let sys = recorded_run(seed);
        let rec = sys.recording().expect("recording on");
        // Fault draws legitimately shrink a seed's log (a failed spawn
        // skips its whole branch), but the fault-free boot prefix alone
        // guarantees a floor, and across seeds the workload must be
        // substantial.
        assert!(rec.len() > 15, "seed {seed:#x}: workload too small ({} records)", rec.len());
        total += rec.len();
        let replayed = match procfs::replay(&rec) {
            Ok(s) => s,
            Err(d) => panic!(
                "seed {seed:#x}: replay diverged at tick {} (expected {:#018x}, got {:#018x})",
                d.tick, d.expected, d.got
            ),
        };
        let rlog = replayed.recording().expect("recording on after replay");
        assert_eq!(
            rlog.records, rec.records,
            "seed {seed:#x}: replay produced a different log"
        );
    }
    assert!(total > 32 * 20, "matrix workload too small ({total} records across seeds)");
}

/// PR 10: the replay matrix with the sharded gang-round engine in the
/// loop. Every seed records at `shards ∈ {1, 2, 4}` with the kernel
/// fault plan and the adversarial wire both live; the three logs must
/// be record-for-record identical — the shard count shapes host
/// parallelism, never recorded work — and each seed's `shards=4` log
/// must replay byte-identically (the recorded config carries the shard
/// dimension, so the replay re-executes through the sharded engine).
#[test]
fn replay_matrix_holds_at_every_shard_count() {
    for i in 0..32u64 {
        let seed = 0x5AD0_C0DE + i * 0x9E37;
        let at = |shards: u32| {
            let mut sys = tools::boot_demo_cfg(
                faulted_recorded_config(seed).shards(shards).interleave_seed(seed ^ 0x1EAF),
            );
            let ctl = sys.spawn_hosted("rr-oracle", Cred::superuser());
            drive(&mut sys, ctl);
            sys
        };
        let base = at(1).recording().expect("recording on");
        assert!(base.len() > 15, "seed {seed:#x}: workload too small ({} records)", base.len());
        for shards in [2u32, 4] {
            let got = at(shards).recording().expect("recording on");
            assert_eq!(
                base.records, got.records,
                "seed {seed:#x}: log diverged between shards=1 and shards={shards}"
            );
            if shards == 4 {
                let replayed = match procfs::replay(&got) {
                    Ok(s) => s,
                    Err(d) => panic!(
                        "seed {seed:#x}: shards=4 replay diverged at tick {} \
                         (expected {:#018x}, got {:#018x})",
                        d.tick, d.expected, d.got
                    ),
                };
                assert_eq!(
                    replayed.recording().expect("recording on after replay").records,
                    got.records,
                    "seed {seed:#x}: shards=4 replay produced a different log"
                );
            }
        }
    }
}

/// Corrupt one recorded digest and the replay must fail *typed* and
/// *located*: a `ReplayDivergence` whose tick is exactly the corrupted
/// index, not a later cascade or a panic.
#[test]
fn corrupted_frame_reports_divergence_at_exact_tick() {
    let sys = recorded_run(0xBADF_00D1);
    let mut rec = sys.recording().expect("recording on");
    let tick = rec.len() / 3;
    rec.records[tick].digest ^= 0x80;
    match procfs::replay(&rec) {
        Ok(_) => panic!("replay accepted a corrupted log"),
        Err(d) => {
            assert_eq!(d.tick, tick, "divergence reported at the wrong tick");
            assert_ne!(d.expected, d.got);
        }
    }
}

/// Retries an operation under the fault plan: any individual frame may
/// draw a fault, but the plans here are sub-certain, so a bounded retry
/// always lands.
fn eventually<T>(what: &str, mut f: impl FnMut() -> SysResult<T>) -> T {
    let mut last = None;
    for _ in 0..400 {
        match f() {
            Ok(v) => return v,
            Err(e) => last = Some(e),
        }
    }
    panic!("{what} failed 400 straight times under the fault plan: {last:?}");
}

/// `PIOCCKPT`/`PIOCRESTORE` over the adversarial remote mount: capture
/// a stopped guest's image, let it run on, then rewind it — the
/// register file must come back exactly, with every frame of the
/// checkpoint and restore subject to wire faults.
#[test]
fn checkpoint_restore_round_trips_over_faulted_remote_mount() {
    let mut sys = tools::boot_demo_cfg(faulted_recorded_config(0x00C4_9701));
    let ctl = sys.spawn_hosted("rr-ckpt", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/ticker", &["ticker"]).expect("spawn ticker");
    sys.run_idle(120);

    let mut h = eventually("open", || {
        ProcHandle::open_at(&mut sys, ctl, pid, REMOTE_MOUNT, OFlags::rdwr())
    });
    eventually("stop", || h.stop(&mut sys));
    let at_ckpt = eventually("gregs", || h.gregs(&mut sys));
    let image = eventually("checkpoint", || h.checkpoint(&mut sys));
    assert!(!image.is_empty(), "checkpoint produced an empty image");

    // Run on so the register file provably moves.
    eventually("resume", || h.resume(&mut sys));
    sys.run_idle(150);
    eventually("stop again", || h.stop(&mut sys));
    let moved = eventually("gregs after run", || h.gregs(&mut sys));
    assert_ne!(at_ckpt, moved, "target never advanced between checkpoint and restore");

    // Restore is idempotent, so it is safe to retry wholesale.
    eventually("restore", || h.restore(&mut sys, &image));
    let back = eventually("gregs after restore", || h.gregs(&mut sys));
    assert_eq!(at_ckpt, back, "restore did not rewind the register file");
    let _ = h.close(&mut sys);

    // The whole dance — faults included — replays byte-identically.
    let rec = sys.recording().expect("recording on");
    let replayed = procfs::replay(&rec).expect("ckpt/restore run must replay cleanly");
    assert_eq!(replayed.recording().expect("recording").records, rec.records);
}

/// PR 9: a remote-mount configuration no longer forces `goto_tick` down
/// the full-rebuild path. Wire-session state is banked into each `Snap`
/// alongside the kernel, so navigation lands on the nearest snapshot
/// (`restores == 1`) and re-applies only the tail of the log
/// (`replays < k`) — and the restored system is still byte-faithful to
/// the recording.
#[test]
fn goto_tick_over_remote_mount_takes_the_snapshot_fast_path() {
    let sys = recorded_run(0x0FA5_7F00);
    let len = sys.recording().expect("recording on").len();
    assert!(len > 24, "workload too small to exercise navigation ({len} records)");
    let k = len * 3 / 4;
    let restored = procfs::goto_tick(&sys, k).expect("goto_tick over the remote mount");
    let stats = restored.kernel.recorder.as_ref().expect("recorder survives").stats;
    assert_eq!(
        stats.restores, 1,
        "remote-mount navigation fell back to a full rebuild: {stats:?}"
    );
    assert!(
        (stats.replays as usize) < k,
        "snapshot fast path replayed the whole log: {} >= {k}",
        stats.replays
    );
    assert_eq!(
        restored.recording().expect("recording on").records[..],
        sys.recording().expect("recording on").records[..k],
        "fast-path navigation diverged from the log prefix"
    );
}
