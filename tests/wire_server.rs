//! The adversarial-client oracle: the wire *server* must survive
//! misbehaving peers.
//!
//! PR 2's oracle proved the client side survives a lossy *network*;
//! this suite proves the readiness-loop server survives hostile
//! *clients*. A seeded [`AdversaryRates`] dimension on the same
//! `FaultPlan` rolls slow-reader and half-open session personas, frame
//! floods, mid-frame disconnects and reconnect-with-stale-tag replays.
//! Under 32 pinned seeds:
//!
//! * no panic, ever — every degradation is a typed errno
//!   (`EAGAIN` for shed/evicted work, `ETIMEDOUT` for retry
//!   exhaustion, `EIO` for damage);
//! * no adversarial session starves the blocking mount face (session
//!   0), whose probes stay byte-perfect throughout;
//! * queue high-water marks never exceed the configured caps;
//! * sequenced control messages apply exactly once across connection
//!   churn (kernel event log as ground truth);
//! * the same seed replays byte-identically — outcomes, counters and
//!   the virtual clock;
//! * session teardown auto-closes every server-tracked `OpenToken`, so
//!   run-on-last-close still releases a stopped target whose
//!   controller vanished mid-session (the paper's `PIOCSRLC` promise,
//!   with the "last close" performed by an eviction).

use bench_support::XorShift;
use ksim::{signal, Cred, Errno, Pid, System};
use procfs::hier::PCKILL;
use procfs::ioctl::{PIOCSRLC, PIOCSTATUS, PIOCSTOP};
use procfs::{ctl_record, HierFs, ProcFs};
use tools::proc_io::ProcHandle;
use vfs::remote::{
    AdversaryRates, FaultRates, OpFuture, RemoteClient, RemoteFs, RemoteRead, WireConfig,
    WireStats,
};
use vfs::{FileSystem, IoReply, IoctlReply, NodeId, OFlags};

/// The typed degradations an adversarial session is allowed to surface.
fn clean_failure(e: Errno) -> bool {
    matches!(e, Errno::EIO | Errno::ETIMEDOUT | Errno::EAGAIN)
}

/// Boots a kernel with userland and `n` spinning targets.
fn boot_targets(n: usize) -> (System, Pid, Vec<Pid>) {
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    let ctl = sys.spawn_hosted("wire-server-oracle", Cred::superuser());
    let targets: Vec<Pid> = (0..n)
        .map(|_| sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn"))
        .collect();
    sys.run_idle(100);
    (sys, ctl, targets)
}

/// Reads one hier file through the *blocking* face (session 0) of `fs`.
/// With zero base fault rates this must always succeed: session 0 is
/// exempt from personas and per-frame adversary rolls by contract.
fn blocking_read(
    fs: &mut RemoteFs<ksim::Kernel>,
    k: &mut ksim::Kernel,
    ctl: Pid,
    pid: Pid,
    file: &str,
) -> Vec<u8> {
    let cred = Cred::superuser();
    let dir = fs.lookup(k, ctl, NodeId(0), &pid.0.to_string()).expect("blocking lookup pid");
    let node = fs.lookup(k, ctl, dir, file).expect("blocking lookup file");
    let tok = fs.open(k, ctl, node, OFlags::rdonly(), &cred).expect("blocking open");
    let mut buf = [0u8; 4096];
    let n = match fs.read(k, ctl, node, tok, 0, &mut buf).expect("blocking read") {
        IoReply::Done(n) => n,
        IoReply::Block => panic!("hier status read blocked"),
    };
    fs.close(k, ctl, node, tok, OFlags::rdonly());
    buf[..n].to_vec()
}

/// One adversarial run: six client sessions each walk a seeded script
/// of hier reads; every outcome is byte-checked against the blocking
/// face and recorded in a transcript for the replay check.
fn adversarial_run(
    sys: &mut System,
    ctl: Pid,
    targets: &[Pid],
    seed: u64,
) -> (Vec<String>, WireStats, u64) {
    let files = ["status", "psinfo", "cred"];
    let mut fs = RemoteFs::new(Box::new(HierFs::new())).with_config(
        &WireConfig::faulty(seed, FaultRates::default())
            .adversarial(AdversaryRates::uniform(250))
            .queue_caps(1024, 1024),
    );
    let mut transcript = Vec::new();
    for h in 0..6u64 {
        let c = fs.client();
        let mut rng = XorShift::new(seed ^ h.wrapping_mul(0x9E37_79B9));
        for op in 0..4 {
            let pid = targets[rng.below(targets.len() as u64) as usize];
            let file = files[rng.below(files.len() as u64) as usize];
            let want = blocking_read(&mut fs, &mut sys.kernel, ctl, pid, file);
            let outcome = session_read(&c, &mut sys.kernel, ctl, pid, file);
            match outcome {
                Ok(got) => {
                    assert_eq!(
                        got, want,
                        "seed {seed:#x} session {h} op {op} {file}: bytes diverged"
                    );
                    transcript.push(format!("h{h} {op} {file} ok {}", got.len()));
                }
                Err(e) => {
                    assert!(
                        clean_failure(e),
                        "seed {seed:#x} session {h} op {op} {file}: dirty failure {e}"
                    );
                    transcript.push(format!("h{h} {op} {file} err {e}"));
                }
            }
        }
        // Mid-suite blocking probe: whatever the adversarial sessions
        // are doing, session 0 stays byte-perfect — no starvation.
        if h == 3 {
            let probe = blocking_read(&mut fs, &mut sys.kernel, ctl, targets[0], "status");
            assert!(!probe.is_empty(), "seed {seed:#x}: blocking probe starved");
        }
    }
    let probe = blocking_read(&mut fs, &mut sys.kernel, ctl, targets[0], "status");
    assert!(!probe.is_empty(), "seed {seed:#x}: final blocking probe starved");
    let stats = fs.stats();
    assert!(stats.in_queue_hwm <= 1024, "seed {seed:#x}: inbound cap exceeded");
    assert!(stats.out_queue_hwm <= 1024, "seed {seed:#x}: outbound cap exceeded");
    assert_eq!(stats.sessions_opened, 6, "seed {seed:#x}: session accounting drifted");
    (transcript, stats, fs.ticks())
}

/// One scripted read through a client session: lookup pid dir, lookup
/// file, open, read, close. The first clean failure aborts the chain.
fn session_read(
    c: &RemoteClient<ksim::Kernel>,
    k: &mut ksim::Kernel,
    ctl: Pid,
    pid: Pid,
    file: &str,
) -> Result<Vec<u8>, Errno> {
    let cred = Cred::superuser();
    let dir = c.wait(k, c.submit_lookup(ctl, NodeId(0), &pid.0.to_string()))?;
    let node = c.wait(k, c.submit_lookup(ctl, dir, file))?;
    let tok = c.wait(k, c.submit_open(ctl, node, OFlags::rdonly(), &cred))?;
    let data = match c.wait(k, c.submit_read(ctl, node, tok, 0, 4096))? {
        RemoteRead::Data(b) => b,
        RemoteRead::Block => return Err(Errno::EIO),
    };
    let _ = c.wait(k, c.submit_close(ctl, node, tok, OFlags::rdonly()));
    Ok(data)
}

/// The tentpole acceptance gate: 32 pinned seeds of adversarial
/// sessions — correct bytes or typed errnos, bounded queues, an
/// unstarved blocking face — and each seed replayed byte-identically
/// (outcomes, counters, virtual clock).
#[test]
fn adversarial_oracle_holds_and_replays_for_32_seeds() {
    let mut adversary_activity = 0u64;
    for i in 0..32u64 {
        let seed = 0x005E_17E5_7000 + i;
        let (mut sys, ctl, targets) = boot_targets(3);
        let a = adversarial_run(&mut sys, ctl, &targets, seed);
        let b = adversarial_run(&mut sys, ctl, &targets, seed);
        assert_eq!(a.0, b.0, "seed {seed:#x}: transcripts diverged");
        assert_eq!(a.1, b.1, "seed {seed:#x}: wire counters diverged");
        assert_eq!(a.2, b.2, "seed {seed:#x}: the virtual clock diverged");
        let st = a.1;
        adversary_activity += st.floods
            + st.churn_events
            + st.stale_replays
            + st.frames_shed
            + st.sessions_evicted
            + st.timeouts;
    }
    assert!(
        adversary_activity > 0,
        "32 seeds of adversarial clients did nothing — the dimension is not wired in"
    );
}

/// Exactly-once for sequenced ops across connection churn: duplicated
/// delayed frames, mid-frame cuts, stale-tag replays *and* a manual
/// disconnect/reconnect while writes are in flight — yet each
/// acknowledged `PCKILL` posts its signal exactly once, and a failed
/// one at most once (kernel event log as ground truth).
#[test]
fn sequenced_ops_stay_exactly_once_across_churn_for_32_seeds() {
    for i in 0..32u64 {
        let seed = 0xC4A_B1E_000 + i;
        let (mut sys, ctl, targets) = boot_targets(2);
        let rates = FaultRates { duplicate: 400, delay: 200, ..FaultRates::default() };
        let adv = AdversaryRates {
            mid_frame: 150,
            stale_replay: 300,
            flood: 100,
            ..Default::default()
        };
        let fs = RemoteFs::new(Box::new(HierFs::new()))
            .with_config(&WireConfig::faulty(seed, rates).adversarial(adv));
        let handles = [fs.client(), fs.client()];
        let cred = Cred::superuser();
        let msg = ctl_record(PCKILL, &(signal::SIGUSR1 as u32).to_le_bytes());

        // Handle h controls target h exclusively. Setup ops retry
        // through the same churning wire the oracle is judging.
        let mut opened: Vec<Option<(NodeId, vfs::OpenToken)>> = Vec::new();
        for (h, pid) in targets.iter().enumerate() {
            let c = &handles[h];
            let setup = (|| -> Result<(NodeId, vfs::OpenToken), Errno> {
                let dir = retry_op(c, &mut sys.kernel, |c| {
                    c.submit_lookup(ctl, NodeId(0), &pid.0.to_string())
                })?;
                let node = retry_op(c, &mut sys.kernel, |c| c.submit_lookup(ctl, dir, "ctl"))?;
                let tok = retry_op(c, &mut sys.kernel, |c| {
                    c.submit_open(ctl, node, OFlags::wronly(), &cred)
                })?;
                Ok((node, tok))
            })();
            match setup {
                Ok(pair) => opened.push(Some(pair)),
                Err(e) => {
                    assert!(clean_failure(e), "seed {seed:#x} handle {h}: dirty setup {e}");
                    opened.push(None);
                }
            }
        }
        let mut futs: Vec<(usize, OpFuture<IoReply>)> = Vec::new();
        for _ in 0..4 {
            for h in 0..2 {
                if let Some((node, tok)) = opened[h] {
                    futs.push((h, handles[h].submit_write(ctl, node, tok, 0, &msg)));
                }
            }
        }
        // Churn handle 0 while its writes are in flight.
        handles[0].disconnect();
        for _ in 0..4 {
            handles[0].pump(&mut sys.kernel);
        }
        handles[0].reconnect(&mut sys.kernel);

        let (mut acked, mut failed) = ([0usize; 2], [0usize; 2]);
        while !futs.is_empty() {
            let advanced = handles[0].pump(&mut sys.kernel);
            futs.retain_mut(|(h, fut)| match handles[*h].try_complete(fut) {
                Some(Ok(_)) => {
                    acked[*h] += 1;
                    false
                }
                Some(Err(e)) => {
                    assert!(clean_failure(e), "seed {seed:#x}: ctl write failed dirty: {e}");
                    failed[*h] += 1;
                    false
                }
                None => true,
            });
            assert!(advanced || futs.is_empty(), "seed {seed:#x}: session wedged");
        }
        for h in 0..2 {
            let posts = sys.kernel.log.sig_posts_of(targets[h], signal::SIGUSR1);
            assert!(
                posts >= acked[h] && posts <= acked[h] + failed[h],
                "seed {seed:#x} handle {h}: {} acks + {} failures but {posts} posts",
                acked[h],
                failed[h]
            );
        }
        assert!(
            handles[0].stats().churn_events >= 2,
            "seed {seed:#x}: the manual churn was not counted"
        );
    }
}

/// Resubmits an idempotent-or-sequenced setup op through a churning
/// wire until it lands or the session dies for good.
fn retry_op<T>(
    c: &RemoteClient<ksim::Kernel>,
    k: &mut ksim::Kernel,
    mut submit: impl FnMut(&RemoteClient<ksim::Kernel>) -> OpFuture<T>,
) -> Result<T, Errno> {
    let mut last = Errno::EIO;
    for _ in 0..64 {
        match c.wait(k, submit(c)) {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = e;
                if c.poll_session().hangup {
                    return Err(e);
                }
            }
        }
    }
    Err(last)
}

/// The token-release oracle: a remote controller stops a target with
/// run-on-last-close set, then vanishes (disconnect/reconnect mid-op,
/// then a hangup that evicts the session). Server-side teardown must
/// auto-close the tracked `OpenToken` — no leaked writer counts, and
/// the stopped target set running again by the *eviction's* close.
/// Then the same promise locally, through a plain `ProcHandle`.
#[test]
fn churned_sessions_leak_no_tokens_and_release_their_targets_for_32_seeds() {
    for i in 0..32u64 {
        let seed = 0x70CE_2000 + i;
        let mut sys = tools::boot_demo();
        let ctl = sys.spawn_hosted("churn-oracle", Cred::superuser());
        let target = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        sys.run_idle(50);

        let rates = FaultRates { delay: 150, duplicate: 250, ..FaultRates::default() };
        let adv = AdversaryRates { mid_frame: 120, stale_replay: 350, ..Default::default() };
        let fs = RemoteFs::new(Box::new(ProcFs::new()))
            .with_ioctl_table(procfs::ioctl::wire_table())
            .with_config(&WireConfig::faulty(seed, rates).adversarial(adv));
        let c = fs.client();
        let cred = Cred::superuser();

        // Latch the target: open rdwr, set run-on-last-close, stop.
        let node = retry_op(&c, &mut sys.kernel, |c| {
            c.submit_lookup(ctl, NodeId(0), &target.0.to_string())
        })
        .expect("lookup crosses the churning wire");
        let tok = retry_op(&c, &mut sys.kernel, |c| {
            c.submit_open(ctl, node, OFlags::rdwr(), &cred)
        })
        .expect("open crosses the churning wire");
        let r = retry_op(&c, &mut sys.kernel, |c| {
            c.submit_ioctl(ctl, node, tok, PIOCSRLC, &[])
        })
        .expect("PIOCSRLC crosses");
        assert!(matches!(r, IoctlReply::Done(_)), "PIOCSRLC blocked");
        let mut stopped = false;
        for _ in 0..64 {
            match c.wait(&mut sys.kernel, c.submit_ioctl(ctl, node, tok, PIOCSTOP, &[])) {
                Ok(IoctlReply::Done(_)) => {
                    stopped = true;
                    break;
                }
                Ok(IoctlReply::Block) => sys.run_idle(20),
                Err(e) => assert!(clean_failure(e), "seed {seed:#x}: stop failed dirty: {e}"),
            }
        }
        assert!(stopped, "seed {seed:#x}: directed stop never landed");
        assert!(
            sys.kernel.proc(target).map(|p| p.is_stopped()).unwrap_or(false),
            "seed {seed:#x}: target not stopped after PIOCSTOP"
        );
        let writers = sys.kernel.proc(target).expect("alive").trace.writers;
        assert!(writers >= 1, "seed {seed:#x}: the remote open left no writer count");

        // Churn mid-op: a status read in flight across a disconnect.
        let fut = c.submit_ioctl(ctl, node, tok, PIOCSTATUS, &[]);
        c.disconnect();
        for _ in 0..3 {
            c.pump(&mut sys.kernel);
        }
        c.reconnect(&mut sys.kernel);
        match c.wait(&mut sys.kernel, fut) {
            Ok(_) => {}
            Err(e) => assert!(clean_failure(e), "seed {seed:#x}: mid-churn status dirty: {e}"),
        }

        // The controller vanishes: eviction tears the session down and
        // must auto-close the token it tracked.
        c.hangup(&mut sys.kernel);
        sys.run_idle(100);
        let p = sys.kernel.proc(target).expect("target survives its controller");
        assert_eq!(
            p.trace.writers, 0,
            "seed {seed:#x}: eviction leaked an OpenToken (writers still held)"
        );
        assert!(
            !p.is_stopped(),
            "seed {seed:#x}: run-on-last-close did not release the target on eviction"
        );
        assert!(c.poll_session().hangup, "seed {seed:#x}: session not torn down");

        // Local leg: the same promise through a plain ProcHandle.
        let mut h = ProcHandle::open_rw(&mut sys, ctl, target).expect("local open");
        h.set_run_on_last_close(&mut sys, true).expect("local rlc");
        h.stop(&mut sys).expect("local stop");
        h.close(&mut sys).expect("local close");
        sys.run_idle(100);
        let p = sys.kernel.proc(target).expect("alive");
        assert_eq!(p.trace.writers, 0, "seed {seed:#x}: local close leaked a writer");
        assert!(!p.is_stopped(), "seed {seed:#x}: local run-on-last-close did not release");
    }
}

/// Regression (satellite): an `OpFuture` whose session is torn down
/// mid-flight resolves to `EAGAIN` — `wait()` terminates. Driven here
/// through the public API end-to-end (the unit suite drives the same
/// path via a forced half-open persona).
#[test]
fn evicted_sessions_resolve_futures_instead_of_hanging() {
    let (mut sys, ctl, targets) = boot_targets(1);
    let fs = RemoteFs::new(Box::new(HierFs::new()));
    let c = fs.client();
    let fut = c.submit_lookup(ctl, NodeId(0), &targets[0].0.to_string());
    c.hangup(&mut sys.kernel);
    assert_eq!(c.wait(&mut sys.kernel, fut), Err(Errno::EAGAIN));
    let mut after = c.submit_lookup(ctl, NodeId(0), &targets[0].0.to_string());
    assert_eq!(c.try_complete(&mut after), Some(Err(Errno::EAGAIN)));
    // The wire itself is fine: a fresh session works.
    let c2 = fs.client();
    assert!(c2.wait(&mut sys.kernel, c2.submit_lookup(ctl, NodeId(0), &targets[0].0.to_string())).is_ok());
}
