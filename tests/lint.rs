//! Keeps the panic-free promises honest inside plain `cargo test`: the
//! remote `/proc` wire layer promises never to panic on damaged input,
//! the controllers (PR 4) promise never to panic on a dying, starved
//! or racing target, the execution fast path (PR 5) plus the
//! kernel beneath it (PR 6) run under every guest instruction, where a
//! stray unwrap would take the whole simulated machine down, and the
//! `/proc` layer itself (PR 8) decodes controller-supplied ioctl
//! arguments and recorded inputs — hostile bytes by construction. All
//! are held to `clippy -D warnings`
//! (their sources additionally carry
//! `#![deny(clippy::unwrap_used, clippy::expect_used)]`). Skips cleanly
//! when the toolchain has no clippy component.

use std::process::Command;

/// True when the toolchain has a clippy component to run.
fn have_clippy() -> bool {
    matches!(
        Command::new("cargo").args(["clippy", "--version"]).output(),
        Ok(out) if out.status.success()
    )
}

/// Runs `cargo clippy -p <package> --all-targets -- -D warnings
/// -D deprecated`.
fn clippy_clean(package: &str) {
    if !have_clippy() {
        eprintln!("skipping: cargo clippy is not installed");
        return;
    }
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let out = Command::new("cargo")
        .args([
            "clippy",
            "--manifest-path",
            manifest,
            "-p",
            package,
            "--all-targets",
            "--",
            "-D",
            "warnings",
            // The mid-run knob shims are gone; nothing may grow back on
            // a deprecated surface without failing the gate.
            "-D",
            "deprecated",
        ])
        .output()
        .expect("run cargo clippy");
    assert!(
        out.status.success(),
        "clippy found warnings in {package}:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn wire_layer_is_clippy_clean() {
    clippy_clean("procsim-vfs");
}

#[test]
fn controllers_are_clippy_clean() {
    clippy_clean("procsim-tools");
}

#[test]
fn address_translation_is_clippy_clean() {
    clippy_clean("procsim-vm");
}

#[test]
fn fetch_decode_is_clippy_clean() {
    clippy_clean("procsim-isa");
}

#[test]
fn kernel_is_clippy_clean() {
    clippy_clean("procsim-ksim");
}

#[test]
fn proc_layer_is_clippy_clean() {
    clippy_clean("procsim-core");
}

#[test]
fn bench_harness_is_clippy_clean() {
    clippy_clean("procsim-bench");
}

#[test]
fn umbrella_is_clippy_clean() {
    clippy_clean("procsim");
}
