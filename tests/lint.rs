//! Keeps the wire layer honest inside plain `cargo test`: the remote
//! `/proc` code promises never to panic on damaged input, so it is held
//! to `clippy -D warnings` (its source additionally carries
//! `#![deny(clippy::unwrap_used, clippy::expect_used)]`). Skips cleanly
//! when the toolchain has no clippy component.

use std::process::Command;

#[test]
fn wire_layer_is_clippy_clean() {
    let probe = Command::new("cargo").args(["clippy", "--version"]).output();
    match probe {
        Ok(out) if out.status.success() => {}
        _ => {
            eprintln!("skipping: cargo clippy is not installed");
            return;
        }
    }
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let out = Command::new("cargo")
        .args([
            "clippy",
            "--manifest-path",
            manifest,
            "-p",
            "procsim-vfs",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ])
        .output()
        .expect("run cargo clippy");
    assert!(
        out.status.success(),
        "clippy found warnings in the wire layer:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
