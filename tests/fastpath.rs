//! The execution fast path's correctness suite: the software TLB,
//! decoded-instruction cache and superblock engine must never change
//! what the paper's debugging machinery observes.
//!
//! The dangerous moment is *after the caches are hot*: a breakpoint
//! planted through a `/proc` write patches text the icache has already
//! decoded, and a watchpoint added through `PIOCSWATCH` makes a page
//! the dTLB has already translated require slow-path side effects. If
//! either cache survives its invalidation event, the target sails
//! through the trap — precisely the bug class the generation stamps
//! exist to prevent. The counters themselves are checked through all
//! three faces (flat ioctl, hierarchical file, remote mount).

use ksim::{Cred, Pid, System};
use procfs::{PrUsage, PrWatch, PrXStats};
use tools::proc_io::ProcHandle;
use tools::{DebugEvent, Debugger};
use vfs::remote::RemoteFs;
use vfs::OFlags;

const REMOTE_MOUNT: &str = "/procr";

fn boot() -> (System, Pid) {
    let mut sys = tools::boot_demo();
    sys.mount(
        REMOTE_MOUNT,
        Box::new(
            RemoteFs::new(Box::new(procfs::ProcFs::new()))
                .with_ioctl_table(procfs::ioctl::wire_table()),
        ),
    );
    let ctl = sys.spawn_hosted("fastpath", Cred::superuser());
    (sys, ctl)
}

/// Steps the target `n` times, asserting each step lands.
fn heat(sys: &mut System, dbg: &mut Debugger, n: usize) {
    for i in 0..n {
        let ev = dbg.step(sys).expect("step");
        assert!(matches!(ev, DebugEvent::Stepped), "heat step {i}: {ev:?}");
    }
}

/// A breakpoint planted via `/proc` *after* the text is hot in the
/// decoded-instruction cache must still fire: the write bumps the
/// mapping's epoch, so the stale decoded slot fails validation and the
/// freshly planted trap instruction is fetched.
#[test]
fn breakpoint_fires_after_hot_text_is_patched() {
    let (mut sys, ctl) = boot();
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
    let pid = dbg.pid();
    // Run the tick loop long enough that every instruction in it has a
    // validated icache slot.
    heat(&mut sys, &mut dbg, 48);
    let hot = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(hot.icache_hits > 0, "loop never hit the icache: {hot:?}");
    assert!(hot.tlb_hits > 0, "loop never hit the TLB: {hot:?}");
    // Plant the breakpoint in the now-cached text and continue.
    let tick = dbg.sym("tick").expect("tick symbol");
    dbg.set_breakpoint(&mut sys, tick).expect("set breakpoint");
    let ev = dbg.cont(&mut sys).expect("cont");
    match ev {
        DebugEvent::Breakpoint { addr, .. } => assert_eq!(addr, tick),
        other => panic!("hot text swallowed the planted breakpoint: {other:?}"),
    }
    // The invalidation was observable, not a lucky miss: the probe that
    // matched on pc but failed its stamps was counted.
    let after = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(
        after.icache_invalidations > hot.icache_invalidations,
        "breakpoint plant did not invalidate any decoded slot: {after:?}"
    );
    dbg.kill(&mut sys).expect("kill");
}

/// Removing the breakpoint restores the original word and the loop runs
/// on — through re-validated cache entries, not stale ones.
#[test]
fn cleared_breakpoint_lets_hot_loop_continue() {
    let (mut sys, ctl) = boot();
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
    heat(&mut sys, &mut dbg, 24);
    let tick = dbg.sym("tick").expect("tick symbol");
    dbg.set_breakpoint(&mut sys, tick).expect("set breakpoint");
    let ev = dbg.cont(&mut sys).expect("cont");
    assert!(matches!(ev, DebugEvent::Breakpoint { .. }), "{ev:?}");
    dbg.clear_breakpoint(&mut sys, tick).expect("clear breakpoint");
    // With the trap gone the loop must step cleanly again — if the trap
    // byte lingered in a cached decode, this would re-trap instead.
    heat(&mut sys, &mut dbg, 24);
    dbg.kill(&mut sys).expect("kill");
}

/// A watchpoint added *after* the watched page is hot in the dTLB must
/// still fire on the next store: `PIOCSWATCH` bumps the address-space
/// generation, flushing every translation for the page, and the
/// watched-page screen keeps it out of the caches from then on.
#[test]
fn watchpoint_fires_after_hot_dtlb() {
    let (mut sys, ctl) = boot();
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/watched", &["watched"]).expect("launch");
    let pid = dbg.pid();
    // The loop stores twice per iteration into cell's page: make those
    // translations hot.
    heat(&mut sys, &mut dbg, 40);
    let hot = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert!(hot.tlb_hits > 0, "store loop never hit the TLB: {hot:?}");
    let cell = dbg.sym("cell").expect("cell symbol");
    let mut flt = ksim::FltSet::empty();
    flt.add(ksim::fault::Fault::Bpt.number());
    flt.add(ksim::fault::Fault::Trace.number());
    flt.add(ksim::fault::Fault::Watch.number());
    dbg.h.set_flt_trace(&mut sys, flt).expect("flt trace");
    dbg.h.set_watch(&mut sys, PrWatch { vaddr: cell, size: 8, flags: 2 }).expect("set watch");
    let ev = dbg.cont(&mut sys).expect("cont");
    assert!(
        matches!(ev, DebugEvent::Watchpoint),
        "hot dTLB swallowed the new watchpoint: {ev:?}"
    );
    dbg.kill(&mut sys).expect("kill");
}

/// A page carrying a watchpoint stays *cacheable*: stores landing on
/// the watched page but outside the watched bytes keep hitting the dTLB
/// (the entry carries the watched bit and every hit re-runs the watch
/// screen), and the screen's side effects — transparent-recovery
/// counting — accrue exactly as on the slow path.
#[test]
fn watched_adjacent_stores_stay_cached_with_side_effects() {
    let (mut sys, ctl) = boot();
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/watched", &["watched"]).expect("launch");
    let pid = dbg.pid();
    heat(&mut sys, &mut dbg, 16);
    // Watch 8 bytes in the middle of cell's page; the loop's stores (to
    // cell and cell+512) share the page but never overlap the range, so
    // every store is a same-page recovery, not a fault.
    let cell = dbg.sym("cell").expect("cell symbol");
    dbg.h
        .set_watch(&mut sys, PrWatch { vaddr: cell + 256, size: 8, flags: 2 })
        .expect("set watch");
    let before = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    let before_u = PrUsage::capture(&sys.kernel, pid).expect("usage");
    heat(&mut sys, &mut dbg, 40);
    let after = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    let after_u = PrUsage::capture(&sys.kernel, pid).expect("usage");
    assert!(
        after.tlb_hits > before.tlb_hits,
        "watched page fell out of the dTLB: before {before:?} after {after:?}"
    );
    assert!(
        after_u.watch_recoveries > before_u.watch_recoveries,
        "cached watched page skipped recovery counting: before {before_u:?} after {after_u:?}"
    );
    dbg.kill(&mut sys).expect("kill");
}

/// `PIOCXSTATS` answers coherently through all three faces: the flat
/// local ioctl, the hierarchical `xstats` file and the remote mount.
#[test]
fn xstats_readable_through_all_three_faces() {
    let (mut sys, ctl) = boot();
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(2000);

    // Face 1: flat ioctl.
    let mut h = ProcHandle::open_ro(&mut sys, ctl, pid).expect("open flat");
    let flat = h.xstats(&mut sys).expect("flat xstats");
    h.close(&mut sys).expect("close");
    assert_eq!(flat.enabled, 1, "{flat:?}");
    assert!(flat.insns > 0, "{flat:?}");
    // spin is a store-free jump loop: its fetches are absorbed by the
    // icache (a hit skips `fetch_user` entirely), so the dTLB sees at
    // most the one slow-path fill — the icache is what must be hot.
    assert!(flat.icache_hits > 0, "spin loop never hit the icache: {flat:?}");
    // The hot loop runs inside superblock dispatches, and the counters
    // travel the wire with the rest.
    assert!(flat.sblock_dispatched > 0, "spin loop never dispatched a block: {flat:?}");
    assert!(flat.sblock_insns > 0, "blocks retired nothing: {flat:?}");

    // Face 2: the hierarchical read-only file.
    let fd = sys
        .host_open(ctl, &format!("/proc2/{}/xstats", pid.0), OFlags::rdonly())
        .expect("open hier");
    let mut buf = [0u8; PrXStats::WIRE_LEN];
    let n = sys.host_read(ctl, fd, &mut buf).expect("read hier");
    sys.host_close(ctl, fd).expect("close hier");
    assert_eq!(n, PrXStats::WIRE_LEN);
    let hier = PrXStats::from_bytes(&buf).expect("decode hier");
    assert_eq!(hier.enabled, 1);
    // Counters are monotone and the target kept running between reads.
    assert!(hier.insns >= flat.insns, "hier {hier:?} < flat {flat:?}");

    // Face 3: the same ioctl across the remote mount.
    let mut rh =
        ProcHandle::open_at(&mut sys, ctl, pid, REMOTE_MOUNT, OFlags::rdonly()).expect("open remote");
    let remote = rh.xstats(&mut sys).expect("remote xstats");
    rh.close(&mut sys).expect("close remote");
    assert_eq!(remote.enabled, 1);
    assert!(remote.insns >= hier.insns, "remote {remote:?} < hier {hier:?}");
}

/// `SimConfig::fast_path(false)` reaches every process the system will
/// ever run: counters stay frozen, work runs entirely down the slow
/// path, and the flag is visible in the reply. The second leg boots the
/// same workload with the fast path on and sees the caches warm — the
/// two construction-time configurations that replaced the retired
/// mid-flight toggle.
#[test]
fn disabled_fast_path_reports_and_counts_nothing() {
    let mut sys = tools::boot_demo_cfg(ksim::SimConfig::standard().fast_path(false));
    let ctl = sys.spawn_hosted("fastpath", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(1000);
    let st = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert_eq!(st.enabled, 0, "{st:?}");
    assert_eq!((st.tlb_hits, st.tlb_misses), (0, 0), "disabled TLB still counting: {st:?}");
    assert_eq!(
        (st.icache_hits, st.icache_misses),
        (0, 0),
        "disabled icache still counting: {st:?}"
    );
    assert_eq!(
        (st.sblock_built, st.sblock_dispatched, st.sblock_insns),
        (0, 0, 0),
        "disabled superblocks still counting: {st:?}"
    );
    assert!(st.insns > 0, "target did not run: {st:?}");

    // The enabled leg: the identical workload under the fast path
    // counts and warms.
    let mut sys = tools::boot_demo_cfg(ksim::SimConfig::standard().fast_path(true));
    let ctl = sys.spawn_hosted("fastpath", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(1000);
    let st = PrXStats::capture(&sys.kernel, pid).expect("xstats");
    assert_eq!(st.enabled, 1);
    assert!(st.icache_hits > 0, "fast path never warmed: {st:?}");
    assert!(st.sblock_insns > 0, "fast path never dispatched a block: {st:?}");
}

/// A forked child starts with cold caches and its own generation
/// lineage: running both parent and child after the fork keeps their
/// counter streams separate and the child's text executes correctly
/// (fork + COW is an invalidation event, not a shared cache).
#[test]
fn fork_child_runs_correctly_with_cold_caches() {
    let (mut sys, ctl) = boot();
    let pid = sys.spawn_program(ctl, "/bin/forker", &["forker"]).expect("spawn");
    sys.run_idle(4000);
    // The forker parent exits 0 only if the child ran and exited first;
    // reaching a zombie parent with exit status 0 proves both executed.
    let st = sys.kernel.proc(pid).map(|p| (p.zombie, p.exit_status));
    match st {
        Ok((true, status)) => {
            assert_eq!(
                ksim::ptrace::decode_status(status),
                ksim::ptrace::WaitStatus::Exited(0),
                "forker failed under the fast path"
            );
        }
        other => panic!("forker did not finish: {other:?}"),
    }
}
