//! PR 10 gates: the sharded gang-round scheduler is *deterministic by
//! construction* — `shards=N` must be byte-identical to `shards=1` for
//! the same interleave seed.
//!
//! The engine speculates pure-user slices in parallel against a frozen
//! store and commits every slice's kernel effect in an order drawn from
//! the seeded interleave permutation, so nothing observable depends on
//! the shard count or host thread timing. These gates pin that:
//!
//!  * a 32-seed oracle running a mixed workload at `shards ∈ {1,2,4}`
//!    — recorder transcripts, kernel event logs and final clocks must
//!    match across shard counts record-for-record;
//!  * pipe-connected parent/child pairs split across shards deliver
//!    EOF-ordered data and `SIGPIPE` exactly as `shards=1` does;
//!  * a `shards=4` recording replays byte-identically through the
//!    sharded engine, and `goto_tick` navigation works over it (the
//!    round counter and timer heap travel with kernel snapshots);
//!  * the idle fast-forward fix: a long sleep consumes driver budget in
//!    proportion to the simulated time it skips, so a small budget can
//!    no longer be spent spinning a frozen frontier.

use ksim::proc::{LwpState, WaitChannel};
use ksim::{Cred, Pid, SimConfig, StepOutcome, System};

/// A recorded config for the sharded engine. The interleave seed is
/// deliberately derived from the workload seed so every seed exercises a
/// different commit schedule.
fn shard_config(shards: u32, seed: u64) -> SimConfig {
    SimConfig::standard()
        .shards(shards)
        .interleave_seed(seed ^ 0x5EED_1EAF)
        .shard_batch(4)
        .record(true)
        .snapshot_every(8)
}

/// A parent that closes its read end and writes until `SIGPIPE` kills
/// it; the child drains one read, closes, and exits — so the fatal
/// signal is raised by a *cross-process* wakeup (the reader vanishing
/// under a blocked writer), the classic cross-shard interaction.
const PIPEKILL: &str = r#"
_start:
    movi rv, 42         ; pipe(fds)
    la   a0, fds
    syscall
    movi rv, 2          ; fork
    syscall
    beq  rv, zero, child
    la   a0, fds
    ld   a0, [a0]
    movi rv, 6          ; close(rfd) in the parent
    syscall
pwrite:
    la   a0, fds
    ld   a0, [a0+8]
    movi rv, 4          ; write(wfd, msg, 4) forever
    la   a1, msg
    movi a2, 4
    syscall
    jmp  pwrite
child:
    la   a0, fds
    ld   a0, [a0+8]
    movi rv, 6          ; close(wfd) in the child
    syscall
    la   a0, fds
    ld   a0, [a0]
    movi rv, 3          ; read(rfd, buf, 16) once
    la   a1, buf
    movi a2, 16
    syscall
    la   a0, fds
    ld   a0, [a0]
    movi rv, 6          ; close(rfd): no readers remain
    syscall
    movi rv, 1          ; exit(0)
    movi a0, 0
    syscall
.data
.align 8
fds: .space 16
msg: .asciz "abc"
buf: .space 16
"#;

fn boot_sharded(shards: u32, seed: u64) -> (System, Pid) {
    let mut sys = tools::boot_demo_cfg(shard_config(shards, seed));
    sys.install_program("/bin/pipekill", PIPEKILL);
    let ctl = sys.spawn_hosted("shard-oracle", Cred::superuser());
    (sys, ctl)
}

/// A mixed workload: compute-bound spinners that shard cleanly, a
/// forker and two pipe pairs that talk across shard boundaries, a timed
/// sleeper for the deadline heap, and host-API kills and reaps.
fn drive(sys: &mut System, ctl: Pid) {
    let spin = sys.spawn_program(ctl, "/bin/spin", &["spin"]);
    let ticker = sys.spawn_program(ctl, "/bin/ticker", &["ticker"]);
    let piper = sys.spawn_program(ctl, "/bin/piper", &["piper"]);
    let pipekill = sys.spawn_program(ctl, "/bin/pipekill", &["pipekill"]);
    let forker = sys.spawn_program(ctl, "/bin/forker", &["forker"]);
    let sleeper = sys.spawn_program(ctl, "/bin/sleeper", &["sleeper"]);
    sys.run_idle(250);
    for p in [spin, ticker, sleeper, forker].into_iter().flatten() {
        let _ = sys.host_kill(ctl, p, 9);
    }
    sys.run_idle(120);
    let _ = piper;
    let _ = pipekill;
    while sys.host_wait(ctl).is_ok() {}
    sys.run_idle(40);
}

/// Everything the oracle compares across shard counts: the recorder
/// transcript, the kernel event log, the clock and per-process totals.
type Fingerprint = (Vec<ksim::Record>, Vec<ksim::Event>, u64, Vec<(u32, u64, u16)>);

fn fingerprint(sys: &System) -> Fingerprint {
    let rec = sys.recording().expect("recording on").records;
    let log = sys.kernel.log.events().to_vec();
    let procs = sys
        .kernel
        .procs
        .iter()
        .map(|(id, p)| (*id, p.cpu_time, p.exit_status))
        .collect();
    (rec, log, sys.kernel.clock, procs)
}

fn run_at(shards: u32, seed: u64) -> (System, Pid) {
    let (mut sys, ctl) = boot_sharded(shards, seed);
    drive(&mut sys, ctl);
    (sys, ctl)
}

/// The tentpole gate: 32 seeds, `shards ∈ {1, 2, 4}`, byte-identical
/// transcripts, event logs, clocks and per-process counters.
#[test]
fn cross_shard_transcripts_byte_identical_32_seeds() {
    for i in 0..32u64 {
        let seed = 0x5AAD_0001 + i * 0x9E37;
        let (base_sys, _) = run_at(1, seed);
        let base = fingerprint(&base_sys);
        assert!(
            base.0.len() > 15,
            "seed {seed:#x}: workload too small ({} records)",
            base.0.len()
        );
        for shards in [2u32, 4] {
            let (sys, _) = run_at(shards, seed);
            let got = fingerprint(&sys);
            assert_eq!(
                base.2, got.2,
                "seed {seed:#x}: clock diverged between shards=1 and shards={shards}"
            );
            assert_eq!(
                base.1, got.1,
                "seed {seed:#x}: event log diverged between shards=1 and shards={shards}"
            );
            assert_eq!(
                base.0, got.0,
                "seed {seed:#x}: transcript diverged between shards=1 and shards={shards}"
            );
            assert_eq!(
                base.3, got.3,
                "seed {seed:#x}: process table diverged between shards=1 and shards={shards}"
            );
        }
    }
}

/// Pipe affinity: a parent/child pair connected by a pipe, with pids
/// landing on *different* shards at `shards=2`, must deliver the data,
/// the EOF-side interactions and the blocked-writer `SIGPIPE` in
/// exactly the order `shards=1` produced.
#[test]
fn pipe_pair_split_across_shards_matches_single_shard() {
    let run = |shards: u32| {
        let (mut sys, ctl) = boot_sharded(shards, 0x1212);
        let pk = sys.spawn_program(ctl, "/bin/pipekill", &["pipekill"]).expect("spawn pipekill");
        let pp = sys.spawn_program(ctl, "/bin/piper", &["piper"]).expect("spawn piper");
        // The pipekill parent and child are consecutive pids: at
        // shards=2 they speculate on different host shards every round.
        sys.run_idle(400);
        while sys.host_wait(ctl).is_ok() {}
        sys.run_idle(50);
        let events = sys.kernel.log.events().to_vec();
        let sigpipe_exit = events.iter().any(|e| {
            matches!(e, ksim::Event::Exit { pid, status }
                if *pid == pk && *status == ksim::Kernel::status_signalled(ksim::signal::SIGPIPE, false))
        });
        assert!(
            sigpipe_exit,
            "shards={shards}: pipekill parent {pk:?} did not die of SIGPIPE: {events:?}"
        );
        let piper_exited = events
            .iter()
            .any(|e| matches!(e, ksim::Event::Exit { pid, .. } if *pid == pp));
        assert!(piper_exited, "shards={shards}: piper never exited");
        events
    };
    let single = run(1);
    assert_eq!(single, run(2), "event order diverged between shards=1 and shards=2");
    assert_eq!(single, run(4), "event order diverged between shards=1 and shards=4");
}

/// A `shards=4` recording replays byte-identically — the replayed
/// system boots from the recorded config, so the whole log re-executes
/// through the sharded engine.
#[test]
fn shard_recording_replays_through_sharded_engine() {
    let (sys, _) = run_at(4, 0x4EC0_4D11);
    let rec = sys.recording().expect("recording on");
    assert!(rec.len() > 15, "workload too small ({} records)", rec.len());
    let replayed = match procfs::replay(&rec) {
        Ok(s) => s,
        Err(d) => panic!(
            "shards=4 replay diverged at tick {} (expected {:#018x}, got {:#018x})",
            d.tick, d.expected, d.got
        ),
    };
    assert_eq!(
        replayed.recording().expect("recording on").records,
        rec.records,
        "shards=4 replay produced a different log"
    );
}

/// `goto_tick` over a sharded recording: the gang-round counter and the
/// timer deadline heap live in the kernel, so snapshot navigation must
/// restore them and the re-applied tail must land on the log prefix.
#[test]
fn goto_tick_navigates_sharded_recording() {
    let (sys, _) = run_at(4, 0x6070_71CC);
    let len = sys.recording().expect("recording on").len();
    assert!(len > 24, "workload too small to navigate ({len} records)");
    let k = len * 2 / 3;
    let restored = procfs::goto_tick(&sys, k).expect("goto_tick over sharded recording");
    assert_eq!(
        restored.recording().expect("recording on").records[..],
        sys.recording().expect("recording on").records[..k],
        "sharded navigation diverged from the log prefix"
    );
}

/// The idle-budget fix (satellite 6): an idle fast-forward reports how
/// far it jumped and charges the driver loop proportionally. A sleeper
/// parked 2000 ticks out used to cost `run_idle` one unit of budget per
/// *jump*; now the jump itself consumes `jumped/quantum` units, so a
/// small budget ends at the frontier instead of silently running the
/// woken guest.
#[test]
fn idle_fast_forward_charges_budget_proportionally() {
    let mut sys = tools::boot_demo_cfg(SimConfig::standard());
    let ctl = sys.spawn_hosted("idle-test", Cred::superuser());
    let pid = sys.spawn_program(ctl, "/bin/sleeper", &["sleeper"]).expect("spawn sleeper");
    // Run until the sleeper is parked in its timed sleep and the
    // machine is otherwise idle.
    let asleep = |s: &System| {
        s.kernel
            .proc(pid)
            .ok()
            .map(|p| {
                p.lwps.iter().any(|l| {
                    matches!(l.state, LwpState::Sleeping { chan: WaitChannel::Ticks(_), .. })
                })
            })
            .unwrap_or(false)
    };
    assert!(sys.run_until(10_000, asleep), "sleeper never reached its timed sleep");
    let insns_before = sys.kernel.proc(pid).expect("sleeper alive").cpu_time;
    let clock_before = sys.kernel.clock;

    // Budget 2 is far below the jump's proportional cost (2000 ticks at
    // quantum 256 ≈ 7 units), so run_idle must stop at the woken
    // frontier without granting the guest another slice.
    sys.run_idle(2);
    let insns_after = sys.kernel.proc(pid).expect("sleeper alive").cpu_time;
    assert!(
        sys.kernel.clock > clock_before,
        "run_idle made no progress over the sleeping frontier"
    );
    assert_eq!(
        insns_before, insns_after,
        "a 2-unit budget ran the guest after paying for a multi-quantum idle jump"
    );
}

/// `step_outcome` distinguishes the three cases: real work, a timed
/// idle jump (with the distance), and a fully blocked machine.
#[test]
fn step_outcome_reports_ran_idle_and_blocked() {
    let mut sys = tools::boot_demo_cfg(SimConfig::standard());
    let ctl = sys.spawn_hosted("outcome-test", Cred::superuser());
    // Hosted processes never run on the simulated CPU: blocked.
    assert_eq!(sys.step_outcome(), StepOutcome::Blocked);
    assert!(!sys.step(), "step() must report no progress when blocked");

    let pid = sys.spawn_program(ctl, "/bin/sleeper", &["sleeper"]).expect("spawn sleeper");
    assert_eq!(sys.step_outcome(), StepOutcome::Ran);
    let asleep = |s: &System| {
        s.kernel
            .proc(pid)
            .ok()
            .map(|p| {
                p.lwps.iter().any(|l| {
                    matches!(l.state, LwpState::Sleeping { chan: WaitChannel::Ticks(_), .. })
                })
            })
            .unwrap_or(false)
    };
    assert!(sys.run_until(10_000, asleep), "sleeper never reached its timed sleep");
    match sys.step_outcome() {
        StepOutcome::Idle { jumped } => {
            assert!(jumped > 0, "idle jump must cover a positive distance")
        }
        other => panic!("expected an idle fast-forward, got {other:?}"),
    }

    let _ = sys.host_kill(ctl, pid, 9);
    sys.run_idle(50);
    let _ = sys.host_wait(ctl);
    assert_eq!(sys.step_outcome(), StepOutcome::Blocked, "dead machine must block");
}
