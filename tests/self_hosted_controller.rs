//! The acid test of the interface's uniformity: a *simulated* program —
//! running on the virtual CPU, using nothing but its own system calls —
//! opens `/proc/<child>`, stops the child with `PIOCSTOP`, reads its
//! status, and kills it via `PIOCKILL`. Controlling processes in the
//! paper are ordinary user programs; here one demonstrably is.

use procsim::ksim::ptrace::{decode_status, WaitStatus};
use procsim::ksim::{Cred, System};
use procsim::tools;

/// The controller, in assembly. Protocol:
///   fork; the child spins.
///   Build "/proc/NNNNN" from the child's pid (five digits).
///   open(path, O_RDWR) -> fd
///   ioctl(fd, PIOCSTOP, 0, 0, status_buf, 368)  — blocks until stopped
///   check status_buf flags: PR_STOPPED|PR_ISTOP set (low byte = 3)
///   ioctl(fd, PIOCKILL, &SIGKILL, 4, 0, 0)
///   ioctl(fd, PIOCRUN, 0, 0, 0, 0)              — release so it dies
///   wait() for the child; exit 0 if it died by SIGKILL (status 9).
const CONTROLLER: &str = r#"
_start:
    movi rv, 2          ; fork
    syscall
    bne  rv, zero, parent
child:
    jmp  child
parent:
    mov  r20, rv        ; child pid
    ; ---- render five decimal digits into path[6..11] ----
    la   a0, path
    mov  r21, r20
    movi r22, 10        ; divisor
    movi r23, 4         ; digit index (from the last)
digits:
    rem  r24, r21, r22  ; digit
    div  r21, r21, r22
    addi r24, r24, '0'
    add  r25, a0, r23
    stb  r24, [r25+6]   ; path + 6 + index
    addi r23, r23, -1
    slti r26, r23, 0
    beq  r26, zero, digits
    ; ---- open("/proc/NNNNN", O_RDWR) ----
    movi rv, 5
    la   a0, path
    movi a1, 2          ; O_RDWR
    syscall
    mov  r19, rv        ; /proc fd
    slti r26, r19, 0
    bne  r26, zero, fail
    ; ---- ioctl(fd, PIOCSTOP, 0, 0, status, 368) ----
    movi rv, 54
    mov  a0, r19
    li   a1, 0x5002     ; PIOCSTOP
    movi a2, 0
    movi a3, 0
    la   a4, status
    movi a5, 368
    syscall
    slti r26, rv, 0
    bne  r26, zero, fail
    ; flags low byte must have PR_STOPPED|PR_ISTOP (0x3)
    la   a0, status
    ldb  a1, [a0]
    andi a1, a1, 3
    movi a2, 3
    bne  a1, a2, fail
    ; ---- ioctl(fd, PIOCKILL, &sig9, 4, 0, 0) ----
    movi rv, 54
    mov  a0, r19
    li   a1, 0x5019     ; PIOCKILL
    la   a2, sig9
    movi a3, 4
    movi a4, 0
    movi a5, 0
    syscall
    slti r26, rv, 0
    bne  r26, zero, fail
    ; ---- ioctl(fd, PIOCRUN, 0, 0, 0, 0) ----
    movi rv, 54
    mov  a0, r19
    li   a1, 0x5004     ; PIOCRUN
    movi a2, 0
    movi a3, 0
    movi a4, 0
    movi a5, 0
    syscall
    ; ---- wait for the child; expect status == 9 (SIGKILL) ----
    movi rv, 7
    la   a0, wstatus
    syscall
    la   a0, wstatus
    ld   a1, [a0]
    movi a2, 9
    bne  a1, a2, fail
    movi rv, 1          ; exit(0): success
    movi a0, 0
    syscall
fail:
    movi rv, 1
    movi a0, 1
    syscall
.data
path:    .asciz "/proc/00000"
.align 8
sig9:    .word 9
wstatus: .word 0
status:  .space 376
"#;

#[test]
fn simulated_program_controls_its_child_through_proc() {
    let mut sys: System = tools::boot_demo();
    let ctl = sys.spawn_hosted("host", Cred::new(100, 10));
    sys.install_program("/bin/controller", CONTROLLER);
    let pid = sys.spawn_program(ctl, "/bin/controller", &["controller"]).expect("spawn");
    let _ = pid;
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(
        decode_status(status),
        WaitStatus::Exited(0),
        "the simulated controller completed the whole stop/kill protocol"
    );
}

#[test]
fn simulated_poll_waits_on_proc_descriptor() {
    // A simulated process polls its (stopped-later) child's /proc fd —
    // the poll extension exercised from inside the machine.
    const POLLER: &str = r#"
_start:
    movi rv, 2          ; fork
    syscall
    bne  rv, zero, parent
child:
    movi rv, 69         ; nanosleep(3000)
    movi a0, 3000
    syscall
    movi a0, 1
    movi a1, 0
    div  a2, a0, a1     ; die with SIGFPE after a while
parent:
    mov  r20, rv
    ; render child pid digits into path[6..11]
    la   a0, path
    mov  r21, r20
    movi r22, 10
    movi r23, 4
digits:
    rem  r24, r21, r22
    div  r21, r21, r22
    addi r24, r24, '0'
    add  r25, a0, r23
    stb  r24, [r25+6]
    addi r23, r23, -1
    slti r26, r23, 0
    beq  r26, zero, digits
    movi rv, 5          ; open(path, O_RDONLY)
    la   a0, path
    movi a1, 0
    syscall
    mov  r19, rv
    ; build pollfd: [u64 fd][u16 events=4 hangup][u16 revents]
    la   a0, pfd
    st   r19, [a0]
    movi a1, 4          ; interested in hangup only
    stb  a1, [a0+8]
    ; poll(&pfd, 1, 0) — blocks until the child dies (hangup)
    movi rv, 65
    la   a0, pfd
    movi a1, 1
    movi a2, 0
    syscall
    ; revents must include hangup (bit 2)
    la   a0, pfd
    ldb  a1, [a0+10]
    andi a1, a1, 4
    beq  a1, zero, fail
    movi rv, 7          ; reap the child
    movi a0, 0
    syscall
    movi rv, 1
    movi a0, 0
    syscall
fail:
    movi rv, 1
    movi a0, 1
    syscall
.data
path: .asciz "/proc/00000"
.align 8
pfd:  .space 16
"#;
    let mut sys: System = tools::boot_demo();
    let ctl = sys.spawn_hosted("host", Cred::new(100, 10));
    sys.install_program("/bin/poller", POLLER);
    sys.spawn_program(ctl, "/bin/poller", &["poller"]).expect("spawn");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(decode_status(status), WaitStatus::Exited(0));
}
