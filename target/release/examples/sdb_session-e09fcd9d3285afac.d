/root/repo/target/release/examples/sdb_session-e09fcd9d3285afac.d: examples/sdb_session.rs

/root/repo/target/release/examples/sdb_session-e09fcd9d3285afac: examples/sdb_session.rs

examples/sdb_session.rs:
