/root/repo/target/release/examples/debugger_session-74fb4cc2e69630d6.d: examples/debugger_session.rs

/root/repo/target/release/examples/debugger_session-74fb4cc2e69630d6: examples/debugger_session.rs

examples/debugger_session.rs:
