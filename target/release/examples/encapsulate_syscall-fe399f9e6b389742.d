/root/repo/target/release/examples/encapsulate_syscall-fe399f9e6b389742.d: examples/encapsulate_syscall.rs

/root/repo/target/release/examples/encapsulate_syscall-fe399f9e6b389742: examples/encapsulate_syscall.rs

examples/encapsulate_syscall.rs:
