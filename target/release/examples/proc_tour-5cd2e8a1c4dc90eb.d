/root/repo/target/release/examples/proc_tour-5cd2e8a1c4dc90eb.d: examples/proc_tour.rs

/root/repo/target/release/examples/proc_tour-5cd2e8a1c4dc90eb: examples/proc_tour.rs

examples/proc_tour.rs:
