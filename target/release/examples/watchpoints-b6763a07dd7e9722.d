/root/repo/target/release/examples/watchpoints-b6763a07dd7e9722.d: examples/watchpoints.rs

/root/repo/target/release/examples/watchpoints-b6763a07dd7e9722: examples/watchpoints.rs

examples/watchpoints.rs:
