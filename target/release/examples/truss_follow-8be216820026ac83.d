/root/repo/target/release/examples/truss_follow-8be216820026ac83.d: examples/truss_follow.rs

/root/repo/target/release/examples/truss_follow-8be216820026ac83: examples/truss_follow.rs

examples/truss_follow.rs:
