/root/repo/target/release/examples/quickstart-878bbb59703735bf.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-878bbb59703735bf: examples/quickstart.rs

examples/quickstart.rs:
