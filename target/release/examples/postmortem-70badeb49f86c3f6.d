/root/repo/target/release/examples/postmortem-70badeb49f86c3f6.d: examples/postmortem.rs

/root/repo/target/release/examples/postmortem-70badeb49f86c3f6: examples/postmortem.rs

examples/postmortem.rs:
