/root/repo/target/release/deps/isa-aae087d929d64976.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libisa-aae087d929d64976.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libisa-aae087d929d64976.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cpu.rs:
crates/isa/src/dis.rs:
crates/isa/src/insn.rs:
crates/isa/src/reg.rs:
