/root/repo/target/release/deps/robustness-1d40ac87613d1b5f.d: tests/robustness.rs

/root/repo/target/release/deps/robustness-1d40ac87613d1b5f: tests/robustness.rs

tests/robustness.rs:
