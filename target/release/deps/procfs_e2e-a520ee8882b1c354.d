/root/repo/target/release/deps/procfs_e2e-a520ee8882b1c354.d: crates/core/tests/procfs_e2e.rs

/root/repo/target/release/deps/procfs_e2e-a520ee8882b1c354: crates/core/tests/procfs_e2e.rs

crates/core/tests/procfs_e2e.rs:
