/root/repo/target/release/deps/hier_e2e-6d12d93eaa94d440.d: crates/core/tests/hier_e2e.rs

/root/repo/target/release/deps/hier_e2e-6d12d93eaa94d440: crates/core/tests/hier_e2e.rs

crates/core/tests/hier_e2e.rs:
