/root/repo/target/release/deps/procfs-0c835e285263abe6.d: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

/root/repo/target/release/deps/libprocfs-0c835e285263abe6.rlib: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

/root/repo/target/release/deps/libprocfs-0c835e285263abe6.rmeta: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/fsimpl.rs:
crates/core/src/hier.rs:
crates/core/src/ioctl.rs:
crates/core/src/ops.rs:
crates/core/src/snap.rs:
crates/core/src/types.rs:
