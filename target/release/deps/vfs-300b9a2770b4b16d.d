/root/repo/target/release/deps/vfs-300b9a2770b4b16d.d: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

/root/repo/target/release/deps/vfs-300b9a2770b4b16d: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

crates/vfs/src/lib.rs:
crates/vfs/src/cred.rs:
crates/vfs/src/errno.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/memfs.rs:
crates/vfs/src/mount.rs:
crates/vfs/src/node.rs:
crates/vfs/src/path.rs:
crates/vfs/src/remote.rs:
