/root/repo/target/release/deps/e5_remote_marshalling-112d25891c2fb9c7.d: crates/bench/benches/e5_remote_marshalling.rs

/root/repo/target/release/deps/e5_remote_marshalling-112d25891c2fb9c7: crates/bench/benches/e5_remote_marshalling.rs

crates/bench/benches/e5_remote_marshalling.rs:
