/root/repo/target/release/deps/snapshot_cache-0b8af99190bc78d6.d: tests/snapshot_cache.rs

/root/repo/target/release/deps/snapshot_cache-0b8af99190bc78d6: tests/snapshot_cache.rs

tests/snapshot_cache.rs:
