/root/repo/target/release/deps/kernel_e2e-d8634aebe2dc3184.d: crates/ksim/tests/kernel_e2e.rs

/root/repo/target/release/deps/kernel_e2e-d8634aebe2dc3184: crates/ksim/tests/kernel_e2e.rs

crates/ksim/tests/kernel_e2e.rs:
