/root/repo/target/release/deps/procsim-cd76494494bac61f.d: src/lib.rs

/root/repo/target/release/deps/procsim-cd76494494bac61f: src/lib.rs

src/lib.rs:
