/root/repo/target/release/deps/integration-dcbf606be9e64ef6.d: tests/integration.rs

/root/repo/target/release/deps/integration-dcbf606be9e64ef6: tests/integration.rs

tests/integration.rs:
