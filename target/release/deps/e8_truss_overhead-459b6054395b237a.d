/root/repo/target/release/deps/e8_truss_overhead-459b6054395b237a.d: crates/bench/benches/e8_truss_overhead.rs

/root/repo/target/release/deps/e8_truss_overhead-459b6054395b237a: crates/bench/benches/e8_truss_overhead.rs

crates/bench/benches/e8_truss_overhead.rs:
