/root/repo/target/release/deps/isa-cfc865d2b0a94121.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/isa-cfc865d2b0a94121: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cpu.rs:
crates/isa/src/dis.rs:
crates/isa/src/insn.rs:
crates/isa/src/reg.rs:
