/root/repo/target/release/deps/procfs-d20540502470985f.d: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

/root/repo/target/release/deps/procfs-d20540502470985f: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/fsimpl.rs:
crates/core/src/hier.rs:
crates/core/src/ioctl.rs:
crates/core/src/ops.rs:
crates/core/src/snap.rs:
crates/core/src/types.rs:
