/root/repo/target/release/deps/e9_cow_isolation-01eb48dd3e3b8fdb.d: crates/bench/benches/e9_cow_isolation.rs

/root/repo/target/release/deps/e9_cow_isolation-01eb48dd3e3b8fdb: crates/bench/benches/e9_cow_isolation.rs

crates/bench/benches/e9_cow_isolation.rs:
