/root/repo/target/release/deps/self_hosted_controller-4d7ff77099b42704.d: tests/self_hosted_controller.rs

/root/repo/target/release/deps/self_hosted_controller-4d7ff77099b42704: tests/self_hosted_controller.rs

tests/self_hosted_controller.rs:
