/root/repo/target/release/deps/e3_ps_snapshot-259667400a66521c.d: crates/bench/benches/e3_ps_snapshot.rs

/root/repo/target/release/deps/e3_ps_snapshot-259667400a66521c: crates/bench/benches/e3_ps_snapshot.rs

crates/bench/benches/e3_ps_snapshot.rs:
