/root/repo/target/release/deps/e4_ctl_batching-8238aa041fddc92d.d: crates/bench/benches/e4_ctl_batching.rs

/root/repo/target/release/deps/e4_ctl_batching-8238aa041fddc92d: crates/bench/benches/e4_ctl_batching.rs

crates/bench/benches/e4_ctl_batching.rs:
