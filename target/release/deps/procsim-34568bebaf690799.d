/root/repo/target/release/deps/procsim-34568bebaf690799.d: src/lib.rs

/root/repo/target/release/deps/libprocsim-34568bebaf690799.rlib: src/lib.rs

/root/repo/target/release/deps/libprocsim-34568bebaf690799.rmeta: src/lib.rs

src/lib.rs:
