/root/repo/target/release/deps/fig1_ls_proc-5ccab63dfbaf731e.d: crates/bench/benches/fig1_ls_proc.rs

/root/repo/target/release/deps/fig1_ls_proc-5ccab63dfbaf731e: crates/bench/benches/fig1_ls_proc.rs

crates/bench/benches/fig1_ls_proc.rs:
