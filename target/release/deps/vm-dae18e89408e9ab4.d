/root/repo/target/release/deps/vm-dae18e89408e9ab4.d: crates/vm/src/lib.rs crates/vm/src/error.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/space.rs crates/vm/src/watch.rs

/root/repo/target/release/deps/libvm-dae18e89408e9ab4.rlib: crates/vm/src/lib.rs crates/vm/src/error.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/space.rs crates/vm/src/watch.rs

/root/repo/target/release/deps/libvm-dae18e89408e9ab4.rmeta: crates/vm/src/lib.rs crates/vm/src/error.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/space.rs crates/vm/src/watch.rs

crates/vm/src/lib.rs:
crates/vm/src/error.rs:
crates/vm/src/map.rs:
crates/vm/src/object.rs:
crates/vm/src/page.rs:
crates/vm/src/space.rs:
crates/vm/src/watch.rs:
