/root/repo/target/release/deps/vfs-bd7766f306956345.d: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

/root/repo/target/release/deps/libvfs-bd7766f306956345.rlib: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

/root/repo/target/release/deps/libvfs-bd7766f306956345.rmeta: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

crates/vfs/src/lib.rs:
crates/vfs/src/cred.rs:
crates/vfs/src/errno.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/memfs.rs:
crates/vfs/src/mount.rs:
crates/vfs/src/node.rs:
crates/vfs/src/path.rs:
crates/vfs/src/remote.rs:
