/root/repo/target/release/deps/vm-567ac93d1f05b076.d: crates/vm/src/lib.rs crates/vm/src/error.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/space.rs crates/vm/src/watch.rs

/root/repo/target/release/deps/vm-567ac93d1f05b076: crates/vm/src/lib.rs crates/vm/src/error.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/space.rs crates/vm/src/watch.rs

crates/vm/src/lib.rs:
crates/vm/src/error.rs:
crates/vm/src/map.rs:
crates/vm/src/object.rs:
crates/vm/src/page.rs:
crates/vm/src/space.rs:
crates/vm/src/watch.rs:
