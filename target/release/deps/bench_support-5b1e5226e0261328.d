/root/repo/target/release/deps/bench_support-5b1e5226e0261328.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench_support-5b1e5226e0261328: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
