/root/repo/target/release/deps/bench_support-9ecf8c445efe8349.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench_support-9ecf8c445efe8349.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench_support-9ecf8c445efe8349.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
