/root/repo/target/debug/deps/procsim-c7e8be4e7834c833.d: src/lib.rs

/root/repo/target/debug/deps/libprocsim-c7e8be4e7834c833.rlib: src/lib.rs

/root/repo/target/debug/deps/libprocsim-c7e8be4e7834c833.rmeta: src/lib.rs

src/lib.rs:
