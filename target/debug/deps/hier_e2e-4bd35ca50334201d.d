/root/repo/target/debug/deps/hier_e2e-4bd35ca50334201d.d: crates/core/tests/hier_e2e.rs

/root/repo/target/debug/deps/hier_e2e-4bd35ca50334201d: crates/core/tests/hier_e2e.rs

crates/core/tests/hier_e2e.rs:
