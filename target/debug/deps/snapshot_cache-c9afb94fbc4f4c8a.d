/root/repo/target/debug/deps/snapshot_cache-c9afb94fbc4f4c8a.d: tests/snapshot_cache.rs

/root/repo/target/debug/deps/snapshot_cache-c9afb94fbc4f4c8a: tests/snapshot_cache.rs

tests/snapshot_cache.rs:
