/root/repo/target/debug/deps/e2_syscall_counts-4a262a1d0ed80e59.d: crates/bench/benches/e2_syscall_counts.rs

/root/repo/target/debug/deps/e2_syscall_counts-4a262a1d0ed80e59: crates/bench/benches/e2_syscall_counts.rs

crates/bench/benches/e2_syscall_counts.rs:
