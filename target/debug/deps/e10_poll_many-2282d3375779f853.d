/root/repo/target/debug/deps/e10_poll_many-2282d3375779f853.d: crates/bench/benches/e10_poll_many.rs

/root/repo/target/debug/deps/e10_poll_many-2282d3375779f853: crates/bench/benches/e10_poll_many.rs

crates/bench/benches/e10_poll_many.rs:
