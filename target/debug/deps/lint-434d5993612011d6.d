/root/repo/target/debug/deps/lint-434d5993612011d6.d: tests/lint.rs

/root/repo/target/debug/deps/lint-434d5993612011d6: tests/lint.rs

tests/lint.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
