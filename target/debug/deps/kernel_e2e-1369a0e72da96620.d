/root/repo/target/debug/deps/kernel_e2e-1369a0e72da96620.d: crates/ksim/tests/kernel_e2e.rs

/root/repo/target/debug/deps/kernel_e2e-1369a0e72da96620: crates/ksim/tests/kernel_e2e.rs

crates/ksim/tests/kernel_e2e.rs:
