/root/repo/target/debug/deps/bench_support-3b34dbcbde8a4a15.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench_support-3b34dbcbde8a4a15.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench_support-3b34dbcbde8a4a15.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
