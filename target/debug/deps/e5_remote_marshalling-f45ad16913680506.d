/root/repo/target/debug/deps/e5_remote_marshalling-f45ad16913680506.d: crates/bench/benches/e5_remote_marshalling.rs

/root/repo/target/debug/deps/e5_remote_marshalling-f45ad16913680506: crates/bench/benches/e5_remote_marshalling.rs

crates/bench/benches/e5_remote_marshalling.rs:
