/root/repo/target/debug/deps/vfs-b5ee540a4093a75e.d: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs Cargo.toml

/root/repo/target/debug/deps/libvfs-b5ee540a4093a75e.rmeta: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs Cargo.toml

crates/vfs/src/lib.rs:
crates/vfs/src/cred.rs:
crates/vfs/src/errno.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/memfs.rs:
crates/vfs/src/mount.rs:
crates/vfs/src/node.rs:
crates/vfs/src/path.rs:
crates/vfs/src/remote.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
