/root/repo/target/debug/deps/integration-f14a602f68c04d2b.d: tests/integration.rs

/root/repo/target/debug/deps/integration-f14a602f68c04d2b: tests/integration.rs

tests/integration.rs:
