/root/repo/target/debug/deps/vfs-9eb3a51f2c71485a.d: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs Cargo.toml

/root/repo/target/debug/deps/libvfs-9eb3a51f2c71485a.rmeta: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs Cargo.toml

crates/vfs/src/lib.rs:
crates/vfs/src/cred.rs:
crates/vfs/src/errno.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/memfs.rs:
crates/vfs/src/mount.rs:
crates/vfs/src/node.rs:
crates/vfs/src/path.rs:
crates/vfs/src/remote.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
