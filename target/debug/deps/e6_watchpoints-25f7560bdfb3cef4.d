/root/repo/target/debug/deps/e6_watchpoints-25f7560bdfb3cef4.d: crates/bench/benches/e6_watchpoints.rs

/root/repo/target/debug/deps/e6_watchpoints-25f7560bdfb3cef4: crates/bench/benches/e6_watchpoints.rs

crates/bench/benches/e6_watchpoints.rs:
