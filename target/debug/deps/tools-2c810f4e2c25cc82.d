/root/repo/target/debug/deps/tools-2c810f4e2c25cc82.d: crates/tools/src/lib.rs crates/tools/src/debugger.rs crates/tools/src/lsproc.rs crates/tools/src/names.rs crates/tools/src/pmap.rs crates/tools/src/postmortem.rs crates/tools/src/proc_io.rs crates/tools/src/ps.rs crates/tools/src/ptrace_lib.rs crates/tools/src/sdb.rs crates/tools/src/truss.rs crates/tools/src/userland.rs

/root/repo/target/debug/deps/tools-2c810f4e2c25cc82: crates/tools/src/lib.rs crates/tools/src/debugger.rs crates/tools/src/lsproc.rs crates/tools/src/names.rs crates/tools/src/pmap.rs crates/tools/src/postmortem.rs crates/tools/src/proc_io.rs crates/tools/src/ps.rs crates/tools/src/ptrace_lib.rs crates/tools/src/sdb.rs crates/tools/src/truss.rs crates/tools/src/userland.rs

crates/tools/src/lib.rs:
crates/tools/src/debugger.rs:
crates/tools/src/lsproc.rs:
crates/tools/src/names.rs:
crates/tools/src/pmap.rs:
crates/tools/src/postmortem.rs:
crates/tools/src/proc_io.rs:
crates/tools/src/ps.rs:
crates/tools/src/ptrace_lib.rs:
crates/tools/src/sdb.rs:
crates/tools/src/truss.rs:
crates/tools/src/userland.rs:
