/root/repo/target/debug/deps/e7_encapsulation-db1e5938ac041a19.d: crates/bench/benches/e7_encapsulation.rs

/root/repo/target/debug/deps/e7_encapsulation-db1e5938ac041a19: crates/bench/benches/e7_encapsulation.rs

crates/bench/benches/e7_encapsulation.rs:
