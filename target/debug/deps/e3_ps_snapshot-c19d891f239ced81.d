/root/repo/target/debug/deps/e3_ps_snapshot-c19d891f239ced81.d: crates/bench/benches/e3_ps_snapshot.rs

/root/repo/target/debug/deps/e3_ps_snapshot-c19d891f239ced81: crates/bench/benches/e3_ps_snapshot.rs

crates/bench/benches/e3_ps_snapshot.rs:
