/root/repo/target/debug/deps/fig1_ls_proc-f657d30ea1db856a.d: crates/bench/benches/fig1_ls_proc.rs

/root/repo/target/debug/deps/fig1_ls_proc-f657d30ea1db856a: crates/bench/benches/fig1_ls_proc.rs

crates/bench/benches/fig1_ls_proc.rs:
