/root/repo/target/debug/deps/isa-bdce87f4697877a6.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/isa-bdce87f4697877a6: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cpu.rs:
crates/isa/src/dis.rs:
crates/isa/src/insn.rs:
crates/isa/src/reg.rs:
