/root/repo/target/debug/deps/robustness-25231412b71063ad.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-25231412b71063ad: tests/robustness.rs

tests/robustness.rs:
