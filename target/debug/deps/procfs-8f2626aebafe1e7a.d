/root/repo/target/debug/deps/procfs-8f2626aebafe1e7a.d: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

/root/repo/target/debug/deps/procfs-8f2626aebafe1e7a: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/fsimpl.rs:
crates/core/src/hier.rs:
crates/core/src/ioctl.rs:
crates/core/src/ops.rs:
crates/core/src/snap.rs:
crates/core/src/types.rs:
