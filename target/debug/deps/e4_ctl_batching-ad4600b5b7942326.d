/root/repo/target/debug/deps/e4_ctl_batching-ad4600b5b7942326.d: crates/bench/benches/e4_ctl_batching.rs

/root/repo/target/debug/deps/e4_ctl_batching-ad4600b5b7942326: crates/bench/benches/e4_ctl_batching.rs

crates/bench/benches/e4_ctl_batching.rs:
