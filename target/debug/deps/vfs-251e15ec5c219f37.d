/root/repo/target/debug/deps/vfs-251e15ec5c219f37.d: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

/root/repo/target/debug/deps/vfs-251e15ec5c219f37: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

crates/vfs/src/lib.rs:
crates/vfs/src/cred.rs:
crates/vfs/src/errno.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/memfs.rs:
crates/vfs/src/mount.rs:
crates/vfs/src/node.rs:
crates/vfs/src/path.rs:
crates/vfs/src/remote.rs:
