/root/repo/target/debug/deps/fig2_memory_map-48b1c4787ad98a18.d: crates/bench/benches/fig2_memory_map.rs

/root/repo/target/debug/deps/fig2_memory_map-48b1c4787ad98a18: crates/bench/benches/fig2_memory_map.rs

crates/bench/benches/fig2_memory_map.rs:
