/root/repo/target/debug/deps/procfs_e2e-586c24d73c235f7d.d: crates/core/tests/procfs_e2e.rs

/root/repo/target/debug/deps/procfs_e2e-586c24d73c235f7d: crates/core/tests/procfs_e2e.rs

crates/core/tests/procfs_e2e.rs:
