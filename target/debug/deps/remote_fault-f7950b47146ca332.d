/root/repo/target/debug/deps/remote_fault-f7950b47146ca332.d: tests/remote_fault.rs

/root/repo/target/debug/deps/remote_fault-f7950b47146ca332: tests/remote_fault.rs

tests/remote_fault.rs:
