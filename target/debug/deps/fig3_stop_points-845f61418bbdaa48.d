/root/repo/target/debug/deps/fig3_stop_points-845f61418bbdaa48.d: crates/bench/benches/fig3_stop_points.rs

/root/repo/target/debug/deps/fig3_stop_points-845f61418bbdaa48: crates/bench/benches/fig3_stop_points.rs

crates/bench/benches/fig3_stop_points.rs:
