/root/repo/target/debug/deps/procsim-810fefb3d446c1bf.d: src/lib.rs

/root/repo/target/debug/deps/procsim-810fefb3d446c1bf: src/lib.rs

src/lib.rs:
