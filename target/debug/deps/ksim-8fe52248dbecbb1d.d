/root/repo/target/debug/deps/ksim-8fe52248dbecbb1d.d: crates/ksim/src/lib.rs crates/ksim/src/aout.rs crates/ksim/src/bitset.rs crates/ksim/src/corefile.rs crates/ksim/src/event.rs crates/ksim/src/fault.rs crates/ksim/src/fd.rs crates/ksim/src/kernel.rs crates/ksim/src/proc.rs crates/ksim/src/ptrace.rs crates/ksim/src/sched.rs crates/ksim/src/signal.rs crates/ksim/src/syscall.rs crates/ksim/src/sysno.rs crates/ksim/src/system.rs

/root/repo/target/debug/deps/ksim-8fe52248dbecbb1d: crates/ksim/src/lib.rs crates/ksim/src/aout.rs crates/ksim/src/bitset.rs crates/ksim/src/corefile.rs crates/ksim/src/event.rs crates/ksim/src/fault.rs crates/ksim/src/fd.rs crates/ksim/src/kernel.rs crates/ksim/src/proc.rs crates/ksim/src/ptrace.rs crates/ksim/src/sched.rs crates/ksim/src/signal.rs crates/ksim/src/syscall.rs crates/ksim/src/sysno.rs crates/ksim/src/system.rs

crates/ksim/src/lib.rs:
crates/ksim/src/aout.rs:
crates/ksim/src/bitset.rs:
crates/ksim/src/corefile.rs:
crates/ksim/src/event.rs:
crates/ksim/src/fault.rs:
crates/ksim/src/fd.rs:
crates/ksim/src/kernel.rs:
crates/ksim/src/proc.rs:
crates/ksim/src/ptrace.rs:
crates/ksim/src/sched.rs:
crates/ksim/src/signal.rs:
crates/ksim/src/syscall.rs:
crates/ksim/src/sysno.rs:
crates/ksim/src/system.rs:
