/root/repo/target/debug/deps/vm-89abff171b53cb14.d: crates/vm/src/lib.rs crates/vm/src/error.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/space.rs crates/vm/src/watch.rs

/root/repo/target/debug/deps/vm-89abff171b53cb14: crates/vm/src/lib.rs crates/vm/src/error.rs crates/vm/src/map.rs crates/vm/src/object.rs crates/vm/src/page.rs crates/vm/src/space.rs crates/vm/src/watch.rs

crates/vm/src/lib.rs:
crates/vm/src/error.rs:
crates/vm/src/map.rs:
crates/vm/src/object.rs:
crates/vm/src/page.rs:
crates/vm/src/space.rs:
crates/vm/src/watch.rs:
