/root/repo/target/debug/deps/bench_support-003db4949cec3be4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench_support-003db4949cec3be4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
