/root/repo/target/debug/deps/self_hosted_controller-6442043834184db2.d: tests/self_hosted_controller.rs

/root/repo/target/debug/deps/self_hosted_controller-6442043834184db2: tests/self_hosted_controller.rs

tests/self_hosted_controller.rs:
