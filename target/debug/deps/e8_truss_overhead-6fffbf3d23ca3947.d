/root/repo/target/debug/deps/e8_truss_overhead-6fffbf3d23ca3947.d: crates/bench/benches/e8_truss_overhead.rs

/root/repo/target/debug/deps/e8_truss_overhead-6fffbf3d23ca3947: crates/bench/benches/e8_truss_overhead.rs

crates/bench/benches/e8_truss_overhead.rs:
