/root/repo/target/debug/deps/e1_breakpoints_per_sec-b60e5879c8f31699.d: crates/bench/benches/e1_breakpoints_per_sec.rs

/root/repo/target/debug/deps/e1_breakpoints_per_sec-b60e5879c8f31699: crates/bench/benches/e1_breakpoints_per_sec.rs

crates/bench/benches/e1_breakpoints_per_sec.rs:
