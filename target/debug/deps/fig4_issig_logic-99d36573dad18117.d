/root/repo/target/debug/deps/fig4_issig_logic-99d36573dad18117.d: crates/bench/benches/fig4_issig_logic.rs

/root/repo/target/debug/deps/fig4_issig_logic-99d36573dad18117: crates/bench/benches/fig4_issig_logic.rs

crates/bench/benches/fig4_issig_logic.rs:
