/root/repo/target/debug/deps/isa-dcf558bc35bec285.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libisa-dcf558bc35bec285.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libisa-dcf558bc35bec285.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/cpu.rs crates/isa/src/dis.rs crates/isa/src/insn.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/cpu.rs:
crates/isa/src/dis.rs:
crates/isa/src/insn.rs:
crates/isa/src/reg.rs:
