/root/repo/target/debug/deps/e9_cow_isolation-347a22b5de8dd85c.d: crates/bench/benches/e9_cow_isolation.rs

/root/repo/target/debug/deps/e9_cow_isolation-347a22b5de8dd85c: crates/bench/benches/e9_cow_isolation.rs

crates/bench/benches/e9_cow_isolation.rs:
