/root/repo/target/debug/deps/procfs-15a65056030d2533.d: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

/root/repo/target/debug/deps/libprocfs-15a65056030d2533.rlib: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

/root/repo/target/debug/deps/libprocfs-15a65056030d2533.rmeta: crates/core/src/lib.rs crates/core/src/fsimpl.rs crates/core/src/hier.rs crates/core/src/ioctl.rs crates/core/src/ops.rs crates/core/src/snap.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/fsimpl.rs:
crates/core/src/hier.rs:
crates/core/src/ioctl.rs:
crates/core/src/ops.rs:
crates/core/src/snap.rs:
crates/core/src/types.rs:
