/root/repo/target/debug/deps/vfs-191182c0699df019.d: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

/root/repo/target/debug/deps/libvfs-191182c0699df019.rlib: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

/root/repo/target/debug/deps/libvfs-191182c0699df019.rmeta: crates/vfs/src/lib.rs crates/vfs/src/cred.rs crates/vfs/src/errno.rs crates/vfs/src/fs.rs crates/vfs/src/memfs.rs crates/vfs/src/mount.rs crates/vfs/src/node.rs crates/vfs/src/path.rs crates/vfs/src/remote.rs

crates/vfs/src/lib.rs:
crates/vfs/src/cred.rs:
crates/vfs/src/errno.rs:
crates/vfs/src/fs.rs:
crates/vfs/src/memfs.rs:
crates/vfs/src/mount.rs:
crates/vfs/src/node.rs:
crates/vfs/src/path.rs:
crates/vfs/src/remote.rs:
