/root/repo/target/debug/examples/proc_tour-d5f9aa334477bd54.d: examples/proc_tour.rs

/root/repo/target/debug/examples/proc_tour-d5f9aa334477bd54: examples/proc_tour.rs

examples/proc_tour.rs:
