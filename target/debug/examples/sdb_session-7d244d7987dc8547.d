/root/repo/target/debug/examples/sdb_session-7d244d7987dc8547.d: examples/sdb_session.rs

/root/repo/target/debug/examples/sdb_session-7d244d7987dc8547: examples/sdb_session.rs

examples/sdb_session.rs:
