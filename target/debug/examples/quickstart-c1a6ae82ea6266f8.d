/root/repo/target/debug/examples/quickstart-c1a6ae82ea6266f8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c1a6ae82ea6266f8: examples/quickstart.rs

examples/quickstart.rs:
