/root/repo/target/debug/examples/encapsulate_syscall-2f908198dd66e31f.d: examples/encapsulate_syscall.rs

/root/repo/target/debug/examples/encapsulate_syscall-2f908198dd66e31f: examples/encapsulate_syscall.rs

examples/encapsulate_syscall.rs:
