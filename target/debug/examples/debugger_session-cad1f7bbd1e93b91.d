/root/repo/target/debug/examples/debugger_session-cad1f7bbd1e93b91.d: examples/debugger_session.rs

/root/repo/target/debug/examples/debugger_session-cad1f7bbd1e93b91: examples/debugger_session.rs

examples/debugger_session.rs:
