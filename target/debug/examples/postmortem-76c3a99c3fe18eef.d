/root/repo/target/debug/examples/postmortem-76c3a99c3fe18eef.d: examples/postmortem.rs

/root/repo/target/debug/examples/postmortem-76c3a99c3fe18eef: examples/postmortem.rs

examples/postmortem.rs:
