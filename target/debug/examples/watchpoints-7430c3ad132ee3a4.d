/root/repo/target/debug/examples/watchpoints-7430c3ad132ee3a4.d: examples/watchpoints.rs

/root/repo/target/debug/examples/watchpoints-7430c3ad132ee3a4: examples/watchpoints.rs

examples/watchpoints.rs:
