/root/repo/target/debug/examples/truss_follow-8ba305e0f74d4251.d: examples/truss_follow.rs

/root/repo/target/debug/examples/truss_follow-8ba305e0f74d4251: examples/truss_follow.rs

examples/truss_follow.rs:
